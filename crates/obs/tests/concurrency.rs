//! Deterministic tests for the metrics layer: correctness under concurrent
//! recording from scoped threads, and snapshot-serialization round-trips.
//! All tests use local registries so parallel test execution (and the
//! solver crates' own global-registry flushes) cannot interfere.

use rasa_obs::{Histogram, MetricsRegistry, MetricsSnapshot};
use std::sync::Arc;

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn counters_are_exact_under_concurrent_recording() {
    let reg = MetricsRegistry::new();
    let shared = reg.counter("conc.shared");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = Arc::clone(&shared);
            let reg = &reg;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    shared.inc();
                    // name-resolved path too, exercising the lock
                    if i % 100 == 0 {
                        reg.add(&format!("conc.thread{t}"), 1);
                    }
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.counter("conc.shared"), THREADS as u64 * PER_THREAD);
    for t in 0..THREADS {
        assert_eq!(snap.counter(&format!("conc.thread{t}")), PER_THREAD / 100);
    }
}

#[test]
fn histograms_lose_no_observations_under_concurrent_recording() {
    let hist = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = &hist;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // deterministic spread across several buckets
                    hist.record((t as f64 + 1.0) * 0.001 * (1.0 + (i % 7) as f64));
                }
            });
        }
    });
    let snap = hist.snapshot();
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(snap.count, total);
    let bucket_total: u64 = snap.buckets.iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_total, total, "every observation lands in a bucket");
    assert!(snap.min >= 0.001 && snap.max <= 8.0 * 0.001 * 7.0);
    // the atomic f64 sum must equal the arithmetic total exactly: every
    // recorded value is a small multiple of 0.001 and the CAS loop never
    // drops an update (addition order may differ, so allow f64 rounding)
    let expected: f64 = (0..THREADS)
        .map(|t| {
            (0..PER_THREAD)
                .map(|i| (t as f64 + 1.0) * 0.001 * (1.0 + (i % 7) as f64))
                .sum::<f64>()
        })
        .sum();
    assert!(
        (snap.sum - expected).abs() / expected < 1e-9,
        "sum {} vs expected {}",
        snap.sum,
        expected
    );
}

#[test]
fn spans_record_from_scoped_threads() {
    let reg = MetricsRegistry::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let reg = &reg;
            scope.spawn(move || {
                let _span = reg.span("conc.span_secs");
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.histogram("conc.span_secs").map(|h| h.count), Some(8));
}

#[test]
fn drained_counters_are_exact_under_concurrent_scrapes() {
    // Producers increment while scrapers repeatedly drain (read-and-reset)
    // and snapshot the registry. Conservation must be exact: every
    // increment is counted once — in some drain or in the final residue —
    // never lost, never twice. This is the Prometheus-scrape contract.
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let reg = MetricsRegistry::new();
    let drained = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let (reg, drained, done) = (&reg, &drained, &done);
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    for (name, v) in reg.drain_counters() {
                        if name == "scrape.total" {
                            drained.fetch_add(v, Ordering::Relaxed);
                        }
                    }
                    // concurrent snapshots must never observe more than
                    // what producers can have written
                    let snap = reg.snapshot();
                    assert!(snap.counter("scrape.total") <= THREADS as u64 * PER_THREAD);
                    std::thread::yield_now();
                }
            });
        }
        let producers: Vec<_> = (0..THREADS)
            .map(|_| {
                let reg = &reg;
                scope.spawn(move || {
                    for _ in 0..PER_THREAD {
                        reg.add("scrape.total", 1);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer thread");
        }
        done.store(true, Ordering::Release);
    });
    // all threads joined: drain the residue and check conservation
    let residue: u64 = reg
        .drain_counters()
        .into_iter()
        .filter(|(n, _)| n == "scrape.total")
        .map(|(_, v)| v)
        .sum();
    assert_eq!(
        drained.load(Ordering::Relaxed) + residue,
        THREADS as u64 * PER_THREAD,
        "drains + residue must account for every increment exactly"
    );
    // and the registry is now empty of that count
    assert_eq!(reg.snapshot().counter("scrape.total"), 0);
}

#[test]
fn snapshot_serialization_round_trips() {
    let reg = MetricsRegistry::new();
    reg.add("rt.counter", 123);
    reg.add("rt.other", 0); // zero adds still register the name
    for v in [1e-6, 0.001, 0.5, 2.0, 1e3] {
        reg.record("rt.hist", v);
    }
    reg.record("rt.negatives", -1.0);
    let snap = reg.snapshot();
    let json = snap.to_json().expect("serialize");
    let back = MetricsSnapshot::from_json(&json).expect("parse");
    assert_eq!(snap, back);
    // and the parsed snapshot answers queries identically
    assert_eq!(back.counter("rt.counter"), 123);
    assert_eq!(back.counter("rt.other"), 0);
    let h = back.histogram("rt.hist").expect("histogram survives");
    assert_eq!(h.count, 5);
    assert_eq!(h.min, 1e-6);
    assert_eq!(h.max, 1e3);
    assert_eq!(
        back.histogram("rt.negatives").map(|h| h.min),
        Some(-1.0),
        "negative observations keep exact min through JSON"
    );
}

#[test]
fn empty_snapshot_round_trips() {
    let snap = MetricsRegistry::new().snapshot();
    let back = MetricsSnapshot::from_json(&snap.to_json().unwrap()).unwrap();
    assert_eq!(snap, back);
    assert!(back.counters.is_empty() && back.histograms.is_empty());
}
