//! Code ↔ docs consistency: every metric name emitted anywhere in the
//! workspace must be documented in `docs/METRICS.md`, every documented
//! metric must still exist in code, and the flight recorder's span/event
//! vocabulary must match the taxonomy tables. The Prometheus writer
//! sources HELP/TYPE from the same file, so a name that fails here would
//! fail a live scrape identically.
//!
//! No regex crate in the workspace, so the scanner is a hand-written
//! string-literal walk: it reads every `crates/*/src/**/*.rs`, drops
//! comment lines and everything after the first `#[cfg(test)]`, extracts
//! double-quoted literals, and keeps the ones shaped like metric/span
//! names (`prefix.rest` over `[a-z0-9._]` with a known prefix).

#![allow(clippy::unwrap_used)]

use rasa_obs::{EventKind, MetricsGlossary};
use std::collections::BTreeSet;
use std::path::Path;

/// Prefixes that make a string literal a metric/span name candidate.
const PREFIXES: [&str; 21] = [
    "admission",
    "certify",
    "simplex",
    "bnb",
    "cg",
    "partition",
    "guard",
    "pipeline",
    "cache",
    "flight",
    "solve",
    "lp",
    "mip",
    "chaos",
    "serve",
    "select",
    "strategy",
    "slo",
    "obs",
    "wal",
    "recovery",
];

fn is_name_candidate(s: &str) -> bool {
    if !s.contains('.')
        || s.starts_with(['.', '_'])
        || s.ends_with(['.', '_'])
        || s.contains("..")
        || !s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
    {
        return false;
    }
    let prefix = s.split('.').next().unwrap();
    PREFIXES.contains(&prefix)
}

/// Double-quoted string literals on one line (no escape handling beyond
/// `\"` — metric names contain none).
fn string_literals(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('"') {
        rest = &rest[open + 1..];
        let mut lit = String::new();
        let mut chars = rest.char_indices();
        let mut close = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    let _ = chars.next();
                }
                '"' => {
                    close = Some(i);
                    break;
                }
                _ => lit.push(c),
            }
        }
        match close {
            Some(i) => {
                out.push(lit);
                rest = &rest[i + 1..];
            }
            None => break,
        }
    }
    out
}

/// All candidate names in the non-test, non-comment portion of one file.
fn scan_file(text: &str, into: &mut BTreeSet<String>) {
    for line in text.lines() {
        if line.contains("#[cfg(test)]") {
            break;
        }
        if line.trim_start().starts_with("//") {
            continue;
        }
        for lit in string_literals(line) {
            if is_name_candidate(&lit) {
                into.insert(lit);
            }
        }
    }
}

fn visit(dir: &Path, into: &mut BTreeSet<String>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            visit(&path, into);
        } else if path.extension().is_some_and(|e| e == "rs") {
            scan_file(&std::fs::read_to_string(&path).unwrap(), into);
        }
    }
}

/// Every candidate name used in workspace source code.
fn code_names() -> BTreeSet<String> {
    let crates = Path::new("../../crates");
    assert!(crates.is_dir(), "run from crates/obs (cargo test does)");
    let mut names = BTreeSet::new();
    for entry in std::fs::read_dir(crates).unwrap() {
        let src = entry.unwrap().path().join("src");
        if src.is_dir() {
            visit(&src, &mut names);
        }
    }
    assert!(
        names.len() > 40,
        "scanner found only {} names — broken scanner, not a clean codebase",
        names.len()
    );
    names
}

/// Backticked names in one markdown table cell.
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(open) = rest.find('`') {
        rest = &rest[open + 1..];
        let Some(close) = rest.find('`') else { break };
        out.push(rest[..close].to_string());
        rest = &rest[close + 1..];
    }
    out
}

/// Span and event names from the METRICS.md taxonomy tables (rows whose
/// kind cell is `span`, `span scope`, or `event`).
fn taxonomy_names() -> (BTreeSet<String>, BTreeSet<String>) {
    let md = std::fs::read_to_string("../../docs/METRICS.md").unwrap();
    let (mut spans, mut events) = (BTreeSet::new(), BTreeSet::new());
    for line in md.lines() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if cells.len() < 4 {
            continue;
        }
        let names = backticked(cells[1]);
        match cells[2] {
            "span" | "span scope" => spans.extend(names),
            "event" => events.extend(names),
            _ => {}
        }
    }
    (spans, events)
}

#[test]
fn every_code_metric_and_span_is_documented() {
    let glossary = MetricsGlossary::builtin();
    let (spans, _) = taxonomy_names();
    let undocumented: Vec<String> = code_names()
        .into_iter()
        .filter(|n| !glossary.contains(n) && !spans.contains(n))
        .collect();
    assert!(
        undocumented.is_empty(),
        "names used in code but missing from docs/METRICS.md \
         (add a glossary or span-taxonomy row): {undocumented:?}"
    );
}

#[test]
fn every_documented_metric_still_exists_in_code() {
    let code = code_names();
    let glossary = MetricsGlossary::builtin();
    let stale: Vec<&str> = glossary.names().filter(|n| !code.contains(*n)).collect();
    assert!(
        stale.is_empty(),
        "metrics documented in docs/METRICS.md but never emitted in code \
         (remove the row or restore the metric): {stale:?}"
    );
}

#[test]
fn every_documented_span_still_exists_in_code() {
    let code = code_names();
    let (spans, _) = taxonomy_names();
    assert!(!spans.is_empty(), "span taxonomy table parsed empty");
    let stale: Vec<&String> = spans.iter().filter(|n| !code.contains(*n)).collect();
    assert!(
        stale.is_empty(),
        "spans documented in docs/METRICS.md but never opened in code: {stale:?}"
    );
}

#[test]
fn every_event_kind_is_documented() {
    let (_, events) = taxonomy_names();
    for kind in [
        EventKind::BnbIncumbent,
        EventKind::BnbBound,
        EventKind::CgPricingRound,
        EventKind::SimplexPhase,
        EventKind::CacheHit,
        EventKind::CacheMiss,
        EventKind::CacheEvict,
        EventKind::FallbackTransition,
        EventKind::AdmissionQuarantine,
        EventKind::CertifyFailure,
        EventKind::RefactorSingular,
        EventKind::RungSelected,
        EventKind::WalTornTail,
        EventKind::WalRecordSkipped,
        EventKind::RecoveryQuarantine,
    ] {
        assert!(
            events.contains(kind.as_str()),
            "event kind {} missing from the METRICS.md event taxonomy",
            kind.as_str()
        );
    }
}
