//! Bounded-cardinality metric labels.
//!
//! A labeled series is stored in the same registry maps as its unlabeled
//! family, under the name `base{tenant=label}`. Encoding the label in the
//! name keeps `snapshot()`, `drain_counters()`, and `reset()` working
//! unchanged; the Prometheus writer regroups series by family and renders
//! the label properly. Cardinality is bounded by a registry-global LRU
//! table over label values: when a new label would exceed the cap, the
//! least-recently-used label is evicted and every series it owns is
//! *folded* into the [`OTHER_LABEL`] overflow bucket (counter values are
//! transferred atomically, histogram buckets are merged index-exact), so
//! totals are conserved across evictions.

/// The overflow label that absorbs evicted labels' series. Never evicted
/// and never tracked by the LRU table.
pub const OTHER_LABEL: &str = "other";

/// Default LRU cap on distinct label values (overridable via
/// [`crate::MetricsRegistry::set_label_cap`]; `rasa-serve` sets it from
/// `max_tenants`).
pub const DEFAULT_LABEL_CAP: usize = 64;

/// The registry key for the labeled series `base{tenant=label}`.
pub fn labeled_name(base: &str, label: &str) -> String {
    format!("{base}{{tenant={label}}}")
}

/// Split a registry key into `(base, label)` if it is a labeled series
/// name produced by [`labeled_name`]; `None` for plain names.
pub fn split_labeled(name: &str) -> Option<(&str, &str)> {
    let open = name.find("{tenant=")?;
    let rest = &name[open + "{tenant=".len()..];
    let close = rest.find('}')?;
    // a labeled name ends at the closing brace
    if open + "{tenant=".len() + close + 1 != name.len() {
        return None;
    }
    Some((&name[..open], &rest[..close]))
}

/// Clamp a raw label value to the charset `[a-z0-9_-]` (other characters
/// become `_`, uppercase is lowered) and at most 64 bytes, so a hostile
/// tenant id can never smuggle braces, quotes, or unbounded bytes into a
/// registry key or a Prometheus label value.
pub fn sanitize_label(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len().min(64));
    for c in raw.chars().take(64) {
        let c = c.to_ascii_lowercase();
        if c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_name_round_trips_through_split() {
        let name = labeled_name("serve.requests", "acme");
        assert_eq!(name, "serve.requests{tenant=acme}");
        assert_eq!(split_labeled(&name), Some(("serve.requests", "acme")));
        assert_eq!(split_labeled("serve.requests"), None);
        assert_eq!(split_labeled("serve.requests{tenant=x}y"), None);
    }

    #[test]
    fn sanitize_clamps_charset_and_length() {
        assert_eq!(sanitize_label("Acme-Corp_7"), "acme-corp_7");
        assert_eq!(sanitize_label("a{b\"c}d"), "a_b_c_d");
        assert_eq!(sanitize_label(""), "_");
        assert_eq!(sanitize_label(&"x".repeat(200)).len(), 64);
    }
}
