//! Frozen, serializable metric state: what `rasa-bench` writes into
//! `BENCH_pipeline.json` and what tests assert on.

use serde::{Deserialize, Serialize};

/// A histogram frozen at snapshot time. `buckets` holds only the non-empty
/// buckets as `(upper_bound, count)` pairs, upper bounds ascending — the
/// layout is stable across runs so artifacts diff cleanly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Non-empty `(bucket upper bound, count)` pairs, ascending.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts:
    /// the upper bound of the first bucket at which the cumulative count
    /// reaches `q · count`, clamped into `[min, max]`. Exact to within one
    /// log₂ bucket, which is plenty for p50/p95 latency reporting.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(upper, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate (`quantile(0.5)`).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (`quantile(0.95)`).
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate (`quantile(0.99)`). With log₂ buckets the
    /// tail estimate is coarse, so artifacts pair it with the exact
    /// [`max`](HistogramSnapshot::max).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Everything a [`MetricsRegistry`](crate::MetricsRegistry) held at
/// snapshot time, name-sorted for stable JSON output.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, name-ascending.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` per histogram, name-ascending.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Counters whose name starts with `prefix`.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |(n, _)| n.starts_with(prefix))
            .map(|(n, v)| (n.as_str(), *v))
    }

    /// The labeled series of counter family `base`, as `(label, value)`
    /// pairs label-ascending (the unlabeled base series is not included).
    pub fn counter_family<'a>(&'a self, base: &str) -> Vec<(&'a str, u64)> {
        self.counters
            .iter()
            .filter_map(|(name, value)| {
                crate::labels::split_labeled(name)
                    .filter(|(b, _)| *b == base)
                    .map(|(_, label)| (label, *value))
            })
            .collect()
    }

    /// Sum of every labeled series of counter family `base` (folds into
    /// the `other` bucket conserve this total across label evictions).
    pub fn counter_family_total(&self, base: &str) -> u64 {
        self.counter_family(base).iter().map(|(_, v)| v).sum()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parse a snapshot back from [`to_json`](MetricsSnapshot::to_json)
    /// output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[f64]) -> HistogramSnapshot {
        let h = crate::Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn quantile_tracks_distribution_within_a_bucket() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let h = hist(&values);
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        // log2 buckets: p50 within a factor of 2 of the true median 50
        assert!((32.0..=128.0).contains(&p50), "p50 {p50}");
        assert!(p95 >= p50, "p95 {p95} < p50 {p50}");
        assert!(p95 <= 100.0, "clamped to max");
        assert!(h.quantile(0.0) >= h.min);
    }

    #[test]
    fn quantile_of_empty_and_singleton() {
        assert_eq!(hist(&[]).quantile(0.5), 0.0);
        let one = hist(&[3.5]);
        assert_eq!(one.quantile(0.5), 3.5);
        assert_eq!(one.quantile(0.99), 3.5);
    }

    #[test]
    fn prefix_and_lookup_helpers() {
        let reg = crate::MetricsRegistry::new();
        reg.add("cg.rounds", 4);
        reg.add("cg.patterns", 9);
        reg.add("bnb.nodes", 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cg.rounds"), 4);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.counters_with_prefix("cg.").count(), 2);
        assert!(snap.histogram("none").is_none());
    }
}
