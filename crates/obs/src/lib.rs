#![warn(missing_docs)]

//! # rasa-obs
//!
//! The repository's instrumentation substrate: lightweight counters,
//! log-bucketed histograms and scoped span timers behind a thread-safe
//! [`MetricsRegistry`] whose [`MetricsSnapshot`] serializes to JSON.
//!
//! The paper's headline claims are quantitative — resource-usage
//! reduction, solve-time budgets, migration counts (Figs 5–13) — and
//! partition-and-solve systems live or die by per-subproblem solve
//! statistics. This crate is how every hot layer reports them:
//!
//! * `rasa-lp` — simplex pivots, bound flips, refactorizations, Bland's
//!   rule activations, phase-1 vs phase-2 iterations;
//! * `rasa-mip` — branch-and-bound nodes, prunes, incumbent updates,
//!   final optimality gap;
//! * `rasa-solver` — column-generation pricing rounds, patterns, master
//!   LP re-solves;
//! * `rasa-partition` — stage sizes, cut weights, partition wall time;
//! * `rasa-core` — per-pipeline-stage spans, per-subproblem wall time,
//!   chosen algorithm, fallback-ladder depth, `SolveStatus` tallies, lost
//!   parallel slots.
//!
//! ## Recording model
//!
//! Hot loops never touch the registry per iteration: solvers accumulate
//! plain local counters and *flush once per solve* (a handful of lock
//! acquisitions per subproblem), so instrumentation overhead is far below
//! measurement noise. Long-lived recording sites may also hold an
//! [`Arc`](std::sync::Arc) handle from [`MetricsRegistry::counter`] /
//! [`MetricsRegistry::histogram`] and record lock-free.
//!
//! The process-wide registry behind [`global()`] is what the solver crates
//! flush into; [`set_enabled(false)`](MetricsRegistry::set_enabled) turns
//! every recording call into a single relaxed atomic load and branch.
//!
//! ```
//! let reg = rasa_obs::MetricsRegistry::new();
//! reg.add("demo.solves", 1);
//! reg.record("demo.latency_secs", 0.125);
//! {
//!     let _span = reg.span("demo.span_secs"); // records on drop
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("demo.solves"), 1);
//! let json = snap.to_json().unwrap();
//! let back = rasa_obs::MetricsSnapshot::from_json(&json).unwrap();
//! assert_eq!(snap, back);
//! ```

pub mod flight;
pub mod labels;
mod metrics;
pub mod prometheus;
mod registry;
mod snapshot;

pub use flight::{
    current_request_context, recorder, set_request_context, with_request_context, ContextGuard,
    EventKind, FlightConfig, FlightRecorder, FlightRecording, FlightScope, FlightSpan,
    RequestContext, SpanNode, TraceEvent, BLACKBOX_SCHEMA_VERSION,
};
pub use labels::{labeled_name, sanitize_label, split_labeled, DEFAULT_LABEL_CAP, OTHER_LABEL};
pub use metrics::{Counter, Histogram, BUCKETS};
pub use prometheus::{write_prometheus, MetricsGlossary, PrometheusError};
pub use registry::{global, MetricsRegistry, Span};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
