//! The named-metric registry, the process-wide [`global()`] instance the
//! solver crates flush into, and the scoped [`Span`] timer.

use crate::labels::{labeled_name, sanitize_label, DEFAULT_LABEL_CAP, OTHER_LABEL};
use crate::metrics::{Counter, Histogram};
use crate::snapshot::MetricsSnapshot;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// LRU table over the distinct label values the labeled-metric API has
/// seen. Recency is a monotone sequence number per touch; eviction picks
/// the smallest.
#[derive(Debug)]
struct LabelTable {
    cap: usize,
    seq: u64,
    last_used: BTreeMap<String, u64>,
}

impl Default for LabelTable {
    fn default() -> Self {
        LabelTable {
            cap: DEFAULT_LABEL_CAP,
            seq: 0,
            last_used: BTreeMap::new(),
        }
    }
}

impl LabelTable {
    fn lru(&self) -> Option<String> {
        self.last_used
            .iter()
            .min_by_key(|(_, &seq)| seq)
            .map(|(label, _)| label.clone())
    }
}

/// A thread-safe registry of named counters and histograms.
///
/// Metric names are dot-separated paths (`"simplex.pivots"`,
/// `"pipeline.stage.solve_secs"`). Recording through
/// [`add`](MetricsRegistry::add) / [`record`](MetricsRegistry::record)
/// takes one short lock to resolve the name; hot paths that record often
/// should hold the [`Arc`] handle from
/// [`counter`](MetricsRegistry::counter) /
/// [`histogram`](MetricsRegistry::histogram) and record lock-free.
///
/// When disabled, every recording call is a relaxed atomic load and a
/// branch — near-zero cost, so instrumented code needs no `cfg` gates.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    labels: Mutex<LabelTable>,
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: AtomicBool::new(true),
            ..Default::default()
        }
    }

    /// A disabled registry: all recording calls are no-ops until
    /// [`set_enabled`](MetricsRegistry::set_enabled)`(true)`.
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// Turn recording on or off. Snapshots work either way.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is recording on?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The counter registered under `name` (created on first use). The
    /// handle records lock-free and ignores the enabled flag — callers on
    /// hot paths check [`enabled`](MetricsRegistry::enabled) once.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Add `n` to the counter `name`. No-op when disabled. Adding zero
    /// still registers the name, so always-reported counters (e.g.
    /// `pipeline.lost_slots`) appear in snapshots even when they never
    /// fired.
    pub fn add(&self, name: &str, n: u64) {
        if self.enabled() {
            self.counter(name).add(n);
        }
    }

    /// Add one to the counter `name`. No-op when disabled.
    pub fn inc(&self, name: &str) {
        if self.enabled() {
            self.counter(name).inc();
        }
    }

    /// Record `v` into the histogram `name`. No-op when disabled.
    pub fn record(&self, name: &str, v: f64) {
        if self.enabled() {
            self.histogram(name).record(v);
        }
    }

    /// Record a duration (in seconds) into the histogram `name`.
    pub fn record_duration(&self, name: &str, d: std::time::Duration) {
        self.record(name, d.as_secs_f64());
    }

    /// Cap the number of distinct label values the labeled-metric API
    /// tracks (minimum 1). Lowering the cap below the current residency
    /// folds least-recently-used labels into the `other` bucket until the
    /// table fits.
    pub fn set_label_cap(&self, cap: usize) {
        let evicted: Vec<String> = {
            let mut table = self.labels.lock().unwrap_or_else(|e| e.into_inner());
            table.cap = cap.max(1);
            let mut evicted = Vec::new();
            while table.last_used.len() > table.cap {
                match table.lru() {
                    Some(label) => {
                        table.last_used.remove(&label);
                        evicted.push(label);
                    }
                    None => break,
                }
            }
            evicted
        };
        for label in &evicted {
            self.fold_label_into_other(label);
        }
    }

    /// Number of label values currently resident in the LRU table (the
    /// `other` overflow bucket is not tracked).
    pub fn label_count(&self) -> usize {
        self.labels
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .last_used
            .len()
    }

    /// Resolve a raw label value: sanitize it, mark it most-recently-used,
    /// and — when admitting it would exceed the cap — evict the LRU label,
    /// folding every series that label owns into the `other` bucket.
    fn resolve_label(&self, raw: &str) -> String {
        let label = sanitize_label(raw);
        if label == OTHER_LABEL {
            return label;
        }
        let evicted: Option<String> = {
            let mut table = self.labels.lock().unwrap_or_else(|e| e.into_inner());
            table.seq += 1;
            let seq = table.seq;
            if let Some(entry) = table.last_used.get_mut(&label) {
                *entry = seq;
                None
            } else {
                let evicted = if table.last_used.len() >= table.cap {
                    let lru = table.lru();
                    if let Some(ref doomed) = lru {
                        table.last_used.remove(doomed);
                    }
                    lru
                } else {
                    None
                };
                table.last_used.insert(label.clone(), seq);
                evicted
            }
        };
        if let Some(evicted) = evicted {
            self.fold_label_into_other(&evicted);
        }
        label
    }

    /// Fold every series owned by `label` into its `other`-labeled
    /// counterpart and drop the originals, conserving totals: counter
    /// values transfer via an atomic `take`+`add`, histograms merge
    /// bucket-index exact. Each fold bumps `obs.label_evictions`.
    fn fold_label_into_other(&self, label: &str) {
        let suffix = format!("{{tenant={label}}}");
        {
            let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            let doomed: Vec<String> = map
                .keys()
                .filter(|k| k.ends_with(suffix.as_str()))
                .cloned()
                .collect();
            for key in doomed {
                if let Some(counter) = map.remove(&key) {
                    let base = &key[..key.len() - suffix.len()];
                    let into = Arc::clone(
                        map.entry(labeled_name(base, OTHER_LABEL))
                            .or_insert_with(|| Arc::new(Counter::new())),
                    );
                    into.add(counter.take());
                }
            }
        }
        {
            let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
            let doomed: Vec<String> = map
                .keys()
                .filter(|k| k.ends_with(suffix.as_str()))
                .cloned()
                .collect();
            for key in doomed {
                if let Some(hist) = map.remove(&key) {
                    let base = &key[..key.len() - suffix.len()];
                    let into = Arc::clone(
                        map.entry(labeled_name(base, OTHER_LABEL))
                            .or_insert_with(|| Arc::new(Histogram::new())),
                    );
                    into.merge_from(&hist);
                }
            }
        }
        self.inc("obs.label_evictions");
    }

    /// Add `n` to the `tenant=label` series of counter family `base`
    /// (stored under the key `base{tenant=label}`). Only the labeled
    /// series is touched — callers wanting a global total record the
    /// unlabeled `base` separately. No-op when disabled.
    pub fn add_labeled(&self, base: &str, label: &str, n: u64) {
        if self.enabled() {
            let label = self.resolve_label(label);
            self.counter(&labeled_name(base, &label)).add(n);
        }
    }

    /// Add one to the `tenant=label` series of counter family `base`.
    pub fn inc_labeled(&self, base: &str, label: &str) {
        self.add_labeled(base, label, 1);
    }

    /// Record `v` into the `tenant=label` series of histogram family
    /// `base`. No-op when disabled.
    pub fn record_labeled(&self, base: &str, label: &str, v: f64) {
        if self.enabled() {
            let label = self.resolve_label(label);
            self.histogram(&labeled_name(base, &label)).record(v);
        }
    }

    /// Record a duration (seconds) into the `tenant=label` series of
    /// histogram family `base`.
    pub fn record_duration_labeled(&self, base: &str, label: &str, d: std::time::Duration) {
        self.record_labeled(base, label, d.as_secs_f64());
    }

    /// A scoped timer that records its elapsed seconds into the histogram
    /// `name` when dropped. Returns an inert span when disabled.
    pub fn span(&self, name: &str) -> Span {
        Span {
            target: self
                .enabled()
                .then(|| (self.histogram(name), Instant::now())),
        }
    }

    /// Freeze every metric into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Atomically drain every counter: read-and-zero each one in a single
    /// atomic step ([`Counter::take`]), returning the `(name, value)`
    /// pairs (name-ascending, zero-valued entries included).
    ///
    /// Unlike `snapshot()` followed by `reset()`, increments flushed
    /// concurrently can never fall into the gap between the read and the
    /// zeroing — each increment is returned by exactly one drain. This is
    /// what interval scrapers (Prometheus-style delta exports) should use.
    /// Histograms are intentionally *not* drained: their count/sum/min/max
    /// live in separate atomics and cannot be read-and-reset as one unit,
    /// so they stay cumulative and scrape-side code takes differences.
    pub fn drain_counters(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.take()))
            .collect()
    }

    /// Reset every metric to zero/empty (names stay registered, handles
    /// stay valid).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            c.reset();
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            h.reset();
        }
    }
}

/// Scoped timer from [`MetricsRegistry::span`]; records on drop.
#[must_use = "a span records when dropped — bind it with `let _span = …`"]
pub struct Span {
    target: Option<(Arc<Histogram>, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.target.take() {
            hist.record_duration(start.elapsed());
        }
    }
}

/// The process-wide registry every solver layer flushes into. Enabled by
/// default; `global().set_enabled(false)` silences all built-in telemetry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_record_round_trip_through_snapshot() {
        let reg = MetricsRegistry::new();
        reg.add("a.count", 3);
        reg.inc("a.count");
        reg.record("a.secs", 0.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), 4);
        assert_eq!(snap.histogram("a.secs").map(|h| h.count), Some(1));
        reg.reset();
        assert_eq!(reg.snapshot().counter("a.count"), 0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::disabled();
        reg.add("x", 5);
        reg.record("y", 1.0);
        {
            let _span = reg.span("z");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), 0);
        assert!(snap.histogram("y").is_none());
        assert!(snap.histogram("z").is_none());
        reg.set_enabled(true);
        reg.add("x", 5);
        assert_eq!(reg.snapshot().counter("x"), 5);
    }

    #[test]
    fn span_records_elapsed_time() {
        let reg = MetricsRegistry::new();
        {
            let _span = reg.span("timed");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = reg.snapshot();
        let h = snap.histogram("timed").expect("span recorded");
        assert_eq!(h.count, 1);
        assert!(h.max >= 0.002, "max {}", h.max);
    }

    #[test]
    fn labeled_series_are_lru_capped_and_fold_into_other() {
        let reg = MetricsRegistry::new();
        reg.set_label_cap(2);
        // 5 distinct labels against a cap of 2: 3 folds into `other`
        for (i, label) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            reg.add_labeled("serve.requests", label, i as u64 + 1);
            reg.record_labeled("serve.request_seconds", label, 0.25);
        }
        assert!(reg.label_count() <= 2, "resident: {}", reg.label_count());
        let snap = reg.snapshot();
        // totals conserved: 1+2+3+4+5 spread over survivors + other
        let total: u64 = snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("serve.requests{"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total, 15);
        assert!(
            snap.counter("serve.requests{tenant=other}") >= 1 + 2 + 3,
            "first three labels folded: {:?}",
            snap.counters
        );
        let hist_total: u64 = snap
            .histograms
            .iter()
            .filter(|(name, _)| name.starts_with("serve.request_seconds{"))
            .map(|(_, h)| h.count)
            .sum();
        assert_eq!(hist_total, 5, "histogram observations conserved");
        assert_eq!(snap.counter("obs.label_evictions"), 3);

        // drain sees the same conserved family total as the snapshot did
        let drained: u64 = reg
            .drain_counters()
            .into_iter()
            .filter(|(name, _)| name.starts_with("serve.requests{"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(drained, 15);
    }

    #[test]
    fn touching_a_label_refreshes_its_recency() {
        let reg = MetricsRegistry::new();
        reg.set_label_cap(2);
        reg.inc_labeled("serve.requests", "a");
        reg.inc_labeled("serve.requests", "b");
        reg.inc_labeled("serve.requests", "a"); // refresh a → b is now LRU
        reg.inc_labeled("serve.requests", "c"); // evicts b, not a
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.requests{tenant=a}"), 2);
        assert_eq!(snap.counter("serve.requests{tenant=b}"), 0);
        assert_eq!(snap.counter("serve.requests{tenant=other}"), 1);
    }

    #[test]
    fn hostile_labels_are_sanitized_and_other_is_never_tracked() {
        let reg = MetricsRegistry::new();
        reg.set_label_cap(4);
        reg.inc_labeled("serve.requests", "Evil{le=\"1\"}\n");
        reg.inc_labeled("serve.requests", "other");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.requests{tenant=evil_le__1___}"), 1);
        assert_eq!(snap.counter("serve.requests{tenant=other}"), 1);
        assert_eq!(reg.label_count(), 1, "`other` bypasses the LRU table");
        // lowering the cap folds residents down to fit
        reg.inc_labeled("serve.requests", "x");
        reg.inc_labeled("serve.requests", "y");
        reg.set_label_cap(1);
        assert_eq!(reg.label_count(), 1);
        assert!(reg.snapshot().counter("serve.requests{tenant=other}") >= 3);
    }

    #[test]
    fn global_registry_is_shared() {
        let name = "obs.registry_test.global";
        let before = global().snapshot().counter(name);
        global().add(name, 2);
        assert!(global().snapshot().counter(name) >= before + 2);
    }
}
