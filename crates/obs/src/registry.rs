//! The named-metric registry, the process-wide [`global()`] instance the
//! solver crates flush into, and the scoped [`Span`] timer.

use crate::metrics::{Counter, Histogram};
use crate::snapshot::MetricsSnapshot;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A thread-safe registry of named counters and histograms.
///
/// Metric names are dot-separated paths (`"simplex.pivots"`,
/// `"pipeline.stage.solve_secs"`). Recording through
/// [`add`](MetricsRegistry::add) / [`record`](MetricsRegistry::record)
/// takes one short lock to resolve the name; hot paths that record often
/// should hold the [`Arc`] handle from
/// [`counter`](MetricsRegistry::counter) /
/// [`histogram`](MetricsRegistry::histogram) and record lock-free.
///
/// When disabled, every recording call is a relaxed atomic load and a
/// branch — near-zero cost, so instrumented code needs no `cfg` gates.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: AtomicBool::new(true),
            ..Default::default()
        }
    }

    /// A disabled registry: all recording calls are no-ops until
    /// [`set_enabled`](MetricsRegistry::set_enabled)`(true)`.
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// Turn recording on or off. Snapshots work either way.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is recording on?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The counter registered under `name` (created on first use). The
    /// handle records lock-free and ignores the enabled flag — callers on
    /// hot paths check [`enabled`](MetricsRegistry::enabled) once.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Add `n` to the counter `name`. No-op when disabled. Adding zero
    /// still registers the name, so always-reported counters (e.g.
    /// `pipeline.lost_slots`) appear in snapshots even when they never
    /// fired.
    pub fn add(&self, name: &str, n: u64) {
        if self.enabled() {
            self.counter(name).add(n);
        }
    }

    /// Add one to the counter `name`. No-op when disabled.
    pub fn inc(&self, name: &str) {
        if self.enabled() {
            self.counter(name).inc();
        }
    }

    /// Record `v` into the histogram `name`. No-op when disabled.
    pub fn record(&self, name: &str, v: f64) {
        if self.enabled() {
            self.histogram(name).record(v);
        }
    }

    /// Record a duration (in seconds) into the histogram `name`.
    pub fn record_duration(&self, name: &str, d: std::time::Duration) {
        self.record(name, d.as_secs_f64());
    }

    /// A scoped timer that records its elapsed seconds into the histogram
    /// `name` when dropped. Returns an inert span when disabled.
    pub fn span(&self, name: &str) -> Span {
        Span {
            target: self
                .enabled()
                .then(|| (self.histogram(name), Instant::now())),
        }
    }

    /// Freeze every metric into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Atomically drain every counter: read-and-zero each one in a single
    /// atomic step ([`Counter::take`]), returning the `(name, value)`
    /// pairs (name-ascending, zero-valued entries included).
    ///
    /// Unlike `snapshot()` followed by `reset()`, increments flushed
    /// concurrently can never fall into the gap between the read and the
    /// zeroing — each increment is returned by exactly one drain. This is
    /// what interval scrapers (Prometheus-style delta exports) should use.
    /// Histograms are intentionally *not* drained: their count/sum/min/max
    /// live in separate atomics and cannot be read-and-reset as one unit,
    /// so they stay cumulative and scrape-side code takes differences.
    pub fn drain_counters(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.take()))
            .collect()
    }

    /// Reset every metric to zero/empty (names stay registered, handles
    /// stay valid).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            c.reset();
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            h.reset();
        }
    }
}

/// Scoped timer from [`MetricsRegistry::span`]; records on drop.
#[must_use = "a span records when dropped — bind it with `let _span = …`"]
pub struct Span {
    target: Option<(Arc<Histogram>, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.target.take() {
            hist.record_duration(start.elapsed());
        }
    }
}

/// The process-wide registry every solver layer flushes into. Enabled by
/// default; `global().set_enabled(false)` silences all built-in telemetry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_record_round_trip_through_snapshot() {
        let reg = MetricsRegistry::new();
        reg.add("a.count", 3);
        reg.inc("a.count");
        reg.record("a.secs", 0.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), 4);
        assert_eq!(snap.histogram("a.secs").map(|h| h.count), Some(1));
        reg.reset();
        assert_eq!(reg.snapshot().counter("a.count"), 0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::disabled();
        reg.add("x", 5);
        reg.record("y", 1.0);
        {
            let _span = reg.span("z");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), 0);
        assert!(snap.histogram("y").is_none());
        assert!(snap.histogram("z").is_none());
        reg.set_enabled(true);
        reg.add("x", 5);
        assert_eq!(reg.snapshot().counter("x"), 5);
    }

    #[test]
    fn span_records_elapsed_time() {
        let reg = MetricsRegistry::new();
        {
            let _span = reg.span("timed");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = reg.snapshot();
        let h = snap.histogram("timed").expect("span recorded");
        assert_eq!(h.count, 1);
        assert!(h.max >= 0.002, "max {}", h.max);
    }

    #[test]
    fn global_registry_is_shared() {
        let name = "obs.registry_test.global";
        let before = global().snapshot().counter(name);
        global().add(name, 2);
        assert!(global().snapshot().counter(name) >= before + 2);
    }
}
