//! Prometheus text-format exposition for [`MetricsSnapshot`], with
//! `# HELP` / `# TYPE` lines generated from the `docs/METRICS.md`
//! glossary — the markdown file is the single source of truth for metric
//! names, kinds, and help strings, and [`write_prometheus`] *fails* on a
//! metric the glossary doesn't know (the same contract the
//! doc-consistency test enforces in the other direction).
//!
//! Names are sanitized for Prometheus (`simplex.pivots` →
//! `rasa_simplex_pivots`); histograms are written as cumulative
//! `_bucket{le="…"}` series plus `_sum` / `_count`, straight from the
//! log₂ bucket layout of [`HistogramSnapshot`].
//!
//! ```
//! use rasa_obs::{MetricsRegistry, prometheus};
//! let reg = MetricsRegistry::new();
//! reg.add("simplex.pivots", 42);
//! let text = prometheus::write_prometheus(&reg.snapshot(), prometheus::MetricsGlossary::builtin())
//!     .unwrap();
//! assert!(text.contains("# TYPE rasa_simplex_pivots counter"));
//! assert!(text.contains("rasa_simplex_pivots 42"));
//! ```

use crate::labels::split_labeled;
use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// The glossary markdown, compiled in so the exposition writer and the
/// docs can never drift apart silently.
const GLOSSARY_MD: &str = include_str!("../../../docs/METRICS.md");

/// What kind of metric a glossary entry documents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic `u64` counter.
    Counter,
    /// Log₂-bucketed `f64` histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One documented metric.
#[derive(Clone, Debug)]
struct GlossaryEntry {
    kind: MetricKind,
    help: String,
}

/// The metric glossary parsed out of `docs/METRICS.md` tables.
///
/// The parser understands the glossary's table convention: rows of the
/// form `` | `name` | counter | help text | `` (a cell may document
/// several names, backtick-quoted, sharing one kind and help string).
#[derive(Clone, Debug, Default)]
pub struct MetricsGlossary {
    entries: BTreeMap<String, GlossaryEntry>,
}

impl MetricsGlossary {
    /// Parse a glossary from METRICS.md-style markdown.
    pub fn parse(markdown: &str) -> Self {
        let mut entries = BTreeMap::new();
        for line in markdown.lines() {
            let line = line.trim();
            if !line.starts_with('|') {
                continue;
            }
            let cells: Vec<&str> = line
                .trim_matches('|')
                .split('|')
                .map(str::trim)
                .collect();
            if cells.len() < 3 {
                continue;
            }
            let kind = match cells[1] {
                "counter" => MetricKind::Counter,
                "histogram" => MetricKind::Histogram,
                _ => continue, // header or separator row
            };
            let help = cells[2..].join(" | "); // help text may itself contain '|'
            let help = help.replace('`', "");
            for name in backticked_names(cells[0]) {
                entries.insert(
                    name,
                    GlossaryEntry {
                        kind,
                        help: help.clone(),
                    },
                );
            }
        }
        MetricsGlossary { entries }
    }

    /// The glossary compiled in from `docs/METRICS.md`.
    pub fn builtin() -> &'static MetricsGlossary {
        static BUILTIN: OnceLock<MetricsGlossary> = OnceLock::new();
        BUILTIN.get_or_init(|| MetricsGlossary::parse(GLOSSARY_MD))
    }

    /// Is `name` documented?
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// The documented kind of `name`, if present.
    pub fn kind_of(&self, name: &str) -> Option<MetricKind> {
        self.entries.get(name).map(|e| e.kind)
    }

    /// The documented help string of `name`, if present.
    pub fn help_of(&self, name: &str) -> Option<&str> {
        self.entries.get(name).map(|e| e.help.as_str())
    }

    /// Every documented metric name, ascending.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of documented metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the glossary empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Extract backtick-quoted metric names from a table cell (a cell may
/// document several names, e.g. `` `pipeline.alg.mip` / `pipeline.alg.cg` ``).
fn backticked_names(cell: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = cell;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        let candidate = &after[..close];
        if !candidate.is_empty()
            && candidate
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
        {
            names.push(candidate.to_string());
        }
        rest = &after[close + 1..];
    }
    names
}

/// Why exposition failed: the snapshot holds a metric the glossary
/// disagrees with. Both variants mean `docs/METRICS.md` and the emitting
/// code have drifted — fix the docs (or the code), don't suppress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrometheusError {
    /// A snapshot metric with no glossary row.
    UnknownMetric {
        /// The undocumented metric name.
        name: String,
        /// What the snapshot says it is.
        actual_kind: &'static str,
    },
    /// A snapshot metric documented as the other kind.
    KindMismatch {
        /// The metric name.
        name: String,
        /// The kind documented in the glossary.
        documented: &'static str,
        /// The kind observed in the snapshot.
        actual: &'static str,
    },
}

impl std::fmt::Display for PrometheusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrometheusError::UnknownMetric { name, actual_kind } => write!(
                f,
                "{actual_kind} `{name}` is not documented in docs/METRICS.md — \
                 add a glossary row for it"
            ),
            PrometheusError::KindMismatch {
                name,
                documented,
                actual,
            } => write!(
                f,
                "`{name}` is documented as a {documented} in docs/METRICS.md \
                 but the registry holds a {actual}"
            ),
        }
    }
}

impl std::error::Error for PrometheusError {}

/// Sanitize a dotted metric name for Prometheus: `simplex.pivots` →
/// `rasa_simplex_pivots`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("rasa_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a help string for a `# HELP` line.
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value for `{tenant="…"}` (registry labels are already
/// sanitized; this layer escapes defensively anyway).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Group snapshot series into families: a labeled name
/// (`base{tenant=label}`) joins the family of its base, plain names form
/// their own family. Within a family the unlabeled series (if any) comes
/// first, then labels ascending — the order the name-sorted snapshot
/// already delivers them in.
fn family_groups<T>(series: &[(String, T)]) -> BTreeMap<&str, Vec<(Option<&str>, &T)>> {
    let mut families: BTreeMap<&str, Vec<(Option<&str>, &T)>> = BTreeMap::new();
    for (name, value) in series {
        match split_labeled(name) {
            Some((base, label)) => families.entry(base).or_default().push((Some(label), value)),
            None => families.entry(name.as_str()).or_default().push((None, value)),
        }
    }
    families
}

/// Glossary lookup for one family base name, mapping disagreement to the
/// right error.
fn check_kind(
    glossary: &MetricsGlossary,
    base: &str,
    expected: MetricKind,
) -> Result<(), PrometheusError> {
    let actual = expected.as_str();
    match glossary.kind_of(base) {
        Some(kind) if kind == expected => Ok(()),
        Some(other) => Err(PrometheusError::KindMismatch {
            name: base.to_string(),
            documented: other.as_str(),
            actual,
        }),
        None => Err(PrometheusError::UnknownMetric {
            name: base.to_string(),
            actual_kind: actual,
        }),
    }
}

/// Render `snapshot` in the Prometheus text exposition format, taking
/// `# HELP` / `# TYPE` metadata from `glossary`. Errors when a metric is
/// undocumented or documented as the wrong kind — the glossary is the
/// contract, not a suggestion. Labeled series (`base{tenant=label}` keys
/// from the registry's labeled API) are validated against their *base*
/// name's glossary row and rendered as one family: `# HELP` / `# TYPE`
/// once, then one sample per label with a `tenant="…"` label pair.
pub fn write_prometheus(
    snapshot: &MetricsSnapshot,
    glossary: &MetricsGlossary,
) -> Result<String, PrometheusError> {
    let mut out = String::new();
    for (base, series) in family_groups(&snapshot.counters) {
        check_kind(glossary, base, MetricKind::Counter)?;
        let pname = prometheus_name(base);
        let help = glossary.help_of(base).unwrap_or_default();
        let _ = writeln!(out, "# HELP {pname} {}", escape_help(help));
        let _ = writeln!(out, "# TYPE {pname} counter");
        for (label, value) in series {
            match label {
                None => {
                    let _ = writeln!(out, "{pname} {value}");
                }
                Some(label) => {
                    let _ =
                        writeln!(out, "{pname}{{tenant=\"{}\"}} {value}", escape_label(label));
                }
            }
        }
    }
    for (base, series) in family_groups(&snapshot.histograms) {
        check_kind(glossary, base, MetricKind::Histogram)?;
        let pname = prometheus_name(base);
        let help = glossary.help_of(base).unwrap_or_default();
        let _ = writeln!(out, "# HELP {pname} {}", escape_help(help));
        let _ = writeln!(out, "# TYPE {pname} histogram");
        for (label, hist) in series {
            write_histogram_series(&mut out, &pname, label, hist);
        }
    }
    Ok(out)
}

/// Cumulative `_bucket` / `_sum` / `_count` series for one histogram
/// (one `tenant` label pair merged into every brace set when labeled).
fn write_histogram_series(
    out: &mut String,
    pname: &str,
    label: Option<&str>,
    hist: &HistogramSnapshot,
) {
    let tenant = label.map(|l| format!("tenant=\"{}\"", escape_label(l)));
    let suffix = match &tenant {
        Some(t) => format!("{{{t}}}"),
        None => String::new(),
    };
    let mut cumulative = 0u64;
    for &(upper, count) in &hist.buckets {
        cumulative += count;
        match &tenant {
            Some(t) => {
                let _ = writeln!(out, "{pname}_bucket{{{t},le=\"{upper}\"}} {cumulative}");
            }
            None => {
                let _ = writeln!(out, "{pname}_bucket{{le=\"{upper}\"}} {cumulative}");
            }
        }
    }
    match &tenant {
        Some(t) => {
            let _ = writeln!(out, "{pname}_bucket{{{t},le=\"+Inf\"}} {}", hist.count);
        }
        None => {
            let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", hist.count);
        }
    }
    let _ = writeln!(out, "{pname}_sum{suffix} {}", hist.sum);
    let _ = writeln!(out, "{pname}_count{suffix} {}", hist.count);
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn builtin_glossary_parses_and_knows_the_core_vocabulary() {
        let g = MetricsGlossary::builtin();
        assert!(g.len() > 30, "glossary rows parsed: {}", g.len());
        assert_eq!(g.kind_of("simplex.pivots"), Some(MetricKind::Counter));
        assert_eq!(g.kind_of("bnb.final_gap"), Some(MetricKind::Histogram));
        assert_eq!(
            g.kind_of("guard.subproblem_seconds"),
            Some(MetricKind::Histogram)
        );
        // the shared-cell row documents both names
        assert!(g.contains("pipeline.alg.mip"));
        assert!(g.contains("pipeline.alg.cg"));
        assert!(g
            .help_of("simplex.pivots")
            .unwrap()
            .contains("Basis-change pivots"));
    }

    #[test]
    fn exposition_renders_counters_and_histograms() {
        let reg = MetricsRegistry::new();
        reg.add("simplex.pivots", 7);
        reg.record("cg.solve_seconds", 0.5);
        reg.record("cg.solve_seconds", 0.75);
        let text = write_prometheus(&reg.snapshot(), MetricsGlossary::builtin()).unwrap();
        assert!(text.contains("# HELP rasa_simplex_pivots "));
        assert!(text.contains("# TYPE rasa_simplex_pivots counter"));
        assert!(text.contains("\nrasa_simplex_pivots 7\n"));
        assert!(text.contains("# TYPE rasa_cg_solve_seconds histogram"));
        assert!(text.contains("rasa_cg_solve_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("rasa_cg_solve_seconds_sum 1.25"));
        assert!(text.contains("rasa_cg_solve_seconds_count 2"));
        // buckets are cumulative and end at the +Inf total
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn labeled_series_render_as_one_family_with_tenant_labels() {
        let reg = MetricsRegistry::new();
        reg.add("serve.requests", 10); // global total
        reg.add_labeled("serve.requests", "acme", 7);
        reg.add_labeled("serve.requests", "beta", 3);
        reg.record_labeled("serve.request_seconds", "acme", 0.5);
        let text = write_prometheus(&reg.snapshot(), MetricsGlossary::builtin()).unwrap();
        // HELP/TYPE appear once per family, before all its samples
        assert_eq!(text.matches("# TYPE rasa_serve_requests counter").count(), 1);
        assert!(text.contains("\nrasa_serve_requests 10\n"));
        assert!(text.contains("rasa_serve_requests{tenant=\"acme\"} 7"));
        assert!(text.contains("rasa_serve_requests{tenant=\"beta\"} 3"));
        assert_eq!(
            text.matches("# TYPE rasa_serve_request_seconds histogram")
                .count(),
            1
        );
        assert!(text.contains("rasa_serve_request_seconds_bucket{tenant=\"acme\",le=\"+Inf\"} 1"));
        assert!(text.contains("rasa_serve_request_seconds_count{tenant=\"acme\"} 1"));
        // an undocumented labeled family still errors on its base name
        reg.add_labeled("made.up_counter", "acme", 1);
        let err = write_prometheus(&reg.snapshot(), MetricsGlossary::builtin()).unwrap_err();
        assert_eq!(
            err,
            PrometheusError::UnknownMetric {
                name: "made.up_counter".into(),
                actual_kind: "counter",
            }
        );
    }

    #[test]
    fn undocumented_metric_is_an_error() {
        let reg = MetricsRegistry::new();
        reg.add("made.up_counter", 1);
        let err = write_prometheus(&reg.snapshot(), MetricsGlossary::builtin()).unwrap_err();
        assert_eq!(
            err,
            PrometheusError::UnknownMetric {
                name: "made.up_counter".into(),
                actual_kind: "counter",
            }
        );
        assert!(err.to_string().contains("docs/METRICS.md"));
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let reg = MetricsRegistry::new();
        reg.record("simplex.pivots", 1.0); // documented as a counter
        let err = write_prometheus(&reg.snapshot(), MetricsGlossary::builtin()).unwrap_err();
        assert!(matches!(err, PrometheusError::KindMismatch { .. }));
    }

    #[test]
    fn name_sanitization() {
        assert_eq!(prometheus_name("simplex.pivots"), "rasa_simplex_pivots");
        assert_eq!(
            prometheus_name("guard.status.fell_back"),
            "rasa_guard_status_fell_back"
        );
    }

    #[test]
    fn multi_name_cells_share_kind_and_help() {
        let md = "| `a.x` / `a.y` | counter | shared help |";
        let g = MetricsGlossary::parse(md);
        assert_eq!(g.len(), 2);
        assert_eq!(g.help_of("a.x"), g.help_of("a.y"));
    }
}
