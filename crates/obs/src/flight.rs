//! The solver **flight recorder**: hierarchical span tracing plus typed
//! structured events, buffered per solve and flushed once at solve end —
//! the qualitative counterpart of the counter/histogram registry.
//!
//! Counters say *how much* (pivots, nodes, pricing rounds); the flight
//! recorder says *why*: which subproblem timed out, how the B&B bound
//! evolved toward the incumbent, which CG pricing round stopped producing
//! columns, where the fallback ladder transitioned. On a degraded solve
//! the whole recording is dumped as a self-contained JSON "black box"
//! file; healthy solves are sampled 1-in-N (configurable).
//!
//! ## Recording model
//!
//! Recording follows the same discipline as the counter path: **hot loops
//! never touch shared state**. Each solve owns a thread-local
//! [`trace`](self) — a span stack plus a bounded ring buffer of events
//! (oldest dropped, drop count recorded) — and the recorder's single lock
//! is taken exactly once per solve, at flush. When the recorder is
//! disabled (the default), every call is one relaxed atomic load and a
//! branch.
//!
//! ## API shape
//!
//! * [`begin_solve`] opens a per-thread recording scope (or, when a scope
//!   is already active on this thread, a nested span — so a pipeline run
//!   on the main thread nests its sequential subproblem solves, while
//!   parallel workers each record their own solve).
//! * [`span`] / [`span_with`] push scoped child spans, closed on drop.
//! * [`emit`] appends a typed [`TraceEvent`] to the ring buffer; the
//!   closure is only evaluated while a recording is active.
//! * [`FlightScope::set_verdict`] labels the solve; degraded verdicts
//!   trigger a black-box dump at flush.
//!
//! ```
//! use rasa_obs::flight::{self, FlightConfig, TraceEvent};
//! let recorder = rasa_obs::flight::recorder();
//! recorder.configure(FlightConfig { sample_every: 1, ..Default::default() });
//! {
//!     let mut scope = flight::begin_solve("solve.demo", &[("sub_id", "3".into())]);
//!     {
//!         let _sp = flight::span("demo.inner");
//!         flight::emit(|| TraceEvent::fallback_transition(0, 1, "mip", "cg"));
//!     }
//!     scope.set_verdict("ok", false);
//! }
//! let rec = recorder.recent().pop().expect("recorded");
//! assert_eq!(rec.root.children[0].name, "demo.inner");
//! recorder.set_enabled(false);
//! ```

use crate::registry::global;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Schema version written into every black-box dump (bump on any
/// incompatible change to [`FlightRecording`]).
///
/// * v1 — original span-tree + event-log dump.
/// * v2 — adds the request-scoped `request_id` / `tenant` fields (empty
///   when the solve ran outside any request context; v1 dumps parse with
///   both defaulting to empty).
pub const BLACKBOX_SCHEMA_VERSION: u32 = 2;

/// The request-scoped identity a solve runs under: the request id the
/// daemon accepted (or minted) at HTTP ingress plus the tenant it belongs
/// to. Installed as a thread-ambient value via [`with_request_context`]
/// and captured by every recording started while it is set, so a 504 or a
/// `stale: true` response can be joined to the exact black box, span tree,
/// and log lines of the solve that produced it.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestContext {
    /// Request id (caller-supplied `X-Rasa-Request-Id` or daemon-minted).
    pub request_id: String,
    /// Tenant the request belongs to.
    pub tenant: String,
}

impl RequestContext {
    /// A context for `request_id` / `tenant`.
    pub fn new(request_id: impl Into<String>, tenant: impl Into<String>) -> Self {
        RequestContext {
            request_id: request_id.into(),
            tenant: tenant.into(),
        }
    }
}

thread_local! {
    static REQUEST_CONTEXT: RefCell<Option<RequestContext>> = const { RefCell::new(None) };
}

/// The request context currently ambient on this thread, if any.
pub fn current_request_context() -> Option<RequestContext> {
    REQUEST_CONTEXT.with(|cell| cell.borrow().clone())
}

/// Replace this thread's ambient request context outright (prefer the
/// scoped [`with_request_context`]); returns the previous value. Worker
/// threads that outlive requests must clear it (`None`) when done.
pub fn set_request_context(ctx: Option<RequestContext>) -> Option<RequestContext> {
    REQUEST_CONTEXT.with(|cell| std::mem::replace(&mut *cell.borrow_mut(), ctx))
}

/// Install `ctx` as this thread's ambient request context for the
/// lifetime of the returned guard; the previous context (if any) is
/// restored on drop, so scopes nest. Recordings started while the guard
/// lives are stamped with the context — including recordings on *other*
/// threads only if the caller clones the context across the spawn and
/// installs its own guard there (the parallel solve pool does exactly
/// that).
pub fn with_request_context(ctx: RequestContext) -> ContextGuard {
    ContextGuard {
        prior: set_request_context(Some(ctx)),
    }
}

/// RAII guard from [`with_request_context`]; restores the previously
/// ambient request context when dropped.
#[must_use = "the request context is uninstalled when the guard drops — bind it with `let _ctx = …`"]
#[derive(Debug)]
pub struct ContextGuard {
    prior: Option<RequestContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        set_request_context(self.prior.take());
    }
}

/// The kind of a structured [`TraceEvent`]. Fieldless so the taxonomy is
/// closed and serializable; per-kind payloads live in
/// [`TraceEvent::fields`] / [`TraceEvent::detail`] (see the constructors).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A better integral incumbent was found by branch-and-bound.
    BnbIncumbent,
    /// The branch-and-bound global bound tightened.
    BnbBound,
    /// One column-generation pricing round completed.
    CgPricingRound,
    /// The simplex solver transitioned between phases.
    SimplexPhase,
    /// A solve-cache or column-cache lookup hit.
    CacheHit,
    /// A solve-cache or column-cache lookup missed.
    CacheMiss,
    /// Cache entries were evicted at end of round.
    CacheEvict,
    /// The fault-isolation guard moved down the fallback ladder.
    FallbackTransition,
    /// Admission control quarantined or repaired part of a problem
    /// before the round was solved.
    AdmissionQuarantine,
    /// Independent certification rejected a candidate placement
    /// (constraint violations or an objective mismatch).
    CertifyFailure,
    /// A simplex basis refactorization found the basis numerically
    /// singular — a warm-start basis was discarded (cold start follows) or
    /// an in-progress solve bailed out.
    RefactorSingular,
    /// The algorithm selector routed a subproblem to a pool arm (the
    /// portfolio's per-subproblem strategy decision).
    RungSelected,
    /// Journal replay hit a torn tail — a partial record at the end of a
    /// write-ahead-log segment — and truncated the segment at the last
    /// valid record.
    WalTornTail,
    /// Journal replay skipped one record that failed its CRC or decode
    /// (the rest of the segment was still replayed).
    WalRecordSkipped,
    /// Crash recovery refused a tenant's journaled state at a trust gate
    /// (re-admission or re-certification) and quarantined the tenant.
    RecoveryQuarantine,
}

impl EventKind {
    /// Stable lowercase name (used in dump files and assertions).
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::BnbIncumbent => "bnb_incumbent",
            EventKind::BnbBound => "bnb_bound",
            EventKind::CgPricingRound => "cg_pricing_round",
            EventKind::SimplexPhase => "simplex_phase",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::CacheEvict => "cache_evict",
            EventKind::FallbackTransition => "fallback_transition",
            EventKind::AdmissionQuarantine => "admission_quarantine",
            EventKind::CertifyFailure => "certify_failure",
            EventKind::RefactorSingular => "refactor_singular",
            EventKind::RungSelected => "rung_selected",
            EventKind::WalTornTail => "wal_torn_tail",
            EventKind::WalRecordSkipped => "wal_record_skipped",
            EventKind::RecoveryQuarantine => "recovery_quarantine",
        }
    }
}

/// One typed, timestamped event in a solve recording.
///
/// `t_secs` is the offset from the start of the recording (stamped by
/// [`emit`], so constructors leave it at zero). Numeric payload goes in
/// `fields` as `(name, value)` pairs; non-numeric context in `detail`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Seconds since the recording began.
    pub t_secs: f64,
    /// What happened.
    pub kind: EventKind,
    /// Numeric payload, `(name, value)` pairs.
    pub fields: Vec<(String, f64)>,
    /// Free-form context (algorithm names, phase labels, fingerprints).
    pub detail: String,
}

impl TraceEvent {
    fn new(kind: EventKind, fields: Vec<(String, f64)>, detail: String) -> Self {
        TraceEvent {
            t_secs: 0.0,
            kind,
            fields,
            detail,
        }
    }

    /// Value of numeric field `name`, if present.
    pub fn field(&self, name: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// A new branch-and-bound incumbent: its objective and the bound at
    /// the time, plus the node count when it was found.
    pub fn bnb_incumbent(objective: f64, best_bound: f64, node: u64) -> Self {
        TraceEvent::new(
            EventKind::BnbIncumbent,
            vec![
                ("objective".into(), objective),
                ("best_bound".into(), best_bound),
                ("node".into(), node as f64),
            ],
            String::new(),
        )
    }

    /// The branch-and-bound global bound tightened at node `node`.
    pub fn bnb_bound(best_bound: f64, node: u64) -> Self {
        TraceEvent::new(
            EventKind::BnbBound,
            vec![
                ("best_bound".into(), best_bound),
                ("node".into(), node as f64),
            ],
            String::new(),
        )
    }

    /// One CG pricing round: how many columns it added, the pool size
    /// after, and the best (most positive) reduced cost seen this round.
    pub fn cg_pricing_round(
        round: u64,
        columns_added: u64,
        total_columns: u64,
        best_reduced_cost: f64,
    ) -> Self {
        TraceEvent::new(
            EventKind::CgPricingRound,
            vec![
                ("round".into(), round as f64),
                ("columns_added".into(), columns_added as f64),
                ("total_columns".into(), total_columns as f64),
                ("best_reduced_cost".into(), best_reduced_cost),
            ],
            String::new(),
        )
    }

    /// A simplex phase transition, e.g. `"phase1->phase2"` or
    /// `"warm->phase2"`.
    pub fn simplex_phase(transition: &str) -> Self {
        TraceEvent::new(EventKind::SimplexPhase, Vec::new(), transition.to_string())
    }

    /// A basis refactorization found the basis singular. `context` names
    /// where it happened (`"warm_start"` for a rejected warm basis,
    /// `"mid_solve"` for an in-progress bail-out); `m` is the basis
    /// dimension.
    pub fn refactor_singular(context: &str, m: u64) -> Self {
        TraceEvent::new(
            EventKind::RefactorSingular,
            vec![("m".into(), m as f64)],
            context.to_string(),
        )
    }

    /// A cache decision (`hit` selects [`EventKind::CacheHit`] /
    /// [`EventKind::CacheMiss`]); `what` names the cache, `key` its
    /// fingerprint.
    pub fn cache_lookup(hit: bool, what: &str, key: u64) -> Self {
        TraceEvent::new(
            if hit {
                EventKind::CacheHit
            } else {
                EventKind::CacheMiss
            },
            Vec::new(),
            format!("{what}:{key:016x}"),
        )
    }

    /// `count` cache entries evicted from the cache named `what`.
    pub fn cache_evict(what: &str, count: u64) -> Self {
        TraceEvent::new(
            EventKind::CacheEvict,
            vec![("count".into(), count as f64)],
            what.to_string(),
        )
    }

    /// The fallback ladder moved from rung `from_rung` to `to_rung`
    /// (`from` / `to` name the algorithms, e.g. `"mip" -> "cg"` or
    /// `"cg" -> "completion"`).
    pub fn fallback_transition(from_rung: u64, to_rung: u64, from: &str, to: &str) -> Self {
        TraceEvent::new(
            EventKind::FallbackTransition,
            vec![
                ("from_rung".into(), from_rung as f64),
                ("to_rung".into(), to_rung as f64),
            ],
            format!("{from}->{to}"),
        )
    }

    /// Admission control intervened: how many services and machines were
    /// quarantined and how many edges/rules were dropped before solving.
    pub fn admission_quarantine(
        services: u64,
        machines: u64,
        edges: u64,
        rules: u64,
    ) -> Self {
        TraceEvent::new(
            EventKind::AdmissionQuarantine,
            vec![
                ("services".into(), services as f64),
                ("machines".into(), machines as f64),
                ("edges".into(), edges as f64),
                ("rules".into(), rules as f64),
            ],
            String::new(),
        )
    }

    /// Certification rejected a candidate placement. `violations` counts
    /// constraint violations (zero means a pure objective mismatch);
    /// `source` names who produced the candidate (an algorithm or
    /// `"solve_cache"`).
    pub fn certify_failure(
        violations: u64,
        claimed_objective: f64,
        recomputed_objective: f64,
        source: &str,
    ) -> Self {
        TraceEvent::new(
            EventKind::CertifyFailure,
            vec![
                ("violations".into(), violations as f64),
                ("claimed_objective".into(), claimed_objective),
                ("recomputed_objective".into(), recomputed_objective),
            ],
            source.to_string(),
        )
    }

    /// The selector routed subproblem `subproblem` to the pool arm named
    /// `algorithm` (a pool-algorithm label like `"MIP"` or `"POP"`).
    pub fn rung_selected(subproblem: u64, algorithm: &str) -> Self {
        TraceEvent::new(
            EventKind::RungSelected,
            vec![("subproblem".into(), subproblem as f64)],
            algorithm.to_string(),
        )
    }

    /// WAL segment `segment` ended in a torn (partial) record; replay
    /// kept `valid_bytes` of it and discarded `lost_bytes`.
    pub fn wal_torn_tail(segment: u64, valid_bytes: u64, lost_bytes: u64) -> Self {
        TraceEvent::new(
            EventKind::WalTornTail,
            vec![
                ("segment".into(), segment as f64),
                ("valid_bytes".into(), valid_bytes as f64),
                ("lost_bytes".into(), lost_bytes as f64),
            ],
            String::new(),
        )
    }

    /// WAL replay skipped the record at byte `offset` of segment
    /// `segment`; `reason` is `"crc"` or `"decode"`.
    pub fn wal_record_skipped(segment: u64, offset: u64, reason: &str) -> Self {
        TraceEvent::new(
            EventKind::WalRecordSkipped,
            vec![
                ("segment".into(), segment as f64),
                ("offset".into(), offset as f64),
            ],
            reason.to_string(),
        )
    }

    /// Crash recovery quarantined tenant `tenant`: its journaled state
    /// failed re-admission or re-certification (`reason`).
    pub fn recovery_quarantine(tenant: &str, reason: &str) -> Self {
        TraceEvent::new(
            EventKind::RecoveryQuarantine,
            Vec::new(),
            format!("{tenant}: {reason}"),
        )
    }
}

/// One node of the span tree in a finished recording.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Span name (dot-separated, like metric names).
    pub name: String,
    /// `(key, value)` attributes attached at open time.
    pub attrs: Vec<(String, String)>,
    /// Seconds since the recording began when the span opened.
    pub start_secs: f64,
    /// Seconds since the recording began when the span closed (equal to
    /// the recording's end for spans still open at flush).
    pub end_secs: f64,
    /// Child spans, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Attribute `key`, if set.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Depth of the deepest descendant (a leaf node has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::depth)
            .max()
            .unwrap_or(0)
    }

    /// First span named `name` in this subtree (pre-order), if any.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Depth (1-based, from this node) at which a span named `name`
    /// first appears, if it does.
    pub fn depth_of(&self, name: &str) -> Option<usize> {
        if self.name == name {
            return Some(1);
        }
        self.children
            .iter()
            .filter_map(|c| c.depth_of(name))
            .min()
            .map(|d| d + 1)
    }
}

/// A finished solve recording: the black-box dump payload.
///
/// `Deserialize` is hand-written (below) so the v2 context fields
/// (`request_id`, `tenant`) default to empty when parsing a v1 dump.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FlightRecording {
    /// Dump format version ([`BLACKBOX_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Verdict label set via [`FlightScope::set_verdict`] (`"ok"`,
    /// `"fell_back"`, `"deadline_expired"`, … — `"unlabeled"` when the
    /// scope finished without one).
    pub verdict: String,
    /// Whether any scope in the recording reported degradation.
    pub degraded: bool,
    /// `true` when this recording was dumped by healthy-solve sampling
    /// rather than degradation.
    pub sampled: bool,
    /// Request id ambient when the recording began (empty outside any
    /// request context; see [`RequestContext`]).
    pub request_id: String,
    /// Tenant ambient when the recording began (empty outside any
    /// request context).
    pub tenant: String,
    /// Total recording wall time, seconds.
    pub elapsed_secs: f64,
    /// The span tree, rooted at the [`begin_solve`] span.
    pub root: SpanNode,
    /// The event log, oldest first (ring-buffer survivors).
    pub events: Vec<TraceEvent>,
    /// Events dropped by the bounded ring buffer (oldest-first policy).
    pub dropped_events: u64,
    /// Spans not recorded because the span cap was reached.
    pub dropped_spans: u64,
}

impl serde::Deserialize for FlightRecording {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::DeError> {
        let map = v.as_map("FlightRecording")?;
        let required = |field: &str| serde::map_field(map, field, "FlightRecording");
        // v1 dumps predate the request-context fields: default to empty.
        let optional_string = |field: &str| -> Result<String, serde::DeError> {
            match map
                .iter()
                .find(|(k, _)| matches!(k, serde::Value::Str(s) if s == field))
            {
                Some((_, val)) => serde::Deserialize::deserialize(val),
                None => Ok(String::new()),
            }
        };
        Ok(FlightRecording {
            schema_version: serde::Deserialize::deserialize(required("schema_version")?)?,
            verdict: serde::Deserialize::deserialize(required("verdict")?)?,
            degraded: serde::Deserialize::deserialize(required("degraded")?)?,
            sampled: serde::Deserialize::deserialize(required("sampled")?)?,
            request_id: optional_string("request_id")?,
            tenant: optional_string("tenant")?,
            elapsed_secs: serde::Deserialize::deserialize(required("elapsed_secs")?)?,
            root: serde::Deserialize::deserialize(required("root")?)?,
            events: serde::Deserialize::deserialize(required("events")?)?,
            dropped_events: serde::Deserialize::deserialize(required("dropped_events")?)?,
            dropped_spans: serde::Deserialize::deserialize(required("dropped_spans")?)?,
        })
    }
}

impl FlightRecording {
    /// Serialize to pretty JSON (the black-box file format).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parse a recording back from [`FlightRecording::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Events of `kind`, oldest first.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }
}

/// Flight-recorder configuration. See field docs; `Default` keeps every
/// recording in memory only (no dump directory, no sampling).
#[derive(Clone, Debug)]
pub struct FlightConfig {
    /// Directory black-box files are written into (created on first
    /// dump). `None` disables dumping — recordings still reach the
    /// in-memory [`FlightRecorder::recent`] buffer.
    pub dump_dir: Option<PathBuf>,
    /// Dump every N-th *healthy* recording too (`0` = never). Degraded
    /// recordings are always dumped (subject to `max_dumps`).
    pub sample_every: u64,
    /// Cap on black-box files written per process run; further dumps are
    /// counted (`flight.dumps_suppressed`) but not written.
    pub max_dumps: u64,
    /// Ring-buffer capacity for events per recording (oldest dropped).
    pub event_capacity: usize,
    /// Cap on spans per recording (further spans are counted, not kept).
    pub span_capacity: usize,
    /// How many finished recordings [`FlightRecorder::recent`] retains.
    pub keep_recent: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            dump_dir: None,
            sample_every: 0,
            max_dumps: 16,
            event_capacity: 4096,
            span_capacity: 2048,
            keep_recent: 8,
        }
    }
}

/// The process-wide flight recorder behind [`recorder()`]. Disabled by
/// default: recording costs nothing until something calls
/// [`configure`](FlightRecorder::configure) (the bench and chaos binaries
/// do, from the `RASA_FLIGHT_*` environment).
#[derive(Debug, Default)]
pub struct FlightRecorder {
    enabled: AtomicBool,
    healthy_seq: AtomicU64,
    dumps_written: AtomicU64,
    state: Mutex<RecorderState>,
}

#[derive(Debug, Default)]
struct RecorderState {
    config: Option<FlightConfig>,
    recent: VecDeque<FlightRecording>,
}

impl FlightRecorder {
    /// Is recording on?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off without touching the configuration.
    /// Enabling before any [`configure`](FlightRecorder::configure) call
    /// applies [`FlightConfig::default`].
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Install `config` and enable recording.
    pub fn configure(&self, config: FlightConfig) {
        self.lock_state().config = Some(config);
        self.set_enabled(true);
    }

    /// Current configuration (defaults when never configured).
    pub fn config(&self) -> FlightConfig {
        self.lock_state().config.clone().unwrap_or_default()
    }

    /// Configure from the environment and enable if any variable is set:
    ///
    /// * `RASA_FLIGHT_DIR` — black-box dump directory;
    /// * `RASA_FLIGHT_SAMPLE` — healthy-solve sampling period (1-in-N);
    /// * `RASA_FLIGHT_MAX_DUMPS` — per-run dump cap (default 16).
    ///
    /// Returns `true` when recording ended up enabled.
    pub fn configure_from_env(&self) -> bool {
        let dir = std::env::var("RASA_FLIGHT_DIR").ok().map(PathBuf::from);
        let sample = std::env::var("RASA_FLIGHT_SAMPLE")
            .ok()
            .and_then(|v| v.parse::<u64>().ok());
        let max_dumps = std::env::var("RASA_FLIGHT_MAX_DUMPS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok());
        if dir.is_none() && sample.is_none() && max_dumps.is_none() {
            return self.enabled();
        }
        let mut cfg = FlightConfig {
            dump_dir: dir,
            sample_every: sample.unwrap_or(0),
            ..FlightConfig::default()
        };
        if let Some(m) = max_dumps {
            cfg.max_dumps = m;
        }
        self.configure(cfg);
        true
    }

    /// The most recent finished recordings, oldest first (bounded by
    /// [`FlightConfig::keep_recent`]).
    pub fn recent(&self) -> Vec<FlightRecording> {
        self.lock_state().recent.iter().cloned().collect()
    }

    /// Drop the in-memory recording history.
    pub fn clear_recent(&self) {
        self.lock_state().recent.clear();
    }

    /// Black-box files written so far this process run.
    pub fn dumps_written(&self) -> u64 {
        self.dumps_written.load(Ordering::Relaxed)
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Flush one finished recording: keep it in the recent buffer, tally
    /// the `flight.*` counters, and decide whether to dump. Called once
    /// per solve, mirroring the counter-flush discipline.
    fn observe(&self, mut rec: FlightRecording) -> Option<PathBuf> {
        let obs = global();
        obs.inc("flight.recordings");
        obs.add("flight.events_dropped", rec.dropped_events);

        let (config, should_dump) = {
            let state = self.lock_state();
            let config = state.config.clone().unwrap_or_default();
            let should_dump = if rec.degraded {
                true
            } else {
                let n = self.healthy_seq.fetch_add(1, Ordering::Relaxed) + 1;
                let sampled = config.sample_every > 0 && n % config.sample_every == 0;
                rec.sampled = sampled;
                sampled
            };
            (config, should_dump)
        };

        let mut written = None;
        if should_dump {
            if let Some(dir) = &config.dump_dir {
                let seq = self.dumps_written.load(Ordering::Relaxed);
                if seq < config.max_dumps {
                    match write_blackbox(dir, seq, &rec) {
                        Ok(path) => {
                            self.dumps_written.fetch_add(1, Ordering::Relaxed);
                            obs.inc("flight.dumps");
                            eprintln!("[flight] black box dumped: {}", path.display());
                            written = Some(path);
                        }
                        Err(e) => {
                            eprintln!("[flight] black box dump failed: {e}");
                        }
                    }
                } else {
                    obs.inc("flight.dumps_suppressed");
                }
            }
        }

        let mut state = self.lock_state();
        let keep = config.keep_recent;
        while state.recent.len() >= keep.max(1) {
            state.recent.pop_front();
        }
        state.recent.push_back(rec);
        written
    }
}

/// Write one black-box file; returns the path. The filename carries the
/// verdict plus — when a [`RequestContext`] was ambient — the request id
/// and tenant, so a failing request can be joined to its dump by `ls`
/// alone: `blackbox_<seq>_<verdict>[_<request_id>_<tenant>].json`.
fn write_blackbox(
    dir: &Path,
    seq: u64,
    rec: &FlightRecording,
) -> Result<PathBuf, std::io::Error> {
    std::fs::create_dir_all(dir)?;
    let clean = |s: &str| -> String {
        s.chars()
            .take(48)
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect()
    };
    let label = clean(&rec.verdict);
    let suffix = if rec.request_id.is_empty() {
        String::new()
    } else {
        format!("_{}_{}", clean(&rec.request_id), clean(&rec.tenant))
    };
    let path = dir.join(format!("blackbox_{seq:04}_{label}{suffix}.json"));
    let json = rec
        .to_json()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// The process-wide flight recorder (disabled until configured).
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(FlightRecorder::default)
}

// ---------------------------------------------------------------------------
// Per-thread active trace
// ---------------------------------------------------------------------------

/// In-flight span: flat record with a parent index; the tree is built at
/// flush time.
#[derive(Debug)]
struct RawSpan {
    name: String,
    attrs: Vec<(String, String)>,
    start_secs: f64,
    end_secs: Option<f64>,
    parent: Option<usize>,
}

/// The per-thread, lock-free recording under construction. Owned by the
/// thread via TLS, so pushes are plain `Vec`/`VecDeque` operations.
#[derive(Debug)]
struct ActiveTrace {
    origin: Instant,
    spans: Vec<RawSpan>,
    stack: Vec<usize>,
    events: VecDeque<TraceEvent>,
    event_capacity: usize,
    span_capacity: usize,
    dropped_events: u64,
    dropped_spans: u64,
    degraded: bool,
    verdict: Option<String>,
    /// Ambient [`RequestContext`] captured when the trace began.
    context: Option<RequestContext>,
}

impl ActiveTrace {
    fn new(config: &FlightConfig) -> Self {
        ActiveTrace {
            origin: Instant::now(),
            spans: Vec::with_capacity(64),
            stack: Vec::with_capacity(8),
            events: VecDeque::with_capacity(config.event_capacity.min(256)),
            event_capacity: config.event_capacity.max(1),
            span_capacity: config.span_capacity.max(1),
            dropped_events: 0,
            dropped_spans: 0,
            degraded: false,
            verdict: None,
            context: current_request_context(),
        }
    }

    fn now_secs(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Open a span under the current stack top. Returns its index, or
    /// `None` when the span cap is reached (counted).
    fn open_span(&mut self, name: &str, attrs: Vec<(String, String)>) -> Option<usize> {
        if self.spans.len() >= self.span_capacity {
            self.dropped_spans += 1;
            return None;
        }
        let idx = self.spans.len();
        self.spans.push(RawSpan {
            name: name.to_string(),
            attrs,
            start_secs: self.now_secs(),
            end_secs: None,
            parent: self.stack.last().copied(),
        });
        self.stack.push(idx);
        Some(idx)
    }

    /// Close span `idx` (and, defensively, anything opened above it that
    /// was leaked without closing).
    fn close_span(&mut self, idx: usize, extra_attrs: Vec<(String, String)>) {
        let t = self.now_secs();
        while let Some(&top) = self.stack.last() {
            self.stack.pop();
            if let Some(s) = self.spans.get_mut(top) {
                if s.end_secs.is_none() {
                    s.end_secs = Some(t);
                }
                if top == idx {
                    s.attrs.extend(extra_attrs);
                    break;
                }
            }
        }
    }

    /// Append an event to the ring buffer (oldest dropped past capacity).
    fn push_event(&mut self, mut ev: TraceEvent) {
        ev.t_secs = self.now_secs();
        if self.events.len() >= self.event_capacity {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(ev);
    }

    /// Build the finished recording (span tree rooted at span 0).
    fn finish(mut self) -> FlightRecording {
        let elapsed = self.now_secs();
        // close anything still open (flush during unwind, or a leaked span)
        for s in &mut self.spans {
            if s.end_secs.is_none() {
                s.end_secs = Some(elapsed);
            }
        }
        // assemble children lists, then fold into a tree bottom-up:
        // children always have larger indices than their parents, so a
        // reverse walk can move each node into its parent.
        let mut nodes: Vec<Option<SpanNode>> = self
            .spans
            .iter()
            .map(|s| {
                Some(SpanNode {
                    name: s.name.clone(),
                    attrs: s.attrs.clone(),
                    start_secs: s.start_secs,
                    end_secs: s.end_secs.unwrap_or(elapsed),
                    children: Vec::new(),
                })
            })
            .collect();
        for i in (1..self.spans.len()).rev() {
            if let Some(node) = nodes[i].take() {
                let parent = self.spans[i].parent.unwrap_or(0);
                if let Some(Some(p)) = nodes.get_mut(parent) {
                    p.children.push(node);
                }
            }
        }
        let mut root = nodes
            .get_mut(0)
            .and_then(Option::take)
            .unwrap_or_else(|| SpanNode {
                name: "(empty)".to_string(),
                attrs: Vec::new(),
                start_secs: 0.0,
                end_secs: elapsed,
                children: Vec::new(),
            });
        // reverse walks build children lists back-to-front; restore order
        fn restore(order: &mut SpanNode) {
            order.children.reverse();
            for c in &mut order.children {
                restore(c);
            }
        }
        restore(&mut root);
        let ctx = self.context.take().unwrap_or_default();
        FlightRecording {
            schema_version: BLACKBOX_SCHEMA_VERSION,
            verdict: self.verdict.take().unwrap_or_else(|| "unlabeled".into()),
            degraded: self.degraded,
            sampled: false,
            request_id: ctx.request_id,
            tenant: ctx.tenant,
            elapsed_secs: elapsed,
            root,
            events: self.events.into_iter().collect(),
            dropped_events: self.dropped_events,
            dropped_spans: self.dropped_spans,
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Run `f` against the thread's active trace, if any.
fn with_active<R>(f: impl FnOnce(&mut ActiveTrace) -> R) -> Option<R> {
    ACTIVE.with(|cell| {
        let mut slot = cell.borrow_mut();
        slot.as_mut().map(f)
    })
}

/// How a [`FlightScope`] relates to the thread's trace.
#[derive(Debug)]
enum ScopeMode {
    /// Recorder disabled, or the span cap swallowed the nested span.
    Inert,
    /// This scope owns the thread's trace and flushes it on drop.
    Root,
    /// A recording was already active on this thread; this scope is a
    /// nested span (index held) whose verdict folds into the trace.
    Nested(usize),
}

/// A recording scope from [`begin_solve`]; see module docs. Flushes (or
/// closes its nested span) on drop.
#[must_use = "a flight scope records until dropped — bind it with `let mut scope = …`"]
#[derive(Debug)]
pub struct FlightScope {
    mode: ScopeMode,
    verdict: Option<(String, bool)>,
}

impl FlightScope {
    /// An inert scope (used when the recorder is disabled).
    fn inert() -> Self {
        FlightScope {
            mode: ScopeMode::Inert,
            verdict: None,
        }
    }

    /// Is this scope actually recording?
    pub fn is_active(&self) -> bool {
        !matches!(self.mode, ScopeMode::Inert)
    }

    /// Label how this solve ended. `degraded` recordings are dumped as
    /// black boxes at flush; a degraded nested scope marks the whole
    /// recording degraded.
    pub fn set_verdict(&mut self, verdict: &str, degraded: bool) {
        if self.is_active() {
            self.verdict = Some((verdict.to_string(), degraded));
        }
    }
}

impl Drop for FlightScope {
    fn drop(&mut self) {
        let verdict = self.verdict.take();
        match std::mem::replace(&mut self.mode, ScopeMode::Inert) {
            ScopeMode::Inert => {}
            ScopeMode::Nested(idx) => {
                with_active(|t| {
                    let mut attrs = Vec::new();
                    if let Some((v, degraded)) = verdict {
                        attrs.push(("verdict".to_string(), v));
                        t.degraded |= degraded;
                    }
                    t.close_span(idx, attrs);
                });
            }
            ScopeMode::Root => {
                let trace = ACTIVE.with(|cell| cell.borrow_mut().take());
                if let Some(mut trace) = trace {
                    if let Some((v, degraded)) = verdict {
                        trace.degraded |= degraded;
                        trace.verdict = Some(v);
                    }
                    recorder().observe(trace.finish());
                }
            }
        }
    }
}

/// Open a recording scope for one solve. When no recording is active on
/// this thread (and the recorder is enabled), a fresh trace is installed
/// with `name` as its root span; when one is already active, this becomes
/// a nested span — so pipeline→subproblem→solver nesting falls out of the
/// call structure. Inert (near-zero cost) when the recorder is disabled.
pub fn begin_solve(name: &str, attrs: &[(&str, String)]) -> FlightScope {
    if !recorder().enabled() {
        return FlightScope::inert();
    }
    let attrs: Vec<(String, String)> = attrs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    ACTIVE.with(|cell| {
        let mut slot = cell.borrow_mut();
        match slot.as_mut() {
            Some(trace) => match trace.open_span(name, attrs) {
                Some(idx) => FlightScope {
                    mode: ScopeMode::Nested(idx),
                    verdict: None,
                },
                None => FlightScope::inert(),
            },
            None => {
                let mut trace = ActiveTrace::new(&recorder().config());
                let mut attrs = attrs;
                if let Some(ctx) = &trace.context {
                    attrs.push(("request_id".to_string(), ctx.request_id.clone()));
                    attrs.push(("tenant".to_string(), ctx.tenant.clone()));
                }
                trace.open_span(name, attrs);
                *slot = Some(trace);
                FlightScope {
                    mode: ScopeMode::Root,
                    verdict: None,
                }
            }
        }
    })
}

/// A scoped child span from [`span`] / [`span_with`]; closes on drop.
#[must_use = "a flight span closes when dropped — bind it with `let _sp = …`"]
#[derive(Debug)]
pub struct FlightSpan {
    idx: Option<usize>,
}

impl Drop for FlightSpan {
    fn drop(&mut self) {
        if let Some(idx) = self.idx.take() {
            with_active(|t| t.close_span(idx, Vec::new()));
        }
    }
}

/// Open a child span under the current scope (no-op without one).
pub fn span(name: &str) -> FlightSpan {
    span_with(name, &[])
}

/// [`span`] with attributes.
pub fn span_with(name: &str, attrs: &[(&str, String)]) -> FlightSpan {
    if !recorder().enabled() {
        return FlightSpan { idx: None };
    }
    let attrs: Vec<(String, String)> = attrs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    FlightSpan {
        idx: with_active(|t| t.open_span(name, attrs)).flatten(),
    }
}

/// Append a typed event to the active recording's ring buffer. The
/// closure is only evaluated while a recording is active on this thread,
/// so hot paths pay one atomic load and a TLS check when disabled.
pub fn emit(make: impl FnOnce() -> TraceEvent) {
    if !recorder().enabled() {
        return;
    }
    with_active(|t| {
        let ev = make();
        t.push_event(ev);
    });
}

/// Is a recording active on this thread right now?
pub fn active() -> bool {
    ACTIVE.with(|cell| cell.borrow().is_some())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    /// Tests share the process-global recorder; serialize access.
    fn with_recorder_lock<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = f();
        recorder().set_enabled(false);
        recorder().clear_recent();
        r
    }

    #[test]
    fn disabled_recorder_is_inert() {
        with_recorder_lock(|| {
            recorder().set_enabled(false);
            let mut scope = begin_solve("solve.x", &[]);
            assert!(!scope.is_active());
            {
                let _sp = span("inner");
                emit(|| panic!("closure must not run while disabled"));
            }
            scope.set_verdict("ok", false);
            drop(scope);
            assert!(recorder().recent().is_empty());
        });
    }

    #[test]
    fn records_span_tree_and_events() {
        with_recorder_lock(|| {
            recorder().configure(FlightConfig::default());
            let mut scope = begin_solve("solve.sub", &[("sub_id", "7".into())]);
            assert!(scope.is_active());
            {
                let _rung = span_with("solve.rung", &[("algorithm", "mip".into())]);
                {
                    let _inner = span("mip.bnb");
                    emit(|| TraceEvent::bnb_incumbent(3.5, 4.0, 12));
                    emit(|| TraceEvent::bnb_bound(3.75, 14));
                }
            }
            emit(|| TraceEvent::fallback_transition(0, 1, "mip", "cg"));
            scope.set_verdict("fell_back", true);
            drop(scope);

            let recs = recorder().recent();
            assert_eq!(recs.len(), 1);
            let rec = &recs[0];
            assert_eq!(rec.schema_version, BLACKBOX_SCHEMA_VERSION);
            assert_eq!(rec.verdict, "fell_back");
            assert!(rec.degraded);
            assert_eq!(rec.root.name, "solve.sub");
            assert_eq!(rec.root.attr("sub_id"), Some("7"));
            assert_eq!(rec.root.depth(), 3);
            assert_eq!(rec.depth_of_solver(), Some(3));
            let rung = rec.root.find("solve.rung").unwrap();
            assert_eq!(rung.attr("algorithm"), Some("mip"));
            assert_eq!(rec.events.len(), 3);
            assert_eq!(rec.events[0].kind, EventKind::BnbIncumbent);
            assert_eq!(rec.events[0].field("objective"), Some(3.5));
            assert_eq!(rec.events[2].kind, EventKind::FallbackTransition);
            assert_eq!(rec.events[2].detail, "mip->cg");
            assert!(rec.events.windows(2).all(|w| w[0].t_secs <= w[1].t_secs));
            assert_eq!(rec.dropped_events, 0);
        });
    }

    impl FlightRecording {
        /// Test helper: depth of the deepest span (alias used above).
        fn depth_of_solver(&self) -> Option<usize> {
            self.root.depth_of("mip.bnb")
        }
    }

    #[test]
    fn nested_scope_becomes_span_and_propagates_degradation() {
        with_recorder_lock(|| {
            recorder().configure(FlightConfig::default());
            let mut outer = begin_solve("pipeline.run", &[]);
            {
                let mut inner = begin_solve("solve.sub", &[("sub_id", "0".into())]);
                assert!(inner.is_active());
                inner.set_verdict("deadline_expired", true);
            }
            outer.set_verdict("degraded", false); // inner already marked it
            drop(outer);
            let recs = recorder().recent();
            assert_eq!(recs.len(), 1, "one recording for the whole nest");
            let rec = &recs[0];
            assert!(rec.degraded, "nested degradation reaches the root");
            let sub = rec.root.find("solve.sub").unwrap();
            assert_eq!(sub.attr("verdict"), Some("deadline_expired"));
        });
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        with_recorder_lock(|| {
            recorder().configure(FlightConfig {
                event_capacity: 4,
                ..Default::default()
            });
            let mut scope = begin_solve("solve.ring", &[]);
            for i in 0..10u64 {
                emit(|| TraceEvent::bnb_bound(i as f64, i));
            }
            scope.set_verdict("ok", false);
            drop(scope);
            let rec = &recorder().recent()[0];
            assert_eq!(rec.events.len(), 4);
            assert_eq!(rec.dropped_events, 6);
            // survivors are the newest, in order
            let nodes: Vec<f64> = rec.events.iter().filter_map(|e| e.field("node")).collect();
            assert_eq!(nodes, vec![6.0, 7.0, 8.0, 9.0]);
        });
    }

    #[test]
    fn span_cap_stops_recording_but_keeps_tree_valid() {
        with_recorder_lock(|| {
            recorder().configure(FlightConfig {
                span_capacity: 3,
                ..Default::default()
            });
            let mut scope = begin_solve("solve.cap", &[]);
            for _ in 0..5 {
                let _sp = span("child");
            }
            scope.set_verdict("ok", false);
            drop(scope);
            let rec = &recorder().recent()[0];
            assert_eq!(rec.root.children.len(), 2, "root + 2 children = cap 3");
            assert_eq!(rec.dropped_spans, 3);
        });
    }

    #[test]
    fn degraded_recording_dumps_a_black_box_and_sampling_dumps_healthy() {
        with_recorder_lock(|| {
            let dir = std::env::temp_dir().join(format!(
                "rasa_flight_test_{}_{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let before = recorder().dumps_written();
            recorder().configure(FlightConfig {
                dump_dir: Some(dir.clone()),
                sample_every: 2,
                ..Default::default()
            });
            // healthy #1: not sampled (sequence parity depends on prior
            // tests, so just count files at the end)
            for degraded in [false, false, true] {
                let mut scope = begin_solve("solve.dump", &[]);
                emit(|| TraceEvent::simplex_phase("phase1->phase2"));
                scope.set_verdict(if degraded { "panicked" } else { "ok" }, degraded);
                drop(scope);
            }
            let after = recorder().dumps_written();
            // the degraded one always dumps; of the two healthy ones,
            // exactly one hits the 1-in-2 sample
            assert_eq!(after - before, 2, "degraded + one sampled healthy");
            let mut files: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            files.sort();
            assert_eq!(files.len(), 2);
            // round-trip one dump through the parser
            let text = std::fs::read_to_string(&files[0]).unwrap();
            let rec = FlightRecording::from_json(&text).unwrap();
            assert_eq!(rec.schema_version, BLACKBOX_SCHEMA_VERSION);
            assert_eq!(rec.root.name, "solve.dump");
            let _ = std::fs::remove_dir_all(&dir);
        });
    }

    #[test]
    fn request_context_is_stamped_into_recording_attrs_and_filename() {
        with_recorder_lock(|| {
            let dir = std::env::temp_dir().join(format!(
                "rasa_flight_ctx_{}_{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            recorder().configure(FlightConfig {
                dump_dir: Some(dir.clone()),
                ..Default::default()
            });
            {
                let _ctx = with_request_context(RequestContext::new("req-42", "acme"));
                {
                    let _inner = with_request_context(RequestContext::new("req-43", "beta"));
                    assert_eq!(
                        current_request_context().map(|c| c.request_id),
                        Some("req-43".to_string()),
                        "guards nest"
                    );
                }
                let mut scope = begin_solve("solve.ctx", &[]);
                scope.set_verdict("deadline_expired", true);
            }
            assert!(
                current_request_context().is_none(),
                "guard restores the prior (empty) context"
            );
            let rec = recorder().recent().pop().unwrap();
            assert_eq!(rec.request_id, "req-42");
            assert_eq!(rec.tenant, "acme");
            assert_eq!(rec.root.attr("request_id"), Some("req-42"));
            assert_eq!(rec.root.attr("tenant"), Some("acme"));
            let files: Vec<String> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            assert_eq!(files.len(), 1);
            assert!(
                files[0].contains("req_42") && files[0].contains("acme"),
                "filename {} carries request id and tenant",
                files[0]
            );
            let _ = std::fs::remove_dir_all(&dir);
        });
    }

    #[test]
    fn v1_dumps_without_context_fields_still_parse() {
        let v1 = r#"{
            "schema_version": 1,
            "verdict": "ok",
            "degraded": false,
            "sampled": false,
            "elapsed_secs": 0.5,
            "root": {
                "name": "solve.legacy",
                "attrs": [],
                "start_secs": 0.0,
                "end_secs": 0.5,
                "children": []
            },
            "events": [],
            "dropped_events": 0,
            "dropped_spans": 0
        }"#;
        let rec = FlightRecording::from_json(v1).unwrap();
        assert_eq!(rec.request_id, "");
        assert_eq!(rec.tenant, "");
    }

    #[test]
    fn recording_round_trips_through_json() {
        with_recorder_lock(|| {
            recorder().configure(FlightConfig::default());
            let mut scope = begin_solve("solve.json", &[("k", "v".into())]);
            {
                let _sp = span("inner");
                emit(|| TraceEvent::cg_pricing_round(1, 3, 9, 0.25));
                emit(|| TraceEvent::cache_lookup(true, "solve_cache", 0xdead_beef));
                emit(|| TraceEvent::cache_evict("column_cache", 2));
            }
            scope.set_verdict("ok", false);
            drop(scope);
            let rec = recorder().recent().pop().unwrap();
            let back = FlightRecording::from_json(&rec.to_json().unwrap()).unwrap();
            assert_eq!(rec, back);
            assert_eq!(back.events_of(EventKind::CacheHit).count(), 1);
            assert!(back
                .events_of(EventKind::CacheHit)
                .next()
                .unwrap()
                .detail
                .starts_with("solve_cache:"));
        });
    }
}
