//! The two metric primitives: monotonic counters and log-bucketed
//! histograms. Both record lock-free through atomics so worker threads
//! (the parallel solve pool) can share one instance.

use crate::snapshot::HistogramSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets. Bucket `i` covers
/// `(BUCKET_BASE·2^i, BUCKET_BASE·2^(i+1)]`, so the range spans from
/// nanoseconds to ~18 years when values are seconds — one scheme fits
/// every duration and count this repository records.
pub const BUCKETS: usize = 64;

/// Lower edge of bucket 0.
const BUCKET_BASE: f64 = 1e-9;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    /// Atomically read the current value and reset to zero in one step.
    /// Unlike `get()` followed by `reset()`, a concurrent `add` can never
    /// land in the gap and be lost — every increment is observed by
    /// exactly one `take`.
    pub fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// Upper bound of bucket `i` (shared with [`HistogramSnapshot`]).
pub(crate) fn bucket_upper_bound(i: usize) -> f64 {
    BUCKET_BASE * 2f64.powi(i as i32 + 1)
}

/// Bucket index for a value.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= BUCKET_BASE {
        return 0; // non-positive, NaN and tiny values share bucket 0
    }
    let idx = (v / BUCKET_BASE).log2().ceil() - 1.0;
    (idx.max(0.0) as usize).min(BUCKETS - 1)
}

/// A fixed-layout log₂-bucketed histogram with count/sum/min/max, safe for
/// concurrent recording. Quantiles are estimated from the bucket counts at
/// snapshot time (see [`HistogramSnapshot::quantile`]).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    /// `f64` bits; updated with a CAS loop.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation. NaN is recorded into bucket 0 but excluded
    /// from min/max.
    pub fn record(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        fetch_update_f64(&self.sum_bits, |cur| cur + v);
        if !v.is_nan() {
            fetch_update_f64(&self.min_bits, |cur| cur.min(v));
            fetch_update_f64(&self.max_bits, |cur| cur.max(v));
        }
    }

    /// Record a duration in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Freeze into a serializable snapshot (only non-empty buckets are
    /// kept, as `(upper_bound, count)` pairs).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let buckets: Vec<(f64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let c = c.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_upper_bound(i), c))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.min_bits.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.max_bits.load(Ordering::Relaxed))
            },
            buckets,
        }
    }

    /// Merge every observation of `other` into `self`, bucket-index
    /// exact: per-bucket counts and the count/sum add, min/max widen.
    /// Because both histograms share the fixed log₂ layout the merge
    /// loses no precision beyond what recording already lost — this is
    /// how an evicted label's series folds into the `other` bucket.
    pub fn merge_from(&self, other: &Histogram) {
        let n = other.count.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        for (dst, src) in self.buckets.iter().zip(&other.buckets) {
            let c = src.load(Ordering::Relaxed);
            if c > 0 {
                dst.fetch_add(c, Ordering::Relaxed);
            }
        }
        let sum = other.sum();
        fetch_update_f64(&self.sum_bits, |cur| cur + sum);
        let min = f64::from_bits(other.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(other.max_bits.load(Ordering::Relaxed));
        fetch_update_f64(&self.min_bits, |cur| cur.min(min));
        fetch_update_f64(&self.max_bits, |cur| cur.max(max));
    }

    /// Reset to empty.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// CAS loop applying `f` to an atomically-stored `f64`.
fn fetch_update_f64(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn bucket_index_is_monotone_and_clamped() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e-9), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
        let mut last = 0;
        for exp in -30..30 {
            let i = bucket_index(2f64.powi(exp));
            assert!(i >= last, "2^{exp}");
            last = i;
        }
        // every value lands in a bucket whose upper bound covers it
        for v in [1e-8, 1e-3, 0.5, 1.0, 3.0, 1e4] {
            let i = bucket_index(v);
            assert!(bucket_upper_bound(i) >= v, "v={v} bucket={i}");
            if i > 0 {
                assert!(bucket_upper_bound(i - 1) < v, "v={v} not in earlier bucket");
            }
        }
    }

    #[test]
    fn merge_from_is_bucket_exact_and_conserves_totals() {
        let a = Histogram::new();
        let b = Histogram::new();
        let reference = Histogram::new();
        for v in [0.5, 2.0, 1e-4] {
            a.record(v);
            reference.record(v);
        }
        for v in [8.0, 0.25] {
            b.record(v);
            reference.record(v);
        }
        a.merge_from(&b);
        let (merged, expect) = (a.snapshot(), reference.snapshot());
        assert_eq!(merged.count, expect.count);
        assert!((merged.sum - expect.sum).abs() < 1e-12);
        assert_eq!(merged.min, expect.min);
        assert_eq!(merged.max, expect.max);
        assert_eq!(merged.buckets, expect.buckets, "bucket-index exact");
        // merging an empty histogram changes nothing
        a.merge_from(&Histogram::new());
        assert_eq!(a.snapshot().count, expect.count);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let h = Histogram::new();
        for v in [0.5, 2.0, 0.25, 8.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!((s.sum - 10.75).abs() < 1e-12);
        assert_eq!(s.min, 0.25);
        assert_eq!(s.max, 8.0);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }
}
