//! Deterministic subproblem fingerprints and round-over-round partition
//! deltas — the partitioner's half of the warm-start layer.
//!
//! RASA reruns periodically over nearly identical clusters. Two fingerprints
//! let downstream caches decide what survived from the previous round:
//!
//! * [`Subproblem::fingerprint`] hashes the *entire* induced subproblem
//!   (parent ids, demands, capacities, features, affinity and anti-affinity)
//!   — two subproblems with equal fingerprints pose the same optimization
//!   problem, so a cached solve can be replayed verbatim.
//! * [`Subproblem::service_set_fingerprint`] hashes only the parent service
//!   ids — stable under machine-side perturbations, so column pools (which
//!   are per-service patterns) can still seed a re-solve after a machine
//!   died or capacities shifted.
//!
//! Hashing uses [`DefaultHasher`] with its fixed default keys, so
//! fingerprints are deterministic within a process run *and* across runs of
//! the same binary — sufficient for an in-memory cache (they are never
//! persisted).

use crate::stages::Subproblem;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

fn hash_f64<H: Hasher>(h: &mut H, v: f64) {
    // Hash the bit pattern: distinguishes -0.0/0.0 (harmless here) but is
    // total, deterministic, and exact — which is what cache keys need.
    v.to_bits().hash(h);
}

impl Subproblem {
    /// Hash of the full induced subproblem plus its parent-id mappings.
    ///
    /// Equal fingerprints ⇒ identical optimization problems over identical
    /// parent services and machines, so a cached sub-placement can be
    /// merged back verbatim.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        let p = &self.problem;
        self.mapping.service_to_parent.hash(&mut h);
        self.mapping.machine_to_parent.hash(&mut h);
        p.services.len().hash(&mut h);
        for s in &p.services {
            s.id.hash(&mut h);
            s.replicas.hash(&mut h);
            for &d in &s.demand.0 {
                hash_f64(&mut h, d);
            }
            s.required_features.0.hash(&mut h);
            s.stateless.hash(&mut h);
            hash_f64(&mut h, s.priority_weight);
        }
        p.machines.len().hash(&mut h);
        for m in &p.machines {
            m.id.hash(&mut h);
            for &c in &m.capacity.0 {
                hash_f64(&mut h, c);
            }
            m.features.0.hash(&mut h);
        }
        p.affinity_edges.len().hash(&mut h);
        for e in &p.affinity_edges {
            e.a.hash(&mut h);
            e.b.hash(&mut h);
            hash_f64(&mut h, e.weight);
        }
        p.anti_affinity.len().hash(&mut h);
        for r in &p.anti_affinity {
            r.services.hash(&mut h);
            r.max_per_machine.hash(&mut h);
        }
        h.finish()
    }

    /// Hash of the parent service-id set only.
    ///
    /// Invariant under machine deaths, capacity changes, and re-weighted
    /// affinity — a column pool generated for this service set remains a
    /// *candidate* pool for any later subproblem with the same key (each
    /// column is still re-validated against current capacities).
    pub fn service_set_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.mapping.service_to_parent.hash(&mut h);
        h.finish()
    }
}

/// Round-over-round classification of a partition against the previous
/// round's subproblem fingerprints.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionDelta {
    /// Indices (into the new round's subproblem list) whose full
    /// fingerprint matches a previous-round subproblem: reusable verbatim.
    pub unchanged: Vec<usize>,
    /// Indices that have no previous-round counterpart: must be re-solved.
    pub dirty: Vec<usize>,
    /// Previous-round fingerprints with no counterpart this round: their
    /// cached artifacts are stale and should be evicted.
    pub invalidated: Vec<u64>,
}

/// Compare this round's `subproblems` against the previous round's full
/// fingerprints and classify each side (see [`PartitionDelta`]).
pub fn compute_delta(subproblems: &[Subproblem], previous: &HashSet<u64>) -> PartitionDelta {
    let mut delta = PartitionDelta::default();
    let mut seen = HashSet::new();
    for (i, sub) in subproblems.iter().enumerate() {
        let fp = sub.fingerprint();
        seen.insert(fp);
        if previous.contains(&fp) {
            delta.unchanged.push(i);
        } else {
            delta.dirty.push(i);
        }
    }
    delta.invalidated = previous.difference(&seen).copied().collect();
    delta.invalidated.sort_unstable();
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::{multi_stage_partition, PartitionConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rasa_model::{FeatureMask, Problem, ProblemBuilder, ResourceVec};

    fn clustered_problem(weight: f64) -> Problem {
        let mut b = ProblemBuilder::new();
        let svcs: Vec<_> = (0..12)
            .map(|i| b.add_service(format!("s{i}"), 1, ResourceVec::cpu_mem(1.0, 1.0)))
            .collect();
        b.add_machines(6, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        for c in 0..2 {
            let base = c * 6;
            for i in 0..6 {
                for j in (i + 1)..6 {
                    b.add_affinity(svcs[base + i], svcs[base + j], weight);
                }
            }
        }
        b.build().unwrap()
    }

    fn partition(p: &Problem) -> Vec<Subproblem> {
        let cfg = PartitionConfig {
            max_subproblem_services: 6,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        multi_stage_partition(p, None, &cfg, &mut rng).subproblems
    }

    #[test]
    fn fingerprint_is_deterministic_across_partitions() {
        let p = clustered_problem(5.0);
        let a = partition(&p);
        let b = partition(&p);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fingerprint(), y.fingerprint());
            assert_eq!(x.service_set_fingerprint(), y.service_set_fingerprint());
        }
    }

    #[test]
    fn fingerprint_changes_when_problem_changes() {
        let a = partition(&clustered_problem(5.0));
        let b = partition(&clustered_problem(6.0)); // same sets, new weights
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .any(|(x, y)| x.fingerprint() != y.fingerprint()));
        // ...but the service-set fingerprint only sees parent service ids.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.service_set_fingerprint(), y.service_set_fingerprint());
        }
    }

    #[test]
    fn delta_classifies_unchanged_dirty_and_invalidated() {
        let subs = partition(&clustered_problem(5.0));
        assert!(subs.len() >= 2, "want at least 2 subproblems");

        // Previous round knew the first subproblem plus one stale entry.
        let mut previous = HashSet::new();
        previous.insert(subs[0].fingerprint());
        previous.insert(0xDEAD_BEEF);

        let delta = compute_delta(&subs, &previous);
        assert_eq!(delta.unchanged, vec![0]);
        assert_eq!(delta.dirty, (1..subs.len()).collect::<Vec<_>>());
        assert_eq!(delta.invalidated, vec![0xDEAD_BEEF]);
    }

    #[test]
    fn identical_rounds_produce_an_all_unchanged_delta() {
        let subs = partition(&clustered_problem(5.0));
        let previous: HashSet<u64> = subs.iter().map(|s| s.fingerprint()).collect();
        let delta = compute_delta(&subs, &previous);
        assert_eq!(delta.unchanged.len(), subs.len());
        assert!(delta.dirty.is_empty());
        assert!(delta.invalidated.is_empty());
    }
}
