//! Machine assignment to subproblems (Section IV-B5): shrink away trivial
//! services' usage, then divide each machine specification among the
//! crucial service sets proportionally to their requested resources.

use rasa_model::{MachineId, Placement, Problem, ResourceVec, ServiceId};

/// Effective per-machine capacities after subtracting the resources used by
/// `trivial` services under `current` (the paper's "construct a new machine
/// with `R_m − R_s`"). Without a current placement, capacities are
/// unchanged. Negative residuals clamp to zero.
pub fn shrunk_capacities(
    problem: &Problem,
    current: Option<&Placement>,
    trivial: &[ServiceId],
) -> Vec<ResourceVec> {
    let mut caps: Vec<ResourceVec> = problem.machines.iter().map(|m| m.capacity).collect();
    let Some(current) = current else {
        return caps;
    };
    for &s in trivial {
        let demand = problem.services[s.idx()].demand;
        for (m, count) in current.machines_of(s) {
            let mut cap = caps[m.idx()];
            cap -= demand * f64::from(count);
            for v in cap.0.iter_mut() {
                *v = v.max(0.0);
            }
            caps[m.idx()] = cap;
        }
    }
    caps
}

/// Divide the machines among `num_sets` crucial service sets.
///
/// For every machine group (specification), each set receives a share of
/// that group's machines proportional to the set's total requested
/// resources among machines it can use, using the largest-remainder method
/// so every machine lands in exactly one set. Sets whose services cannot
/// run on a group's machines (feature mismatch) get a zero share of it.
///
/// Returns `machine_sets[k]` = machines of set `k`.
pub fn assign_machines(problem: &Problem, service_sets: &[Vec<ServiceId>]) -> Vec<Vec<MachineId>> {
    let num_sets = service_sets.len();
    let mut out = vec![Vec::new(); num_sets];
    if num_sets == 0 {
        return out;
    }
    if num_sets == 1 {
        out[0] = problem.machines.iter().map(|m| m.id).collect();
        return out;
    }
    let avg_cap = {
        let mut t = ResourceVec::ZERO;
        for m in &problem.machines {
            t += m.capacity;
        }
        t * (1.0 / problem.num_machines().max(1) as f64)
    };
    // requested "size" of each set, as average-machine equivalents
    let demands: Vec<f64> = service_sets
        .iter()
        .map(|set| {
            set.iter()
                .map(|&s| {
                    let svc = &problem.services[s.idx()];
                    svc.total_demand().normalized_magnitude(&avg_cap)
                })
                .sum::<f64>()
                .max(1e-9)
        })
        .collect();

    for group in problem.machine_groups() {
        // which sets can use this group at all?
        let usable: Vec<usize> = (0..num_sets)
            .filter(|&k| {
                service_sets[k].iter().any(|&s| {
                    problem.services[s.idx()]
                        .required_features
                        .subset_of(group.features)
                })
            })
            .collect();
        if usable.is_empty() {
            // orphan machines: give to the largest set (they may still host
            // completion-pass containers)
            let k = (0..num_sets)
                .max_by(|&a, &b| demands[a].partial_cmp(&demands[b]).unwrap())
                .unwrap();
            out[k].extend(&group.members);
            continue;
        }
        let total_demand: f64 = usable.iter().map(|&k| demands[k]).sum();
        let count = group.members.len();
        // largest remainder apportionment
        let mut base: Vec<usize> = Vec::with_capacity(usable.len());
        let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(usable.len());
        let mut assigned = 0usize;
        for (i, &k) in usable.iter().enumerate() {
            let exact = count as f64 * demands[k] / total_demand;
            let b = exact.floor() as usize;
            base.push(b);
            assigned += b;
            remainders.push((exact - b as f64, i));
        }
        remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let mut leftover = count - assigned;
        for &(_, i) in &remainders {
            if leftover == 0 {
                break;
            }
            base[i] += 1;
            leftover -= 1;
        }
        let mut cursor = 0usize;
        for (i, &k) in usable.iter().enumerate() {
            let take = base[i];
            out[k].extend(&group.members[cursor..cursor + take]);
            cursor += take;
        }
    }
    // every non-empty set must end with at least one machine it can use —
    // steal from the set holding the most machines of a compatible group
    for k in 0..num_sets {
        if !service_sets[k].is_empty() && out[k].is_empty() {
            let donor = (0..num_sets)
                .filter(|&d| d != k && out[d].len() > 1)
                .max_by_key(|&d| out[d].len());
            if let Some(d) = donor {
                // prefer a machine the set's services can actually run on
                let pos = out[d].iter().position(|&m| {
                    service_sets[k].iter().any(|&s| {
                        problem.services[s.idx()]
                            .required_features
                            .subset_of(problem.machines[m.idx()].features)
                    })
                });
                if let Some(pos) = pos {
                    let m = out[d].remove(pos);
                    out[k].push(m);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{FeatureMask, ProblemBuilder};

    #[test]
    fn shrink_subtracts_trivial_usage() {
        let mut b = ProblemBuilder::new();
        let t = b.add_service("trivial", 2, ResourceVec::cpu_mem(3.0, 4.0));
        b.add_machine(ResourceVec::cpu_mem(10.0, 10.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let mut current = Placement::empty_for(&p);
        current.add(t, MachineId(0), 2);
        let caps = shrunk_capacities(&p, Some(&current), &[t]);
        assert_eq!(caps[0], ResourceVec::cpu_mem(4.0, 2.0));
    }

    #[test]
    fn shrink_without_placement_is_identity() {
        let mut b = ProblemBuilder::new();
        let t = b.add_service("trivial", 2, ResourceVec::cpu_mem(3.0, 4.0));
        b.add_machine(ResourceVec::cpu_mem(10.0, 10.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let caps = shrunk_capacities(&p, None, &[t]);
        assert_eq!(caps[0], p.machines[0].capacity);
    }

    #[test]
    fn shrink_clamps_at_zero() {
        let mut b = ProblemBuilder::new();
        let t = b.add_service("hog", 5, ResourceVec::cpu_mem(4.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(10.0, 10.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let mut current = Placement::empty_for(&p);
        current.add(t, MachineId(0), 5); // 20 cpu > capacity (overcommitted input)
        let caps = shrunk_capacities(&p, Some(&current), &[t]);
        assert_eq!(caps[0].cpu(), 0.0);
    }

    #[test]
    fn machines_split_proportionally_to_demand() {
        let mut b = ProblemBuilder::new();
        // set 0 asks 3× the resources of set 1
        let s0 = b.add_service("big", 6, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("small", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(8, ResourceVec::cpu_mem(4.0, 4.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let sets = assign_machines(&p, &[vec![s0], vec![s1]]);
        assert_eq!(sets[0].len(), 6);
        assert_eq!(sets[1].len(), 2);
        // no machine lost or duplicated
        let mut all: Vec<MachineId> = sets.iter().flatten().copied().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn incompatible_groups_go_to_compatible_sets_only() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service_full(
            rasa_model::Service::new(ServiceId(0), "gpu", 4, ResourceVec::cpu_mem(1.0, 1.0))
                .with_features(FeatureMask::bit(0)),
        );
        let s1 = b.add_service("plain", 4, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(3, ResourceVec::cpu_mem(4.0, 4.0), FeatureMask::bit(0));
        b.add_machines(3, ResourceVec::cpu_mem(4.0, 4.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let sets = assign_machines(&p, &[vec![s0], vec![s1]]);
        // gpu machines can host both (bit0 ⊇ empty requirement too), but
        // plain machines can only host s1 — so s1's set must contain all
        // plain machines.
        for mid in 3..6 {
            assert!(
                sets[1].contains(&MachineId(mid)),
                "plain machine {mid} must go to s1"
            );
        }
        assert!(!sets[0].iter().any(|m| m.idx() >= 3));
    }

    #[test]
    fn single_set_gets_everything() {
        let mut b = ProblemBuilder::new();
        let s = b.add_service("a", 1, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(4, ResourceVec::cpu_mem(4.0, 4.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let sets = assign_machines(&p, &[vec![s]]);
        assert_eq!(sets[0].len(), 4);
    }
}
