#![warn(missing_docs)]

//! # rasa-partition
//!
//! The paper's **multi-stage service partitioning** (Section IV-B) plus the
//! ablation strategies of Fig 6.
//!
//! Stages, mirrored one-to-one from the paper (see [`multi_stage_partition`]):
//!
//! 1. **Non-affinity partitioning** — services with no affinity edges can
//!    never contribute to the objective; they become *trivial*.
//! 2. **Master-affinity partitioning** — rank services by total affinity
//!    `T(s)`; keep the top `⌊αN⌋` *master* services, where
//!    `α = 45 · ln^0.66(N) / N` (the paper's empirical instantiation of
//!    Lemma 1's `O(ln^{1-ε} N / N)`). The long tail becomes trivial too.
//! 3. **Compatibility partitioning** — master services that share no
//!    compatible machine can never collocate; split them into independent
//!    blocks (connected components of the service–machine-group
//!    compatibility relation).
//! 4. **Loss-minimization balanced partitioning** — any block still larger
//!    than the subproblem budget is split by the paper's heuristic: sample
//!    `|E|` candidate partitions from multi-seed BFS, keep the balanced
//!    ones (largest ≤ 2 × smallest), pick the minimum-cut candidate.
//!
//! Finally, machines are divided among the crucial service sets
//! proportionally to requested resources (Section IV-B5), shrinking away
//! capacity used by trivial services when a current placement is supplied.
//!
//! The [`strategy`] module exposes the Fig 6 ablations
//! (NO-PARTITION / RANDOM-PARTITION / KAHIP / MULTI-STAGE) behind one enum.

pub mod fingerprint;
pub mod machines;
pub mod master;
pub mod stages;
pub mod strategy;

pub use fingerprint::{compute_delta, PartitionDelta};
pub use machines::assign_machines;
pub use master::{default_master_ratio, master_services};
pub use stages::{multi_stage_partition, PartitionConfig, PartitionOutcome, Subproblem};
pub use strategy::{partition_with_strategy, PartitionStrategy};
