//! The Fig 6 partitioning ablations behind one switch:
//! NO-PARTITION / RANDOM-PARTITION / KAHIP / MULTI-STAGE-PARTITION.

use crate::machines::assign_machines;
use crate::stages::{
    multi_stage_partition, PartitionConfig, PartitionOutcome, PartitionStats, Subproblem,
};
use rand::Rng;
use rasa_graph::{
    multilevel_partition, random_partition, AffinityGraph, MultilevelConfig, Partition,
};
use rasa_model::{Placement, Problem, ServiceId};
use std::time::Instant;

/// Which partitioning algorithm to run before the solve phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PartitionStrategy {
    /// Solve the whole problem as one subproblem (Fig 6's NO-PARTITION —
    /// only tractable for small clusters).
    NoPartition,
    /// Uniformly random service split (RANDOM-PARTITION).
    Random,
    /// Multilevel min-weight balanced graph partitioning (the KAHIP
    /// baseline, via our `rasa-graph` multilevel partitioner).
    Kahip,
    /// The paper's multi-stage partitioning (Section IV-B).
    MultiStage,
}

impl PartitionStrategy {
    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PartitionStrategy::NoPartition => "NO-PARTITION",
            PartitionStrategy::Random => "RANDOM-PARTITION",
            PartitionStrategy::Kahip => "KAHIP",
            PartitionStrategy::MultiStage => "MULTI-STAGE-PARTITION",
        }
    }
}

/// Produce subproblems under `strategy`. All strategies share the
/// machine-assignment step so the comparison isolates the *service* split,
/// as in the paper's ablation.
pub fn partition_with_strategy<R: Rng>(
    problem: &Problem,
    current: Option<&Placement>,
    strategy: PartitionStrategy,
    config: &PartitionConfig,
    rng: &mut R,
) -> PartitionOutcome {
    let _fs =
        rasa_obs::flight::span_with("partition.strategy", &[("strategy", strategy.label().into())]);
    let outcome = partition_with_strategy_impl(problem, current, strategy, config, rng);
    let obs = rasa_obs::global();
    if obs.enabled() {
        obs.add("partition.runs", 1);
        obs.add("partition.subproblems", outcome.subproblems.len() as u64);
        obs.add("partition.trivial_services", outcome.trivial_services.len() as u64);
        obs.add("partition.stage1_non_affinity", outcome.stats.non_affinity as u64);
        obs.add("partition.stage2_masters", outcome.stats.masters as u64);
        obs.add("partition.stage3_compat_blocks", outcome.stats.compat_blocks as u64);
        obs.add("partition.stage4_final_sets", outcome.stats.final_sets as u64);
        obs.record("partition.cut_weight", outcome.affinity_loss);
        obs.record("partition.elapsed_seconds", outcome.stats.elapsed_secs);
    }
    outcome
}

fn partition_with_strategy_impl<R: Rng>(
    problem: &Problem,
    current: Option<&Placement>,
    strategy: PartitionStrategy,
    config: &PartitionConfig,
    rng: &mut R,
) -> PartitionOutcome {
    match strategy {
        PartitionStrategy::MultiStage => multi_stage_partition(problem, current, config, rng),
        PartitionStrategy::NoPartition => {
            let start = Instant::now();
            let all_services: Vec<ServiceId> = problem.services.iter().map(|s| s.id).collect();
            let all_machines: Vec<_> = problem.machines.iter().map(|m| m.id).collect();
            let (sub, mapping) = problem.induced_subproblem(&all_services, &all_machines);
            PartitionOutcome {
                subproblems: vec![Subproblem {
                    problem: sub,
                    mapping,
                }],
                trivial_services: Vec::new(),
                affinity_loss: 0.0,
                stats: PartitionStats {
                    final_sets: 1,
                    elapsed_secs: start.elapsed().as_secs_f64(),
                    ..Default::default()
                },
            }
        }
        PartitionStrategy::Random | PartitionStrategy::Kahip => {
            let start = Instant::now();
            let graph = AffinityGraph::from_problem(problem);
            let affinity: Vec<usize> = graph.vertices_with_affinity();
            let trivial: Vec<ServiceId> = (0..problem.num_services())
                .filter(|&v| graph.degree(v) == 0)
                .map(|v| ServiceId(v as u32))
                .collect();
            let k = affinity
                .len()
                .div_ceil(config.max_subproblem_services)
                .max(1);
            let partition: Partition = if strategy == PartitionStrategy::Random {
                // random split of affinity services only
                let assignment: Vec<usize> = random_partition(affinity.len(), k, rng).part_of;
                Partition::from_assignment(assignment)
            } else {
                // KaHIP-style multilevel cut on the induced affinity graph
                let index_of: std::collections::HashMap<usize, usize> =
                    affinity.iter().enumerate().map(|(i, &v)| (v, i)).collect();
                let mut edges = Vec::new();
                for &v in &affinity {
                    for (u, w) in graph.neighbors(v) {
                        if v < u {
                            edges.push((index_of[&v], index_of[&u], w));
                        }
                    }
                }
                let sub_graph = AffinityGraph::from_edges(affinity.len(), &edges);
                multilevel_partition(&sub_graph, &MultilevelConfig::with_parts(k), rng)
            };
            let mut service_sets: Vec<Vec<ServiceId>> = vec![Vec::new(); partition.num_parts];
            for (i, &p) in partition.part_of.iter().enumerate() {
                service_sets[p].push(ServiceId(affinity[i] as u32));
            }
            service_sets.retain(|s| !s.is_empty());

            let shrunk = crate::machines::shrunk_capacities(problem, current, &trivial);
            let mut shrunk_problem = problem.clone();
            for (m, cap) in shrunk_problem.machines.iter_mut().zip(shrunk) {
                m.capacity = cap;
            }
            let machine_sets = assign_machines(&shrunk_problem, &service_sets);
            let set_of: std::collections::HashMap<ServiceId, usize> = service_sets
                .iter()
                .enumerate()
                .flat_map(|(kk, set)| set.iter().map(move |&s| (s, kk)))
                .collect();
            let affinity_loss = problem
                .affinity_edges
                .iter()
                .filter(|e| set_of.get(&e.a) != set_of.get(&e.b))
                .map(|e| e.weight)
                .sum();
            let subproblems = service_sets
                .iter()
                .zip(&machine_sets)
                .map(|(svcs, machines)| {
                    let (sub, mapping) = shrunk_problem.induced_subproblem(svcs, machines);
                    Subproblem {
                        problem: sub,
                        mapping,
                    }
                })
                .collect();
            PartitionOutcome {
                subproblems,
                trivial_services: trivial,
                affinity_loss,
                stats: PartitionStats {
                    final_sets: service_sets.len(),
                    elapsed_secs: start.elapsed().as_secs_f64(),
                    ..Default::default()
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rasa_model::{FeatureMask, ProblemBuilder, ResourceVec};

    fn modular_problem() -> Problem {
        // 3 clusters of 6 services, heavy inside, light across
        let mut b = ProblemBuilder::new();
        let svcs: Vec<_> = (0..18)
            .map(|i| b.add_service(format!("s{i}"), 1, ResourceVec::cpu_mem(1.0, 1.0)))
            .collect();
        b.add_machines(9, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        for c in 0..3 {
            let base = c * 6;
            for i in 0..6 {
                for j in (i + 1)..6 {
                    b.add_affinity(svcs[base + i], svcs[base + j], 5.0);
                }
            }
        }
        b.add_affinity(svcs[5], svcs[6], 0.1);
        b.add_affinity(svcs[11], svcs[12], 0.1);
        b.build().unwrap()
    }

    #[test]
    fn no_partition_is_one_subproblem() {
        let p = modular_problem();
        let mut rng = StdRng::seed_from_u64(0);
        let out = partition_with_strategy(
            &p,
            None,
            PartitionStrategy::NoPartition,
            &PartitionConfig::default(),
            &mut rng,
        );
        assert_eq!(out.subproblems.len(), 1);
        assert_eq!(out.subproblems[0].problem.num_services(), 18);
        assert_eq!(out.affinity_loss, 0.0);
    }

    #[test]
    fn kahip_cut_beats_random_on_modular_graphs() {
        let p = modular_problem();
        let cfg = PartitionConfig {
            max_subproblem_services: 6,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(42);
        let kahip = partition_with_strategy(&p, None, PartitionStrategy::Kahip, &cfg, &mut rng);
        let random = partition_with_strategy(&p, None, PartitionStrategy::Random, &cfg, &mut rng);
        assert!(
            kahip.affinity_loss < random.affinity_loss,
            "kahip {} vs random {}",
            kahip.affinity_loss,
            random.affinity_loss
        );
        // multilevel should find the (near-)module split
        assert!(kahip.affinity_loss <= 0.5, "loss {}", kahip.affinity_loss);
    }

    #[test]
    fn multi_stage_beats_or_matches_kahip_here() {
        let p = modular_problem();
        let cfg = PartitionConfig {
            max_subproblem_services: 6,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let ms = partition_with_strategy(&p, None, PartitionStrategy::MultiStage, &cfg, &mut rng);
        assert!(ms.affinity_loss <= 0.5, "loss {}", ms.affinity_loss);
    }

    #[test]
    fn all_strategies_cover_all_machines_exactly_once() {
        let p = modular_problem();
        let cfg = PartitionConfig {
            max_subproblem_services: 6,
            ..Default::default()
        };
        for strat in [
            PartitionStrategy::NoPartition,
            PartitionStrategy::Random,
            PartitionStrategy::Kahip,
            PartitionStrategy::MultiStage,
        ] {
            let mut rng = StdRng::seed_from_u64(9);
            let out = partition_with_strategy(&p, None, strat, &cfg, &mut rng);
            let mut machines: Vec<_> = out
                .subproblems
                .iter()
                .flat_map(|s| s.mapping.machine_to_parent.iter().copied())
                .collect();
            machines.sort();
            machines.dedup();
            assert_eq!(machines.len(), 9, "{}", strat.label());
        }
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(PartitionStrategy::Kahip.label(), "KAHIP");
        assert_eq!(
            PartitionStrategy::MultiStage.label(),
            "MULTI-STAGE-PARTITION"
        );
    }
}
