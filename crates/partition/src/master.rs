//! Master-affinity partitioning (Section IV-B2): keep only the head of the
//! power-law-distributed total-affinity ranking.

use rasa_graph::AffinityGraph;

/// The paper's empirically-chosen master ratio
/// `α = 45 · ln^0.66(N) / N`, clamped to `(0, 1]` (Section V-B). For small
/// `N` the formula exceeds 1, meaning *every* service is a master service.
pub fn default_master_ratio(n: usize) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    let n_f = n as f64;
    let alpha = 45.0 * n_f.ln().powf(0.66) / n_f;
    alpha.min(1.0)
}

/// Split vertex ids into `(masters, non_masters)` by total affinity under
/// ratio `alpha`: the top `⌊αN⌋` (at least 1 when any affinity exists) of
/// the *affinity* vertices, ranked by `T(s)` descending.
///
/// `n_total` is the paper's `N` — the full service count used to size
/// `⌊αN⌋` — while ranking happens only among vertices that actually carry
/// affinity (non-affinity services were already removed in stage 1).
pub fn master_services(
    graph: &AffinityGraph,
    affinity_vertices: &[usize],
    n_total: usize,
    alpha: f64,
) -> (Vec<usize>, Vec<usize>) {
    if affinity_vertices.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let budget = ((alpha * n_total as f64).floor() as usize).clamp(1, affinity_vertices.len());
    let totals = graph.all_total_affinities();
    let mut ranked: Vec<usize> = affinity_vertices.to_vec();
    ranked.sort_by(|&a, &b| {
        totals[b]
            .partial_cmp(&totals[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let masters = ranked[..budget].to_vec();
    let non_masters = ranked[budget..].to_vec();
    (masters, non_masters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formula_matches_paper() {
        // α = 45 · ln^0.66(N) / N at N = 10_000
        let n = 10_000usize;
        let expect = 45.0 * (n as f64).ln().powf(0.66) / n as f64;
        assert!((default_master_ratio(n) - expect).abs() < 1e-12);
    }

    #[test]
    fn ratio_clamps_to_one_for_small_n() {
        assert_eq!(default_master_ratio(10), 1.0);
        assert_eq!(default_master_ratio(0), 1.0);
        assert_eq!(default_master_ratio(1), 1.0);
    }

    #[test]
    fn ratio_decreases_with_scale() {
        assert!(default_master_ratio(100_000) < default_master_ratio(10_000));
        assert!(default_master_ratio(10_000) < 0.05);
    }

    #[test]
    fn masters_are_the_top_by_total_affinity() {
        // star: center has the largest T(s)
        let g = AffinityGraph::from_edges(5, &[(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)]);
        let affinity: Vec<usize> = vec![0, 1, 2, 3];
        let (masters, rest) = master_services(&g, &affinity, 5, 0.4); // ⌊0.4·5⌋ = 2
        assert_eq!(masters, vec![0, 3]); // T: v0=6, v3=3, v2=2, v1=1
        assert_eq!(rest, vec![2, 1]);
    }

    #[test]
    fn at_least_one_master_when_affinity_exists() {
        let g = AffinityGraph::from_edges(100, &[(0, 1, 1.0)]);
        let (masters, _) = master_services(&g, &[0, 1], 100, 1e-9);
        assert_eq!(masters.len(), 1);
    }

    #[test]
    fn alpha_one_keeps_everything() {
        let g = AffinityGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let (masters, rest) = master_services(&g, &[0, 1, 2, 3], 4, 1.0);
        assert_eq!(masters.len(), 4);
        assert!(rest.is_empty());
    }

    #[test]
    fn empty_affinity_set() {
        let g = AffinityGraph::from_edges(3, &[]);
        let (masters, rest) = master_services(&g, &[], 3, 0.5);
        assert!(masters.is_empty() && rest.is_empty());
    }
}
