//! The four-stage partitioning pipeline (Section IV-B) and its outputs.

use crate::machines::assign_machines;
use crate::master::{default_master_ratio, master_services};
use rand::Rng;
use rasa_graph::{bfs_seeded_partition, cut_weight, is_balanced, AffinityGraph, Partition};
use rasa_model::{Placement, Problem, ServiceId, SubproblemMapping};
use std::time::Instant;

/// Knobs for [`multi_stage_partition`].
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Master ratio `α`; `None` uses the paper's `45 · ln^0.66(N) / N`.
    pub master_ratio: Option<f64>,
    /// Balance criterion for stage 4 (paper: largest ≤ 2 × smallest).
    pub balance_ratio: f64,
    /// Service sets larger than this are split by stage 4.
    pub max_subproblem_services: usize,
    /// Cap on the number of candidate partitions stage 4 samples (the paper
    /// samples `|E|`; at industrial scale that is parallelized — we cap for
    /// single-machine reproduction).
    pub max_samples: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            master_ratio: None,
            balance_ratio: 2.0,
            max_subproblem_services: 24,
            max_samples: 64,
        }
    }
}

/// One subproblem: an induced problem plus the id mapping back to the
/// parent.
#[derive(Clone, Debug)]
pub struct Subproblem {
    /// Induced problem (re-densified ids, machines assigned).
    pub problem: Problem,
    /// Translation back to parent ids.
    pub mapping: SubproblemMapping,
}

/// Output of the multi-stage partitioning.
#[derive(Clone, Debug)]
pub struct PartitionOutcome {
    /// Crucial subproblems, each to be solved independently.
    pub subproblems: Vec<Subproblem>,
    /// Trivial services (non-affinity + non-master): left to the default
    /// scheduler / completion pass.
    pub trivial_services: Vec<ServiceId>,
    /// Affinity weight on edges crossing between different crucial sets or
    /// into the trivial set — the partitioning's optimality loss upper
    /// bound (the paper reports this stays below ~12%).
    pub affinity_loss: f64,
    /// Breakdown per stage for reports.
    pub stats: PartitionStats,
}

/// Per-stage counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PartitionStats {
    /// Services with no affinity edges (stage 1).
    pub non_affinity: usize,
    /// Master services kept by stage 2.
    pub masters: usize,
    /// Effective master ratio used.
    pub alpha: f64,
    /// Compatibility blocks after stage 3.
    pub compat_blocks: usize,
    /// Final crucial sets after stage 4.
    pub final_sets: usize,
    /// Wall-clock seconds spent partitioning.
    pub elapsed_secs: f64,
}

/// Run the four-stage service partitioning and machine assignment.
///
/// `current` (the running cluster's placement) is used to shrink machine
/// capacities by trivial services' usage; pass `None` when planning from
/// scratch. Randomness (stage 4 seeds) comes from `rng`, so outcomes are
/// reproducible.
pub fn multi_stage_partition<R: Rng>(
    problem: &Problem,
    current: Option<&Placement>,
    config: &PartitionConfig,
    rng: &mut R,
) -> PartitionOutcome {
    let start = Instant::now();
    let graph = AffinityGraph::from_problem(problem);
    let n_total = problem.num_services();

    // Stage 1: non-affinity partitioning.
    let affinity_vertices = graph.vertices_with_affinity();
    let non_affinity_count = n_total - affinity_vertices.len();

    // Stage 2: master-affinity partitioning.
    let alpha = config
        .master_ratio
        .unwrap_or_else(|| default_master_ratio(n_total));
    let (masters, non_masters) = master_services(&graph, &affinity_vertices, n_total, alpha);

    let mut trivial_services: Vec<ServiceId> = (0..n_total)
        .filter(|v| graph.degree(*v) == 0)
        .map(|v| ServiceId(v as u32))
        .collect();
    trivial_services.extend(non_masters.iter().map(|&v| ServiceId(v as u32)));
    trivial_services.sort();

    // Stage 3: compatibility partitioning — union services that share a
    // compatible machine group.
    let groups = problem.machine_groups();
    let mut dsu = Dsu::new(masters.len());
    {
        // anchor: first master service compatible with each group
        let mut anchor: Vec<Option<usize>> = vec![None; groups.len()];
        for (mi, &v) in masters.iter().enumerate() {
            let req = problem.services[v].required_features;
            for (gi, g) in groups.iter().enumerate() {
                if req.subset_of(g.features) {
                    match anchor[gi] {
                        None => anchor[gi] = Some(mi),
                        Some(a) => dsu.union(a, mi),
                    }
                }
            }
        }
    }
    // compatibility must not split affinity edges needlessly — but services
    // with disjoint machine sets genuinely cannot collocate, so the paper
    // separates them even if an edge connects them (that edge is dead
    // weight: min() is always 0). We follow the paper.
    let mut blocks: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (mi, &v) in masters.iter().enumerate() {
        blocks.entry(dsu.find(mi)).or_default().push(v);
    }
    let compat_blocks: Vec<Vec<usize>> = blocks.into_values().collect();
    let num_compat_blocks = compat_blocks.len();

    // Stage 4: loss-minimization balanced partitioning of oversized blocks.
    //
    // Zero-loss cuts come first: a compatibility block whose affinity
    // subgraph is disconnected splits along connected components for free,
    // so whole components are bin-packed into budget-sized sets and only
    // components that are *themselves* oversized go through the paper's
    // sampled BFS heuristic. (The heuristic would also find these cuts
    // given enough samples — packing just guarantees it.)
    let mut final_sets: Vec<Vec<usize>> = Vec::new();
    for block in compat_blocks {
        if block.len() <= config.max_subproblem_services {
            final_sets.push(block);
            continue;
        }
        // induced graph over the block
        let index_of: std::collections::HashMap<usize, usize> =
            block.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut edges: Vec<(usize, usize, f64)> = Vec::new();
        for &v in &block {
            for (u, w) in graph.neighbors(v) {
                if v < u {
                    if let (Some(&a), Some(&b)) = (index_of.get(&v), index_of.get(&u)) {
                        edges.push((a, b, w));
                    }
                }
            }
        }
        let sub_graph = AffinityGraph::from_edges(block.len(), &edges);
        let (comp_of, num_comps) = rasa_graph::connected_components(&sub_graph);
        let mut components: Vec<Vec<usize>> = vec![Vec::new(); num_comps];
        for (i, &c) in comp_of.iter().enumerate() {
            components[c].push(i);
        }
        // first-fit-decreasing packing of whole components into sets
        components.sort_by_key(|c| std::cmp::Reverse(c.len()));
        let mut packed: Vec<Vec<usize>> = Vec::new(); // local indices
        for comp in components {
            if comp.len() > config.max_subproblem_services {
                // oversized component: the paper's sampled-BFS heuristic,
                // applied recursively until every part fits the budget
                // (unbalanced best-cut fallbacks can leave oversized parts)
                let mut work: Vec<Vec<usize>> = vec![comp];
                while let Some(piece) = work.pop() {
                    if piece.len() <= config.max_subproblem_services {
                        packed.push(piece);
                        continue;
                    }
                    let piece_index: std::collections::HashMap<usize, usize> =
                        piece.iter().enumerate().map(|(i, &v)| (v, i)).collect();
                    let mut piece_edges: Vec<(usize, usize, f64)> = Vec::new();
                    for &v in &piece {
                        for (u, w) in sub_graph.neighbors(v) {
                            if v < u {
                                if let (Some(&a), Some(&b)) =
                                    (piece_index.get(&v), piece_index.get(&u))
                                {
                                    piece_edges.push((a, b, w));
                                }
                            }
                        }
                    }
                    let piece_graph = AffinityGraph::from_edges(piece.len(), &piece_edges);
                    let h = piece.len().div_ceil(config.max_subproblem_services);
                    let samples = piece_graph.num_edges().clamp(1, config.max_samples);
                    let mut best: Option<(f64, Partition)> = None;
                    let mut best_unbalanced: Option<(f64, Partition)> = None;
                    for _ in 0..samples {
                        let p = bfs_seeded_partition(&piece_graph, h.min(piece.len()), rng);
                        let cut = cut_weight(&piece_graph, &p);
                        if is_balanced(&p, config.balance_ratio) {
                            if best.as_ref().map_or(true, |(bc, _)| cut < *bc) {
                                best = Some((cut, p));
                            }
                        } else if best_unbalanced.as_ref().map_or(true, |(bc, _)| cut < *bc) {
                            best_unbalanced = Some((cut, p));
                        }
                    }
                    let chosen = best.or(best_unbalanced).expect("at least one sample").1;
                    let parts = chosen.parts();
                    if parts.len() <= 1 {
                        // splitter made no progress: force even chunks in
                        // BFS order so recursion terminates
                        for chunk in piece.chunks(config.max_subproblem_services) {
                            packed.push(chunk.to_vec());
                        }
                        continue;
                    }
                    for part in parts {
                        work.push(part.into_iter().map(|i| piece[i]).collect());
                    }
                }
            } else {
                // fits whole: first-fit into an existing set with room
                match packed
                    .iter_mut()
                    .find(|set| set.len() + comp.len() <= config.max_subproblem_services)
                {
                    Some(set) => set.extend(comp),
                    None => packed.push(comp),
                }
            }
        }
        for set in packed {
            final_sets.push(set.into_iter().map(|i| block[i]).collect());
        }
    }

    // affinity loss: edges not contained within a single final set
    let set_of: std::collections::HashMap<usize, usize> = final_sets
        .iter()
        .enumerate()
        .flat_map(|(k, set)| set.iter().map(move |&v| (v, k)))
        .collect();
    let mut affinity_loss = 0.0;
    for e in &problem.affinity_edges {
        match (set_of.get(&e.a.idx()), set_of.get(&e.b.idx())) {
            (Some(a), Some(b)) if a == b => {}
            _ => affinity_loss += e.weight,
        }
    }

    // machine assignment (Section IV-B5) on shrunk capacities
    let shrunk = crate::machines::shrunk_capacities(problem, current, &trivial_services);
    let mut shrunk_problem = problem.clone();
    for (m, cap) in shrunk_problem.machines.iter_mut().zip(shrunk) {
        m.capacity = cap;
    }
    let service_sets: Vec<Vec<ServiceId>> = final_sets
        .iter()
        .map(|set| set.iter().map(|&v| ServiceId(v as u32)).collect())
        .collect();
    let machine_sets = assign_machines(&shrunk_problem, &service_sets);

    let subproblems: Vec<Subproblem> = service_sets
        .iter()
        .zip(&machine_sets)
        .map(|(svcs, machines)| {
            let (sub, mapping) = shrunk_problem.induced_subproblem(svcs, machines);
            Subproblem {
                problem: sub,
                mapping,
            }
        })
        .collect();

    PartitionOutcome {
        subproblems,
        trivial_services,
        affinity_loss,
        stats: PartitionStats {
            non_affinity: non_affinity_count,
            masters: masters.len(),
            alpha,
            compat_blocks: num_compat_blocks,
            final_sets: final_sets.len(),
            elapsed_secs: start.elapsed().as_secs_f64(),
        },
    }
}

/// Minimal union-find.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rasa_model::{FeatureMask, ProblemBuilder, ResourceVec};

    /// 2 heavy hubs + light tail + isolated services.
    fn skewed_problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let svcs: Vec<_> = (0..12)
            .map(|i| b.add_service(format!("s{i}"), 2, ResourceVec::cpu_mem(1.0, 1.0)))
            .collect();
        b.add_machines(6, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        // hub 0 and 1 carry nearly all affinity
        b.add_affinity(svcs[0], svcs[1], 100.0);
        b.add_affinity(svcs[0], svcs[2], 50.0);
        b.add_affinity(svcs[1], svcs[3], 40.0);
        // light tail
        b.add_affinity(svcs[4], svcs[5], 0.5);
        b.add_affinity(svcs[6], svcs[7], 0.2);
        // services 8..12 isolated
        b.build().unwrap()
    }

    #[test]
    fn stage1_identifies_non_affinity_services() {
        let p = skewed_problem();
        let mut rng = StdRng::seed_from_u64(0);
        let out = multi_stage_partition(&p, None, &PartitionConfig::default(), &mut rng);
        assert_eq!(out.stats.non_affinity, 4);
        for v in 8..12 {
            assert!(out.trivial_services.contains(&ServiceId(v)));
        }
    }

    #[test]
    fn small_problem_keeps_all_affinity_services_as_masters() {
        let p = skewed_problem();
        let mut rng = StdRng::seed_from_u64(0);
        let out = multi_stage_partition(&p, None, &PartitionConfig::default(), &mut rng);
        // N = 12 → α clamps to 1 → every affinity service is a master
        assert_eq!(out.stats.alpha, 1.0);
        assert_eq!(out.stats.masters, 8);
        assert_eq!(out.affinity_loss, 0.0, "single block keeps every edge");
    }

    #[test]
    fn master_ratio_override_drops_the_tail() {
        let p = skewed_problem();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = PartitionConfig {
            master_ratio: Some(0.34), // ⌊0.34·12⌋ = 4 masters
            ..Default::default()
        };
        let out = multi_stage_partition(&p, None, &cfg, &mut rng);
        assert_eq!(out.stats.masters, 4);
        // hubs (0,1,2,3 by T) survive; tail edges lost
        assert!(
            (out.affinity_loss - 0.7).abs() < 1e-9,
            "loss {}",
            out.affinity_loss
        );
        // the loss is a small share of total affinity — the skewness argument
        assert!(out.affinity_loss / p.total_affinity() < 0.01);
    }

    #[test]
    fn compatibility_splits_disjoint_feature_blocks() {
        let mut b = ProblemBuilder::new();
        let a0 = b.add_service_full(
            rasa_model::Service::new(ServiceId(0), "v4a", 1, ResourceVec::cpu_mem(1.0, 1.0))
                .with_features(FeatureMask::bit(0)),
        );
        let a1 = b.add_service_full(
            rasa_model::Service::new(ServiceId(0), "v4b", 1, ResourceVec::cpu_mem(1.0, 1.0))
                .with_features(FeatureMask::bit(0)),
        );
        let b0 = b.add_service_full(
            rasa_model::Service::new(ServiceId(0), "v6a", 1, ResourceVec::cpu_mem(1.0, 1.0))
                .with_features(FeatureMask::bit(1)),
        );
        let b1 = b.add_service_full(
            rasa_model::Service::new(ServiceId(0), "v6b", 1, ResourceVec::cpu_mem(1.0, 1.0))
                .with_features(FeatureMask::bit(1)),
        );
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::bit(0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::bit(1));
        b.add_affinity(a0, a1, 1.0);
        b.add_affinity(b0, b1, 1.0);
        let p = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let out = multi_stage_partition(&p, None, &PartitionConfig::default(), &mut rng);
        assert_eq!(out.stats.compat_blocks, 2);
        assert_eq!(out.subproblems.len(), 2);
        // machines follow compatibility
        for sub in &out.subproblems {
            assert_eq!(sub.problem.num_machines(), 2);
            assert_eq!(sub.problem.num_services(), 2);
        }
        assert_eq!(out.affinity_loss, 0.0);
    }

    #[test]
    fn stage4_splits_oversized_blocks_with_bounded_loss() {
        // two 10-cliques bridged by one light edge; budget forces a split
        let mut b = ProblemBuilder::new();
        let svcs: Vec<_> = (0..20)
            .map(|i| b.add_service(format!("s{i}"), 1, ResourceVec::cpu_mem(1.0, 1.0)))
            .collect();
        b.add_machines(10, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        for c in 0..2 {
            let base = c * 10;
            for i in 0..10 {
                for j in (i + 1)..10 {
                    b.add_affinity(svcs[base + i], svcs[base + j], 10.0);
                }
            }
        }
        b.add_affinity(svcs[9], svcs[10], 0.1);
        let p = b.build().unwrap();
        let cfg = PartitionConfig {
            max_subproblem_services: 12,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let out = multi_stage_partition(&p, None, &cfg, &mut rng);
        assert!(out.subproblems.len() >= 2);
        // loss should be (near) the bridge only
        assert!(
            out.affinity_loss <= 0.02 * p.total_affinity(),
            "loss {} of {}",
            out.affinity_loss,
            p.total_affinity()
        );
    }

    #[test]
    fn machines_are_partitioned_without_overlap() {
        let p = skewed_problem();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = PartitionConfig {
            max_subproblem_services: 4,
            ..Default::default()
        };
        let out = multi_stage_partition(&p, None, &cfg, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for sub in &out.subproblems {
            for m in &sub.mapping.machine_to_parent {
                assert!(seen.insert(*m), "machine {m} assigned twice");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = skewed_problem();
        let cfg = PartitionConfig {
            max_subproblem_services: 3,
            ..Default::default()
        };
        let a = multi_stage_partition(&p, None, &cfg, &mut StdRng::seed_from_u64(5));
        let b = multi_stage_partition(&p, None, &cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(
            PartitionStats {
                elapsed_secs: 0.0,
                ..a.stats
            },
            PartitionStats {
                elapsed_secs: 0.0,
                ..b.stats
            }
        );
        assert_eq!(a.trivial_services, b.trivial_services);
        assert_eq!(a.affinity_loss, b.affinity_loss);
    }

    #[test]
    fn current_placement_shrinks_capacity_for_trivial_services() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let t = b.add_service("fat-trivial", 1, ResourceVec::cpu_mem(6.0, 6.0));
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        let p = b.build().unwrap();
        let mut current = Placement::empty_for(&p);
        current.add(t, rasa_model::MachineId(0), 1);
        let mut rng = StdRng::seed_from_u64(1);
        let out = multi_stage_partition(&p, Some(&current), &PartitionConfig::default(), &mut rng);
        assert_eq!(out.subproblems.len(), 1);
        let cap = out.subproblems[0].problem.machines[0].capacity;
        assert_eq!(cap, ResourceVec::cpu_mem(2.0, 2.0));
    }
}
