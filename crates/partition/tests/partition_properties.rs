//! Property tests for the multi-stage partitioner: on random clusters the
//! output must be a true partition (services and machines each appear at
//! most once), the loss accounting must match the dropped edge weight, and
//! subproblem budgets must hold.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa_partition::{
    multi_stage_partition, partition_with_strategy, PartitionConfig, PartitionStrategy,
};
use rasa_trace::{generate, ClusterSpec};

fn spec_strategy() -> impl Strategy<Value = ClusterSpec> {
    (10usize..80, 30u64..300, 4usize..20, 0u64..500, 1usize..4).prop_map(
        |(services, containers, machines, seed, types)| ClusterSpec {
            name: format!("prop{seed}"),
            services,
            target_containers: containers,
            machines,
            machine_types: types,
            seed,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn services_and_machines_are_partitioned(spec in spec_strategy()) {
        let problem = generate(&spec);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let out = multi_stage_partition(&problem, None, &PartitionConfig::default(), &mut rng);

        // each service appears in at most one place: a subproblem or trivial
        let mut seen = std::collections::HashSet::new();
        for s in &out.trivial_services {
            prop_assert!(seen.insert(*s), "{s} duplicated");
        }
        for sub in &out.subproblems {
            for s in &sub.mapping.service_to_parent {
                prop_assert!(seen.insert(*s), "{s} duplicated");
            }
        }
        prop_assert_eq!(seen.len(), problem.num_services(), "every service accounted for");

        // machines never shared between subproblems
        let mut machines = std::collections::HashSet::new();
        for sub in &out.subproblems {
            for m in &sub.mapping.machine_to_parent {
                prop_assert!(machines.insert(*m), "{m} duplicated");
            }
        }
    }

    #[test]
    fn loss_equals_dropped_edge_weight(spec in spec_strategy()) {
        let problem = generate(&spec);
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xabcd);
        let out = multi_stage_partition(&problem, None, &PartitionConfig::default(), &mut rng);
        let kept: f64 = out
            .subproblems
            .iter()
            .map(|sub| sub.problem.total_affinity())
            .sum();
        let total = problem.total_affinity();
        prop_assert!(
            (kept + out.affinity_loss - total).abs() < 1e-6,
            "kept {kept} + loss {} != total {total}",
            out.affinity_loss
        );
    }

    #[test]
    fn subproblem_budget_is_respected(spec in spec_strategy()) {
        let problem = generate(&spec);
        let config = PartitionConfig {
            max_subproblem_services: 10,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x1111);
        let out = multi_stage_partition(&problem, None, &config, &mut rng);
        for sub in &out.subproblems {
            prop_assert!(
                sub.problem.num_services() <= 10,
                "subproblem with {} services over the budget",
                sub.problem.num_services()
            );
        }
    }

    #[test]
    fn every_strategy_produces_consistent_outputs(spec in spec_strategy()) {
        let problem = generate(&spec);
        for strategy in [
            PartitionStrategy::NoPartition,
            PartitionStrategy::Random,
            PartitionStrategy::Kahip,
            PartitionStrategy::MultiStage,
        ] {
            let mut rng = StdRng::seed_from_u64(spec.seed);
            let out = partition_with_strategy(
                &problem,
                None,
                strategy,
                &PartitionConfig::default(),
                &mut rng,
            );
            // loss never negative, never exceeds the total
            prop_assert!(out.affinity_loss >= -1e-9, "{strategy:?}");
            prop_assert!(
                out.affinity_loss <= problem.total_affinity() + 1e-9,
                "{strategy:?}"
            );
            // id maps stay in range
            for sub in &out.subproblems {
                for s in &sub.mapping.service_to_parent {
                    prop_assert!(s.idx() < problem.num_services());
                }
                for m in &sub.mapping.machine_to_parent {
                    prop_assert!(m.idx() < problem.num_machines());
                }
            }
        }
    }
}
