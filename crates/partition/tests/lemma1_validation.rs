//! Numerical validation of the paper's Lemma 1: under the power-law
//! Assumption 4.1 (`T(s) ∝ s^{-β}`, β > 1), the total affinity of the
//! services *below* the master cut `α = 45·ln^0.66(N)/N` is a vanishing
//! fraction — `O(1/ln^γ N)` — so ignoring them costs `o(1)` objective.

use rasa_partition::default_master_ratio;

/// Tail affinity fraction for an exact power law with `n` services.
fn tail_fraction(n: usize, beta: f64) -> f64 {
    let alpha = default_master_ratio(n);
    let cut = ((alpha * n as f64).floor() as usize).clamp(1, n);
    let totals: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-beta)).collect();
    let total: f64 = totals.iter().sum();
    let tail: f64 = totals[cut..].iter().sum();
    tail / total
}

#[test]
fn tail_fraction_obeys_the_lemma_bound() {
    // Lemma 1: tail ≤ O(1/ln^γ N) with γ = (β−1)(1−ε); the chosen
    // α = 45·ln^0.66(N)/N corresponds to ε = 0.34, so for β = 1.5,
    // γ = 0.5·0.66 = 0.33. Check tail · ln^γ N stays bounded by a small
    // constant across three decades (finite-N corrections mean the raw
    // fraction is not strictly monotone, but the bound holds throughout).
    let gamma = 0.33;
    for n in [1_000usize, 10_000, 100_000] {
        let tail = tail_fraction(n, 1.5);
        let scaled = tail * (n as f64).ln().powf(gamma);
        assert!(scaled < 0.2, "N={n}: tail {tail:.4}, scaled {scaled:.4}");
        assert!(
            tail < 0.12,
            "N={n}: tail {tail:.4} — outside the paper's <12% loss regime"
        );
    }
}

#[test]
fn steeper_power_laws_lose_less() {
    for n in [5_000usize, 50_000] {
        let flat = tail_fraction(n, 1.2);
        let steep = tail_fraction(n, 2.0);
        assert!(
            steep < flat,
            "N={n}: steeper tail {steep} should be below flatter {flat}"
        );
    }
}

#[test]
fn chosen_alpha_keeps_most_affinity_at_paper_scale() {
    // at the paper's cluster scales (≈10⁴ services) the master set holds
    // the overwhelming majority of the total affinity
    for beta in [1.3, 1.5, 1.8] {
        let tail = tail_fraction(10_000, beta);
        assert!(
            tail < 0.2,
            "β={beta}: masters keep only {:.0}%",
            100.0 * (1.0 - tail)
        );
    }
}

#[test]
fn master_cut_is_sublinear() {
    // the master set size ⌊αN⌋ = O(ln^0.66 N · 45) grows far slower than N
    let cut = |n: usize| (default_master_ratio(n) * n as f64).floor();
    assert!(cut(1_000) < 1_000.0 * 0.5);
    assert!(cut(100_000) < 100_000.0 * 0.01);
    // monotone in absolute size, vanishing as a fraction
    assert!(cut(100_000) > cut(10_000) * 0.9);
    assert!(
        cut(100_000) / 100_000.0 < cut(10_000) / 10_000.0,
        "fraction must shrink"
    );
}
