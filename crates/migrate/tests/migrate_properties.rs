//! Property tests for the migration planner: between any two feasible
//! placements with matching per-service totals, a produced plan always
//! replays cleanly — or the planner honestly reports `Stuck`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasa_migrate::{plan_migration, replay_plan, MigrateConfig, MigrateError};
use rasa_model::{
    ContainerAssignment, FeatureMask, MachineId, Placement, Problem, ProblemBuilder, ResourceVec,
    ServiceId,
};

/// Build a random problem plus two random feasible complete placements.
fn random_instance(seed: u64) -> Option<(Problem, Placement, Placement)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..6);
    let m = rng.gen_range(2..6);
    let mut b = ProblemBuilder::new();
    for i in 0..n {
        b.add_service(
            format!("s{i}"),
            rng.gen_range(1..5),
            ResourceVec::cpu_mem(1.0, 1.0),
        );
    }
    b.add_machines(m, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
    let problem = b.build().unwrap();

    let mut random_placement = |rng: &mut StdRng| -> Option<Placement> {
        let mut p = Placement::empty_for(&problem);
        let mut load = vec![0u32; m];
        for svc in &problem.services {
            for _ in 0..svc.replicas {
                // random feasible machine
                let start = rng.gen_range(0..m);
                let mut placed = false;
                for probe in 0..m {
                    let mi = (start + probe) % m;
                    if load[mi] < 8 {
                        p.add(svc.id, MachineId(mi as u32), 1);
                        load[mi] += 1;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    return None;
                }
            }
        }
        Some(p)
    };
    let from = random_placement(&mut rng)?;
    let to = random_placement(&mut rng)?;
    Some((problem, from, to))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plans_replay_or_report_stuck(seed in 0u64..5_000) {
        let Some((problem, from_p, to_p)) = random_instance(seed) else {
            return Ok(());
        };
        let from = ContainerAssignment::materialize(&problem, &from_p);
        match plan_migration(&problem, &from, &to_p, &MigrateConfig::default()) {
            Ok(plan) => {
                replay_plan(&problem, &from, &to_p, &plan, 0.75)
                    .map_err(|e| TestCaseError::fail(format!("seed {seed}: {e}")))?;
                // moves never exceed the total container count
                let total: u32 = problem.services.iter().map(|s| s.replicas).sum();
                prop_assert!(plan.total_moves() as u32 <= total);
            }
            Err(MigrateError::Stuck { .. }) => {
                // legal on adversarial instances
            }
            Err(e) => prop_assert!(false, "seed {seed}: unexpected {e}"),
        }
    }

    #[test]
    fn identity_migration_is_always_empty(seed in 0u64..1_000) {
        let Some((problem, from_p, _)) = random_instance(seed) else {
            return Ok(());
        };
        let from = ContainerAssignment::materialize(&problem, &from_p);
        let plan = plan_migration(&problem, &from, &from_p, &MigrateConfig::default())
            .expect("identity always plannable");
        prop_assert!(plan.is_empty());
    }

    #[test]
    fn stricter_sla_never_moves_more_per_step(seed in 0u64..800) {
        let Some((problem, from_p, to_p)) = random_instance(seed) else {
            return Ok(());
        };
        let from = ContainerAssignment::materialize(&problem, &from_p);
        let relaxed = MigrateConfig { min_alive_fraction: 0.5, ..Default::default() };
        let strict = MigrateConfig { min_alive_fraction: 0.9, ..Default::default() };
        let (Ok(p_relaxed), Ok(p_strict)) = (
            plan_migration(&problem, &from, &to_p, &relaxed),
            plan_migration(&problem, &from, &to_p, &strict),
        ) else {
            return Ok(());
        };
        // both plans move the same containers…
        prop_assert_eq!(p_relaxed.total_moves(), p_strict.total_moves());
        // …but the stricter SLA needs at least as many sequential steps
        prop_assert!(p_strict.steps.len() >= p_relaxed.steps.len(),
            "strict {} steps < relaxed {}", p_strict.steps.len(), p_relaxed.steps.len());
    }
}

#[test]
fn offline_ratio_ordering_prefers_low_ratio_for_delete() {
    // two services on one machine needing migration: the first delete must
    // come from the one with the lower offline ratio (both start at 0, tie
    // broken by container order) — then alternate as ratios shift.
    let mut b = ProblemBuilder::new();
    let s0 = b.add_service("a", 4, ResourceVec::cpu_mem(1.0, 1.0));
    let s1 = b.add_service("b", 4, ResourceVec::cpu_mem(1.0, 1.0));
    b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
    let p = b.build().unwrap();
    let mut from_p = Placement::empty_for(&p);
    from_p.add(s0, MachineId(0), 4);
    from_p.add(s1, MachineId(0), 4);
    let mut to_p = Placement::empty_for(&p);
    to_p.add(s0, MachineId(1), 4);
    to_p.add(s1, MachineId(1), 4);
    let from = ContainerAssignment::materialize(&p, &from_p);
    let plan = plan_migration(&p, &from, &to_p, &MigrateConfig::default()).unwrap();
    replay_plan(&p, &from, &to_p, &plan, 0.75).unwrap();
    // services must interleave: no step deletes two containers of one
    // service while the other sits at ratio zero
    for step in &plan.steps {
        let mut per_service = std::collections::HashMap::new();
        for (c, _) in &step.deletes {
            *per_service.entry(c.service).or_insert(0) += 1;
        }
        for (&svc, &count) in &per_service {
            assert!(count <= 1, "step deletes {count} containers of {svc}");
        }
    }
    let _ = ServiceId(0);
}
