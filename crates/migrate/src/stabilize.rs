//! Placement stabilization: exploit machine-group symmetry to minimize
//! container movement.
//!
//! Machines with identical capacity and features are interchangeable, so
//! any permutation of a candidate placement's per-machine contents *within
//! a machine group* realizes exactly the same gained affinity. A fresh
//! solver run names machines arbitrarily; matched against the running
//! cluster that arbitrariness shows up as pointless container moves. This
//! pass greedily re-assigns each group's candidate machine contents to the
//! member machines whose *current* contents overlap them most, which is
//! what keeps the paper's steady-state reallocations small (Section III-B:
//! "less than 5% of the total containers are relocated").

use rasa_model::{MachineId, Placement, Problem, ServiceId};

/// Permute `candidate`'s machine contents within each machine group to
/// maximize container overlap with `current`. The returned placement has
/// identical gained affinity and feasibility to `candidate` (only machine
/// *identities* within groups change) but typically needs far fewer moves
/// from `current`.
pub fn stabilize_placement(
    problem: &Problem,
    candidate: &Placement,
    current: &Placement,
) -> Placement {
    // contents per machine, as (service -> count) maps
    let contents = |placement: &Placement, m: MachineId| -> Vec<(ServiceId, u32)> {
        problem
            .services
            .iter()
            .filter_map(|s| {
                let c = placement.count(s.id, m);
                (c > 0).then_some((s.id, c))
            })
            .collect()
    };
    let overlap = |a: &[(ServiceId, u32)], b: &[(ServiceId, u32)]| -> u64 {
        let mut total = 0u64;
        for &(s, ca) in a {
            if let Some(&(_, cb)) = b.iter().find(|&&(t, _)| t == s) {
                total += u64::from(ca.min(cb));
            }
        }
        total
    };

    let mut out = Placement::empty_for(problem);
    for group in problem.machine_groups() {
        let members = &group.members;
        let cand: Vec<Vec<(ServiceId, u32)>> =
            members.iter().map(|&m| contents(candidate, m)).collect();
        let cur: Vec<Vec<(ServiceId, u32)>> =
            members.iter().map(|&m| contents(current, m)).collect();

        // greedy max-overlap matching: repeatedly take the best unmatched
        // (candidate content, member) pair
        let k = members.len();
        let mut pairs: Vec<(u64, usize, usize)> = Vec::with_capacity(k * k);
        for (ci, c) in cand.iter().enumerate() {
            if c.is_empty() {
                continue; // empty contents can go anywhere; matched last
            }
            for (mi, m) in cur.iter().enumerate() {
                pairs.push((overlap(c, m), ci, mi));
            }
        }
        pairs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut cand_taken = vec![false; k];
        let mut member_taken = vec![false; k];
        let mut assignment: Vec<Option<usize>> = vec![None; k]; // cand -> member
        for (_, ci, mi) in pairs {
            if !cand_taken[ci] && !member_taken[mi] {
                cand_taken[ci] = true;
                member_taken[mi] = true;
                assignment[ci] = Some(mi);
            }
        }
        // leftovers (empty candidate contents or unmatched): first free member
        let mut free_members: Vec<usize> = (0..k).filter(|&mi| !member_taken[mi]).collect();
        for slot in assignment.iter_mut() {
            if slot.is_none() {
                *slot = free_members.pop();
            }
        }
        for (ci, slot) in assignment.iter().enumerate() {
            let mi = slot.expect("every candidate machine is assigned");
            for &(s, c) in &cand[ci] {
                out.add(s, members[mi], c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{gained_affinity, FeatureMask, ProblemBuilder, ResourceVec};

    fn problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(3, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 5.0);
        b.build().unwrap()
    }

    #[test]
    fn renaming_within_a_group_eliminates_moves() {
        let p = problem();
        // current: pair collocated on m0 and m1
        let mut current = Placement::empty_for(&p);
        current.add(ServiceId(0), MachineId(0), 1);
        current.add(ServiceId(1), MachineId(0), 1);
        current.add(ServiceId(0), MachineId(1), 1);
        current.add(ServiceId(1), MachineId(1), 1);
        // candidate: same structure but the solver named the machines m1/m2
        let mut candidate = Placement::empty_for(&p);
        candidate.add(ServiceId(0), MachineId(1), 1);
        candidate.add(ServiceId(1), MachineId(1), 1);
        candidate.add(ServiceId(0), MachineId(2), 1);
        candidate.add(ServiceId(1), MachineId(2), 1);
        assert_eq!(current.moves_to(&candidate), 2, "naive diff wants 2 moves");
        let stable = stabilize_placement(&p, &candidate, &current);
        assert_eq!(current.moves_to(&stable), 0, "renaming removes all moves");
        assert_eq!(
            gained_affinity(&p, &stable),
            gained_affinity(&p, &candidate),
            "affinity unchanged"
        );
    }

    #[test]
    fn partial_overlap_is_maximized() {
        let p = problem();
        let mut current = Placement::empty_for(&p);
        current.add(ServiceId(0), MachineId(0), 2); // both a's on m0
        current.add(ServiceId(1), MachineId(2), 2); // both b's on m2
                                                    // candidate collocates the pair on one machine (named m1)
        let mut candidate = Placement::empty_for(&p);
        candidate.add(ServiceId(0), MachineId(1), 2);
        candidate.add(ServiceId(1), MachineId(1), 2);
        let stable = stabilize_placement(&p, &candidate, &current);
        // the collocated block lands either on m0 (overlap 2 with a's) or
        // m2 (overlap 2 with b's) — never on the empty m1
        let home = stable
            .machines_of(ServiceId(0))
            .next()
            .map(|(m, _)| m)
            .unwrap();
        assert_ne!(home, MachineId(1));
        assert!(current.moves_to(&stable) <= current.moves_to(&candidate));
    }

    #[test]
    fn groups_are_respected() {
        // two different SKUs: contents must not hop across groups
        let mut b = ProblemBuilder::new();
        let s = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY); // group 1
        b.add_machine(ResourceVec::cpu_mem(4.0, 4.0), FeatureMask::EMPTY); // group 2
        let p = b.build().unwrap();
        let mut candidate = Placement::empty_for(&p);
        candidate.add(s, MachineId(0), 2);
        let mut current = Placement::empty_for(&p);
        current.add(s, MachineId(1), 2);
        let stable = stabilize_placement(&p, &candidate, &current);
        // cannot rename across SKUs even though overlap would like to
        assert_eq!(stable.count(s, MachineId(0)), 2);
    }

    #[test]
    fn identity_when_current_equals_candidate() {
        let p = problem();
        let mut placement = Placement::empty_for(&p);
        placement.add(ServiceId(0), MachineId(0), 2);
        placement.add(ServiceId(1), MachineId(0), 2);
        let stable = stabilize_placement(&p, &placement, &placement);
        assert_eq!(stable, placement);
    }
}
