//! Algorithm 2: computing the migration path.

use rasa_model::{
    ContainerAssignment, ContainerId, MachineId, Placement, Problem, ResourceVec, ServiceId,
};
use std::collections::VecDeque;

/// Options for [`plan_migration`].
#[derive(Clone, Copy, Debug)]
pub struct MigrateConfig {
    /// Fraction of each service's containers that must stay alive at every
    /// step (the paper relaxes SLAs to 75% during reallocation). The floor
    /// is `⌊fraction · d_s⌋`, so single-replica services can still migrate.
    pub min_alive_fraction: f64,
    /// Safety valve on planner iterations.
    pub max_steps: usize,
}

impl Default for MigrateConfig {
    fn default() -> Self {
        MigrateConfig {
            min_alive_fraction: 0.75,
            max_steps: 10_000,
        }
    }
}

/// One step of the migration path. All `deletes` execute (in parallel)
/// first; once they complete, all `creates` execute (in parallel). This is
/// the paper's pair of command sets `l_delete`, `l_create` per iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct MigrationStep {
    /// Containers to delete, with the machine they currently occupy.
    pub deletes: Vec<(ContainerId, MachineId)>,
    /// Containers to (re)create, with their destination machine.
    pub creates: Vec<(ContainerId, MachineId)>,
}

/// A full migration plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MigrationPlan {
    /// Steps in execution order.
    pub steps: Vec<MigrationStep>,
}

impl MigrationPlan {
    /// Total containers moved (deleted and recreated elsewhere).
    pub fn total_moves(&self) -> usize {
        self.steps.iter().map(|s| s.creates.len()).sum()
    }

    /// `true` when nothing needs to move.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Why planning failed.
#[derive(Clone, Debug, PartialEq)]
pub enum MigrateError {
    /// Target places a different number of containers for a service than
    /// currently exist — reconcile (completion pass) before migrating.
    CountMismatch {
        /// The inconsistent service.
        service: ServiceId,
        /// Containers currently alive.
        current: u32,
        /// Containers in the target mapping.
        target: u32,
    },
    /// The planner could not make progress (SLA floor and resource
    /// constraints deadlock — e.g. a circular swap with no slack anywhere).
    Stuck {
        /// Containers still waiting to move when progress stopped.
        remaining: usize,
    },
    /// A planner bookkeeping invariant failed. This indicates a bug, but it
    /// is surfaced as an error instead of a panic so one bad subproblem
    /// cannot abort an entire optimization run.
    Internal(String),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::CountMismatch {
                service,
                current,
                target,
            } => write!(
                f,
                "service {service}: target places {target} containers but {current} are alive"
            ),
            MigrateError::Stuck { remaining } => {
                write!(
                    f,
                    "migration deadlocked with {remaining} containers left to move"
                )
            }
            MigrateError::Internal(msg) => write!(f, "planner invariant failed: {msg}"),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<MigrateError> for rasa_model::RasaError {
    fn from(e: MigrateError) -> Self {
        rasa_model::RasaError::Migration(e.to_string())
    }
}

/// Compute a migration path from the running assignment `from` to the
/// optimizer's `target` mapping (Algorithm 2).
pub fn plan_migration(
    problem: &Problem,
    from: &ContainerAssignment,
    target: &Placement,
    config: &MigrateConfig,
) -> Result<MigrationPlan, MigrateError> {
    let num_services = problem.num_services();
    // sanity: per-service totals must match
    for s in problem.services.iter().map(|s| s.id) {
        let current = from.alive_count(s);
        let tgt = target.placed_count(s);
        if current != tgt {
            return Err(MigrateError::CountMismatch {
                service: s,
                current,
                target: tgt,
            });
        }
    }

    // --- diff: decide keepers, migrations, deficits ---
    let mut state = from.clone();
    // containers that must leave their machine, per machine, FIFO
    let mut to_migrate: Vec<Vec<ContainerId>> = vec![Vec::new(); problem.num_machines()];
    // creates still owed per machine: (machine) -> list of (service, count)
    let mut deficit: Vec<Vec<(ServiceId, u32)>> = vec![Vec::new(); problem.num_machines()];
    let mut total_pending = 0usize;
    for svc in &problem.services {
        let s = svc.id;
        // per machine current/target counts
        let mut current_per_m: std::collections::BTreeMap<MachineId, Vec<ContainerId>> =
            Default::default();
        for r in 0..svc.replicas {
            let c = ContainerId::new(s, r);
            if let Some(m) = from.machine_of(c) {
                current_per_m.entry(m).or_default().push(c);
            }
        }
        for (m, containers) in &current_per_m {
            let tgt = target.count(s, *m);
            if containers.len() as u32 > tgt {
                for &c in &containers[tgt as usize..] {
                    to_migrate[m.idx()].push(c);
                    total_pending += 1;
                }
            }
        }
        for (m, tgt) in target.machines_of(s) {
            let cur = current_per_m.get(&m).map_or(0, |v| v.len() as u32);
            if tgt > cur {
                deficit[m.idx()].push((s, tgt - cur));
            }
        }
    }

    if total_pending == 0 {
        return Ok(MigrationPlan::default());
    }

    // --- running state ---
    let start_placement = state.to_placement();
    let mut free: Vec<ResourceVec> = {
        let usage = start_placement.machine_usage(problem);
        problem
            .machines
            .iter()
            .zip(usage)
            .map(|(m, u)| m.capacity - u)
            .collect()
    };
    // Per-rule per-machine occupancy of every anti-affinity rule, maintained
    // as commands are selected: even when both endpoints satisfy a rule, a
    // create scheduled before the outgoing rule-member's delete would push
    // the *intermediate* state past the cap, so creates are gated on the
    // occupancy at that point in the plan.
    let mut aa_used: Vec<Vec<u32>> = problem
        .anti_affinity
        .iter()
        .map(|rule| {
            (0..problem.num_machines())
                .map(|mi| {
                    rule.services
                        .iter()
                        .map(|&s| start_placement.count(s, MachineId(mi as u32)))
                        .sum()
                })
                .collect()
        })
        .collect();
    let rules_of: Vec<Vec<usize>> = (0..num_services)
        .map(|si| {
            problem
                .anti_affinity
                .iter()
                .enumerate()
                .filter(|(_, r)| r.services.contains(&ServiceId(si as u32)))
                .map(|(k, _)| k)
                .collect()
        })
        .collect();
    let mut alive: Vec<u32> = (0..num_services)
        .map(|s| state.alive_count(ServiceId(s as u32)))
        .collect();
    let min_alive: Vec<u32> = problem
        .services
        .iter()
        .map(|s| (config.min_alive_fraction * f64::from(s.replicas)).floor() as u32)
        .collect();
    // deleted-but-not-recreated replicas per service (drives offline ratio)
    let mut offline_pool: Vec<VecDeque<ContainerId>> = vec![VecDeque::new(); num_services];
    let offline_ratio = |pool: &[VecDeque<ContainerId>], s: usize, d: u32| -> f64 {
        if d == 0 {
            0.0
        } else {
            pool[s].len() as f64 / f64::from(d)
        }
    };

    let mut plan = MigrationPlan::default();
    for _ in 0..config.max_steps {
        // --- SelectDelete: one per machine. The commands in the batch run
        // in parallel, so the SLA guard must account for deletes already
        // chosen for *other* machines in this same batch — counters update
        // as each command is selected. ---
        let mut deletes: Vec<(ContainerId, MachineId)> = Vec::new();
        for mi in 0..problem.num_machines() {
            // candidates on this machine, lowest offline ratio first
            let Some(best) = to_migrate[mi]
                .iter()
                .filter(|c| alive[c.service.idx()] > min_alive[c.service.idx()])
                .min_by(|a, b| {
                    let ra = offline_ratio(
                        &offline_pool,
                        a.service.idx(),
                        problem.services[a.service.idx()].replicas,
                    );
                    let rb = offline_ratio(
                        &offline_pool,
                        b.service.idx(),
                        problem.services[b.service.idx()].replicas,
                    );
                    // total_cmp: offline ratios are finite by construction,
                    // but a NaN slipping in must not abort the whole run
                    ra.total_cmp(&rb).then(a.cmp(b))
                })
                .copied()
            else {
                continue;
            };
            deletes.push((best, MachineId(mi as u32)));
            let si = best.service.idx();
            state.unassign(best);
            alive[si] -= 1;
            free[mi] += problem.services[si].demand;
            for &k in &rules_of[si] {
                aa_used[k][mi] -= 1;
            }
            offline_pool[si].push_back(best);
            let Some(pos) = to_migrate[mi].iter().position(|&x| x == best) else {
                return Err(MigrateError::Internal(format!(
                    "deleted container {best:?} was not queued on machine {mi}"
                )));
            };
            to_migrate[mi].remove(pos);
        }

        // --- SelectCreate: one per machine ---
        let mut creates: Vec<(ContainerId, MachineId)> = Vec::new();
        for mi in 0..problem.num_machines() {
            // services owed here with offline replicas available and fitting
            let candidate = deficit[mi]
                .iter()
                .enumerate()
                .filter(|(_, (s, count))| {
                    *count > 0
                        && !offline_pool[s.idx()].is_empty()
                        && problem.services[s.idx()]
                            .demand
                            .fits_within(&free[mi], 1e-6)
                        && rules_of[s.idx()]
                            .iter()
                            .all(|&k| aa_used[k][mi] < problem.anti_affinity[k].max_per_machine)
                })
                .max_by(|(_, (sa, _)), (_, (sb, _))| {
                    let ra =
                        offline_ratio(&offline_pool, sa.idx(), problem.services[sa.idx()].replicas);
                    let rb =
                        offline_ratio(&offline_pool, sb.idx(), problem.services[sb.idx()].replicas);
                    ra.total_cmp(&rb).then(sb.cmp(sa))
                })
                .map(|(idx, (s, _))| (idx, *s));
            let Some((didx, s)) = candidate else { continue };
            let Some(c) = offline_pool[s.idx()].pop_front() else {
                return Err(MigrateError::Internal(format!(
                    "create selected for service {s} with an empty offline pool"
                )));
            };
            creates.push((c, MachineId(mi as u32)));
            deficit[mi][didx].1 -= 1;
            state.assign(c, MachineId(mi as u32));
            alive[s.idx()] += 1;
            free[mi] -= problem.services[s.idx()].demand;
            for &k in &rules_of[s.idx()] {
                aa_used[k][mi] += 1;
            }
            total_pending -= 1;
        }

        if deletes.is_empty() && creates.is_empty() {
            return Err(MigrateError::Stuck {
                remaining: total_pending,
            });
        }
        plan.steps.push(MigrationStep { deletes, creates });
        if total_pending == 0 && offline_pool.iter().all(VecDeque::is_empty) {
            return Ok(plan);
        }
    }
    Err(MigrateError::Stuck {
        remaining: total_pending,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{FeatureMask, ProblemBuilder};

    fn problem(replicas: u32, machines: usize, cap: f64) -> Problem {
        let mut b = ProblemBuilder::new();
        b.add_service("svc", replicas, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(machines, ResourceVec::cpu_mem(cap, cap), FeatureMask::EMPTY);
        b.build().unwrap()
    }

    #[test]
    fn no_op_migration_is_empty() {
        let p = problem(4, 2, 8.0);
        let mut target = Placement::empty_for(&p);
        target.add(ServiceId(0), MachineId(0), 2);
        target.add(ServiceId(0), MachineId(1), 2);
        let from = ContainerAssignment::materialize(&p, &target);
        let plan = plan_migration(&p, &from, &target, &MigrateConfig::default()).unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn simple_move_generates_delete_then_create() {
        let p = problem(4, 2, 8.0);
        let mut start = Placement::empty_for(&p);
        start.add(ServiceId(0), MachineId(0), 4);
        let from = ContainerAssignment::materialize(&p, &start);
        let mut target = Placement::empty_for(&p);
        target.add(ServiceId(0), MachineId(0), 2);
        target.add(ServiceId(0), MachineId(1), 2);
        let plan = plan_migration(&p, &from, &target, &MigrateConfig::default()).unwrap();
        assert_eq!(plan.total_moves(), 2);
        // SLA floor is 3 for d=4 @ 0.75 → at most one offline at a time →
        // each container moves in its own step
        assert_eq!(plan.steps.len(), 2);
        for step in &plan.steps {
            assert!(step.deletes.len() <= 1);
        }
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let p = problem(4, 2, 8.0);
        let mut start = Placement::empty_for(&p);
        start.add(ServiceId(0), MachineId(0), 4);
        let from = ContainerAssignment::materialize(&p, &start);
        let mut target = Placement::empty_for(&p);
        target.add(ServiceId(0), MachineId(1), 3); // one short
        let err = plan_migration(&p, &from, &target, &MigrateConfig::default()).unwrap_err();
        assert_eq!(
            err,
            MigrateError::CountMismatch {
                service: ServiceId(0),
                current: 4,
                target: 3
            }
        );
    }

    #[test]
    fn single_replica_service_can_migrate_with_floor_semantics() {
        let p = problem(1, 2, 8.0);
        let mut start = Placement::empty_for(&p);
        start.add(ServiceId(0), MachineId(0), 1);
        let from = ContainerAssignment::materialize(&p, &start);
        let mut target = Placement::empty_for(&p);
        target.add(ServiceId(0), MachineId(1), 1);
        let plan = plan_migration(&p, &from, &target, &MigrateConfig::default()).unwrap();
        assert_eq!(plan.total_moves(), 1);
    }

    #[test]
    fn resource_swap_requires_freeing_first() {
        // two fat services swap machines; each machine only fits one at a time
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(4.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(4.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 64.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let mut start = Placement::empty_for(&p);
        start.add(s0, MachineId(0), 2);
        start.add(s1, MachineId(1), 2);
        let from = ContainerAssignment::materialize(&p, &start);
        let mut target = Placement::empty_for(&p);
        // swap: one of each on both machines
        target.add(s0, MachineId(0), 1);
        target.add(s0, MachineId(1), 1);
        target.add(s1, MachineId(0), 1);
        target.add(s1, MachineId(1), 1);
        let plan = plan_migration(&p, &from, &target, &MigrateConfig::default()).unwrap();
        assert_eq!(plan.total_moves(), 2);
        // replay to ensure correctness (full invariants checked in verify.rs tests)
        assert!(crate::verify::replay_plan(&p, &from, &target, &plan, 0.75).is_ok());
    }

    #[test]
    fn impossible_swap_reports_stuck() {
        // d_s = 1 services completely filling both machines: deleting either
        // is allowed (floor 0), but if fraction is 1.0 nothing may go offline
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 1, ResourceVec::cpu_mem(8.0, 1.0));
        let s1 = b.add_service("b", 1, ResourceVec::cpu_mem(8.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 64.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let mut start = Placement::empty_for(&p);
        start.add(s0, MachineId(0), 1);
        start.add(s1, MachineId(1), 1);
        let from = ContainerAssignment::materialize(&p, &start);
        let mut target = Placement::empty_for(&p);
        target.add(s0, MachineId(1), 1);
        target.add(s1, MachineId(0), 1);
        let strict = MigrateConfig {
            min_alive_fraction: 1.0,
            ..Default::default()
        };
        let err = plan_migration(&p, &from, &target, &strict).unwrap_err();
        assert!(matches!(err, MigrateError::Stuck { remaining: 2 }));
        // with the paper's 75% relaxation the swap succeeds
        let plan = plan_migration(&p, &from, &target, &MigrateConfig::default()).unwrap();
        assert_eq!(plan.total_moves(), 2);
    }

    #[test]
    fn creates_never_transit_through_anti_affinity_violations() {
        // m0 starts with rule members {b, c} at the cap (2) plus an
        // unconstrained z; the target keeps b, evicts z and c, and brings a
        // in. A planner that gates creates on resources alone deletes z
        // first (lowest service id wins the tie-break) and creates a onto
        // m0 in the same step — three rule members on one machine, a
        // transient violation between two feasible endpoints.
        let mut b = ProblemBuilder::new();
        let z = b.add_service("z", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let a = b.add_service("a", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let sb = b.add_service("b", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let sc = b.add_service("c", 1, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_anti_affinity(vec![a, sb, sc], 2);
        let p = b.build().unwrap();

        let mut start = Placement::empty_for(&p);
        start.add(z, MachineId(0), 1);
        start.add(sb, MachineId(0), 1);
        start.add(sc, MachineId(0), 1);
        start.add(a, MachineId(1), 1);
        let from = ContainerAssignment::materialize(&p, &start);
        let mut target = Placement::empty_for(&p);
        target.add(a, MachineId(0), 1);
        target.add(sb, MachineId(0), 1);
        target.add(sc, MachineId(1), 1);
        target.add(z, MachineId(1), 1);

        let plan = plan_migration(&p, &from, &target, &MigrateConfig::default()).unwrap();
        // replay the plan and audit the intermediate state after every step
        let mut state = from.clone();
        for step in &plan.steps {
            for &(c, _) in &step.deletes {
                state.unassign(c);
            }
            for &(c, m) in &step.creates {
                state.assign(c, m);
            }
            let violations = rasa_model::validate(&p, &state.to_placement(), false);
            assert!(
                violations.is_empty(),
                "intermediate state violates constraints: {violations:?}"
            );
        }
        assert_eq!(state.to_placement(), target);
    }

    #[test]
    fn parallel_deletes_across_machines_respect_the_shared_sla_floor() {
        // Regression: one service spread over many machines — selecting one
        // delete per machine in the same batch must not jointly breach the
        // alive floor (floor(0.75·3) = 2 → at most one offline at a time).
        let p = problem(3, 3, 8.0);
        let mut start = Placement::empty_for(&p);
        for m in 0..3 {
            start.add(ServiceId(0), MachineId(m), 1);
        }
        let from = ContainerAssignment::materialize(&p, &start);
        let mut target = Placement::empty_for(&p);
        target.add(ServiceId(0), MachineId(0), 3);
        let plan = plan_migration(&p, &from, &target, &MigrateConfig::default()).unwrap();
        for step in &plan.steps {
            assert!(
                step.deletes.len() <= 1,
                "batch of {} deletes would breach the floor",
                step.deletes.len()
            );
        }
        assert!(crate::verify::replay_plan(&p, &from, &target, &plan, 0.75).is_ok());
    }

    #[test]
    fn sla_floor_limits_parallel_offline_containers() {
        // 8 replicas moving across machines: floor(0.75·8) = 6 alive → at
        // most 2 offline at any point
        let p = problem(8, 4, 8.0);
        let mut start = Placement::empty_for(&p);
        start.add(ServiceId(0), MachineId(0), 8);
        let from = ContainerAssignment::materialize(&p, &start);
        let mut target = Placement::empty_for(&p);
        for m in 0..4 {
            target.add(ServiceId(0), MachineId(m), 2);
        }
        let plan = plan_migration(&p, &from, &target, &MigrateConfig::default()).unwrap();
        // verify the alive floor holds through replay
        assert!(crate::verify::replay_plan(&p, &from, &target, &plan, 0.75).is_ok());
    }
}
