#![warn(missing_docs)]
// the planner is controller hot-path code: invariants surface as
// `MigrateError::Internal` or `expect` with an invariant message, never
// as a bare unwrap
#![warn(clippy::unwrap_used)]

//! # rasa-migrate
//!
//! The paper's **migration path** algorithm (Section IV-E, Algorithm 2):
//! given the current container assignment and the optimizer's new mapping,
//! compute an executable sequence of delete/create command sets that
//!
//! * keeps at least 75% of each service's containers alive at every moment
//!   (the temporarily-relaxed SLA), and
//! * never exceeds any machine's resource capacity.
//!
//! Sets execute sequentially; commands inside one set run in parallel on
//! different machines. Container choice follows the paper's *offline
//! ratio* heuristics: `SelectDelete` deletes from the service with the
//! lowest offline ratio, `SelectCreate` recreates the service with the
//! highest.
//!
//! The [`verify`] module replays a plan step by step and checks both
//! invariants — it is used in tests and by the simulator's executor.

pub mod planner;
pub mod stabilize;
pub mod verify;

pub use planner::{plan_migration, MigrateConfig, MigrateError, MigrationPlan, MigrationStep};
pub use stabilize::stabilize_placement;
pub use verify::{replay_plan, ReplayError};
