//! Replay a migration plan step by step, checking the relaxed-SLA and
//! resource invariants the paper requires during reallocation.

use crate::planner::MigrationPlan;
use rasa_model::{ContainerAssignment, Placement, Problem, ResourceVec};

/// A violated invariant found during replay.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayError {
    /// A delete targeted a container that is not on the stated machine.
    BadDelete(String),
    /// A create targeted an occupied replica slot or mismatched machine.
    BadCreate(String),
    /// A service dropped below the alive floor after some phase.
    SlaViolated {
        /// Step index.
        step: usize,
        /// Human-readable description.
        detail: String,
    },
    /// A machine exceeded capacity after a create phase.
    ResourceViolated {
        /// Step index.
        step: usize,
        /// Human-readable description.
        detail: String,
    },
    /// The final state does not match the target mapping.
    WrongFinalState,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::BadDelete(d) => write!(f, "bad delete: {d}"),
            ReplayError::BadCreate(d) => write!(f, "bad create: {d}"),
            ReplayError::SlaViolated { step, detail } => {
                write!(f, "SLA violated at step {step}: {detail}")
            }
            ReplayError::ResourceViolated { step, detail } => {
                write!(f, "resources violated at step {step}: {detail}")
            }
            ReplayError::WrongFinalState => write!(f, "plan does not reach the target mapping"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Execute `plan` from `from`, verifying after every delete phase and every
/// create phase that (a) each service keeps at least
/// `⌊min_alive_fraction · d_s⌋` containers alive and (b) no machine exceeds
/// capacity. Finally checks the end state equals `target`.
pub fn replay_plan(
    problem: &Problem,
    from: &ContainerAssignment,
    target: &Placement,
    plan: &MigrationPlan,
    min_alive_fraction: f64,
) -> Result<(), ReplayError> {
    let mut state = from.clone();
    let min_alive: Vec<u32> = problem
        .services
        .iter()
        .map(|s| (min_alive_fraction * f64::from(s.replicas)).floor() as u32)
        .collect();

    let check_sla = |state: &ContainerAssignment, step: usize| -> Result<(), ReplayError> {
        for svc in &problem.services {
            let alive = state.alive_count(svc.id);
            if alive < min_alive[svc.id.idx()] {
                return Err(ReplayError::SlaViolated {
                    step,
                    detail: format!(
                        "{} alive {alive} < floor {}",
                        svc.id,
                        min_alive[svc.id.idx()]
                    ),
                });
            }
        }
        Ok(())
    };
    let check_resources = |state: &ContainerAssignment, step: usize| -> Result<(), ReplayError> {
        let usage = state.to_placement().machine_usage(problem);
        for (mi, used) in usage.iter().enumerate() {
            let cap: &ResourceVec = &problem.machines[mi].capacity;
            if !used.fits_within(cap, 1e-6) {
                return Err(ReplayError::ResourceViolated {
                    step,
                    detail: format!("machine m{mi}: used {used:?} > cap {cap:?}"),
                });
            }
        }
        Ok(())
    };

    check_resources(&state, 0)?;
    for (i, step) in plan.steps.iter().enumerate() {
        for &(c, m) in &step.deletes {
            if state.machine_of(c) != Some(m) {
                return Err(ReplayError::BadDelete(format!(
                    "container {c} is not on {m}"
                )));
            }
            state.unassign(c);
        }
        check_sla(&state, i)?;
        check_resources(&state, i)?;
        for &(c, m) in &step.creates {
            if state.machine_of(c).is_some() {
                return Err(ReplayError::BadCreate(format!(
                    "container {c} is already running"
                )));
            }
            state.assign(c, m);
        }
        check_sla(&state, i)?;
        check_resources(&state, i)?;
    }
    if &state.to_placement() != target {
        return Err(ReplayError::WrongFinalState);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_migration, MigrateConfig, MigrationStep};
    use rasa_model::{ContainerId, FeatureMask, MachineId, ProblemBuilder, ServiceId};

    fn setup() -> (Problem, ContainerAssignment, Placement) {
        let mut b = ProblemBuilder::new();
        b.add_service("svc", 4, rasa_model::ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(
            2,
            rasa_model::ResourceVec::cpu_mem(8.0, 8.0),
            FeatureMask::EMPTY,
        );
        let p = b.build().unwrap();
        let mut start = Placement::empty_for(&p);
        start.add(ServiceId(0), MachineId(0), 4);
        let from = ContainerAssignment::materialize(&p, &start);
        let mut target = Placement::empty_for(&p);
        target.add(ServiceId(0), MachineId(0), 2);
        target.add(ServiceId(0), MachineId(1), 2);
        (p, from, target)
    }

    #[test]
    fn planner_output_replays_cleanly() {
        let (p, from, target) = setup();
        let plan = plan_migration(&p, &from, &target, &MigrateConfig::default()).unwrap();
        assert_eq!(replay_plan(&p, &from, &target, &plan, 0.75), Ok(()));
    }

    #[test]
    fn detects_wrong_final_state() {
        let (p, from, target) = setup();
        let plan = MigrationPlan::default(); // does nothing
        assert_eq!(
            replay_plan(&p, &from, &target, &plan, 0.75),
            Err(ReplayError::WrongFinalState)
        );
    }

    #[test]
    fn detects_sla_violation() {
        let (p, from, target) = setup();
        // delete 3 of 4 containers at once → alive 1 < floor 3
        let plan = MigrationPlan {
            steps: vec![MigrationStep {
                deletes: (0..3)
                    .map(|r| (ContainerId::new(ServiceId(0), r), MachineId(0)))
                    .collect(),
                creates: vec![],
            }],
        };
        assert!(matches!(
            replay_plan(&p, &from, &target, &plan, 0.75),
            Err(ReplayError::SlaViolated { .. })
        ));
    }

    #[test]
    fn detects_bad_delete() {
        let (p, from, target) = setup();
        let plan = MigrationPlan {
            steps: vec![MigrationStep {
                deletes: vec![(ContainerId::new(ServiceId(0), 0), MachineId(1))], // wrong machine
                creates: vec![],
            }],
        };
        assert!(matches!(
            replay_plan(&p, &from, &target, &plan, 0.75),
            Err(ReplayError::BadDelete(_))
        ));
    }

    #[test]
    fn detects_resource_violation() {
        // moving a container onto a full machine without freeing
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, rasa_model::ResourceVec::cpu_mem(4.0, 1.0));
        b.add_machine(
            rasa_model::ResourceVec::cpu_mem(8.0, 64.0),
            FeatureMask::EMPTY,
        );
        b.add_machine(
            rasa_model::ResourceVec::cpu_mem(4.0, 64.0),
            FeatureMask::EMPTY,
        );
        let p = b.build().unwrap();
        let mut start = Placement::empty_for(&p);
        start.add(s0, MachineId(0), 1);
        start.add(s0, MachineId(1), 1);
        let from = ContainerAssignment::materialize(&p, &start);
        let mut target = Placement::empty_for(&p);
        target.add(s0, MachineId(0), 2);
        // hand-written bad plan: create on m0 before deleting from m1?
        // m0 has capacity for 2 (8 cpu) so use m1 overload instead:
        let plan = MigrationPlan {
            steps: vec![MigrationStep {
                deletes: vec![(ContainerId::new(s0, 0), MachineId(0))],
                creates: vec![(ContainerId::new(s0, 0), MachineId(1))],
            }],
        };
        let mut bad_target = Placement::empty_for(&p);
        bad_target.add(s0, MachineId(1), 2);
        assert!(matches!(
            replay_plan(&p, &from, &bad_target, &plan, 0.5),
            Err(ReplayError::ResourceViolated { .. })
        ));
        let _ = target;
    }

    #[test]
    fn detects_create_of_running_container() {
        let (p, from, target) = setup();
        let plan = MigrationPlan {
            steps: vec![MigrationStep {
                deletes: vec![],
                creates: vec![(ContainerId::new(ServiceId(0), 0), MachineId(1))],
            }],
        };
        assert!(matches!(
            replay_plan(&p, &from, &target, &plan, 0.75),
            Err(ReplayError::BadCreate(_))
        ));
    }
}
