//! The MLP-BASED ablation of Fig 8: mean-pool node features (discarding
//! graph topology entirely) and classify with a two-layer perceptron.

use crate::adam::Adam;
use crate::graph_input::GraphInput;
use crate::matrix::Matrix;
use crate::{cross_entropy, softmax};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input feature dimension (mean-pooled node features).
    pub input_dim: usize,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            input_dim: 2,
            hidden_dim: 16,
            num_classes: 2,
        }
    }
}

/// A two-layer perceptron over mean-pooled graph features.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    /// Architecture.
    pub config: MlpConfig,
    w1: Matrix,
    b1: Vec<f64>,
    w2: Matrix,
    b2: Vec<f64>,
}

impl Mlp {
    /// Random (Xavier) initialization.
    pub fn new<R: Rng>(config: MlpConfig, rng: &mut R) -> Self {
        Mlp {
            config,
            w1: Matrix::xavier(config.input_dim, config.hidden_dim, rng),
            b1: vec![0.0; config.hidden_dim],
            w2: Matrix::xavier(config.hidden_dim, config.num_classes, rng),
            b2: vec![0.0; config.num_classes],
        }
    }

    /// Mean-pooled input vector for a graph (this is all the MLP sees —
    /// the whole point of the Fig 8 ablation).
    pub fn pool(g: &GraphInput) -> Vec<f64> {
        g.features.col_means()
    }

    fn forward(&self, input: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let x = Matrix {
            rows: 1,
            cols: input.len(),
            data: input.to_vec(),
        };
        let z1 = x.matmul(&self.w1).add_row_bias(&self.b1);
        let h1 = z1.map(|v| v.max(0.0));
        let logits = h1.matmul(&self.w2).add_row_bias(&self.b2);
        (z1.data, logits.data)
    }

    /// Class logits for a graph.
    pub fn logits(&self, g: &GraphInput) -> Vec<f64> {
        self.forward(&Self::pool(g)).1
    }

    /// Most likely class index.
    pub fn predict(&self, g: &GraphInput) -> usize {
        let l = self.logits(g);
        l.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }

    /// Cross-entropy loss on one example.
    pub fn loss(&self, g: &GraphInput, label: usize) -> f64 {
        cross_entropy(&softmax(&self.logits(g)), label)
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.w1.data.len() + self.b1.len() + self.w2.data.len() + self.b2.len()
    }

    fn pack(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        out.extend(&self.w1.data);
        out.extend(&self.b1);
        out.extend(&self.w2.data);
        out.extend(&self.b2);
        out
    }

    fn unpack(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.num_params());
        let mut off = 0;
        let mut take = |dst: &mut [f64]| {
            dst.copy_from_slice(&flat[off..off + dst.len()]);
            off += dst.len();
        };
        take(&mut self.w1.data);
        take(&mut self.b1);
        take(&mut self.w2.data);
        take(&mut self.b2);
    }

    /// Train full-batch with Adam; returns per-epoch mean loss.
    pub fn train(&mut self, data: &[(GraphInput, usize)], epochs: usize, lr: f64) -> Vec<f64> {
        assert!(!data.is_empty(), "empty training set");
        let mut opt = Adam::new(self.num_params(), lr);
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut grad_acc = vec![0.0; self.num_params()];
            let mut total_loss = 0.0;
            for (g, label) in data {
                let input = Self::pool(g);
                let (z1, logits) = self.forward(&input);
                let probs = softmax(&logits);
                total_loss += cross_entropy(&probs, *label);
                let mut dlogits = probs;
                dlogits[*label] -= 1.0;

                let h1: Vec<f64> = z1.iter().map(|&v| v.max(0.0)).collect();
                // dW2 = h1ᵀ dlogits; db2 = dlogits; dh1 = dlogits W2ᵀ
                let hdim = self.config.hidden_dim;
                let cdim = self.config.num_classes;
                let mut g_off = self.w1.data.len() + self.b1.len();
                for i in 0..hdim {
                    for c in 0..cdim {
                        grad_acc[g_off + i * cdim + c] += h1[i] * dlogits[c];
                    }
                }
                g_off += self.w2.data.len();
                for c in 0..cdim {
                    grad_acc[g_off + c] += dlogits[c];
                }
                let mut dh1 = vec![0.0; hdim];
                for (i, dh) in dh1.iter_mut().enumerate() {
                    for (c, &dl) in dlogits.iter().enumerate() {
                        *dh += dl * self.w2.get(i, c);
                    }
                }
                // dz1 = dh1 ⊙ relu'(z1); dW1 = xᵀ dz1; db1 = dz1
                let idim = self.config.input_dim;
                for i in 0..hdim {
                    let dz = if z1[i] > 0.0 { dh1[i] } else { 0.0 };
                    for f in 0..idim {
                        grad_acc[f * hdim + i] += input[f] * dz;
                    }
                    grad_acc[idim * hdim + i] += dz;
                }
            }
            for gv in grad_acc.iter_mut() {
                *gv /= data.len() as f64;
            }
            let mut params = self.pack();
            opt.step(&mut params, &grad_acc);
            self.unpack(&params);
            history.push(total_loss / data.len() as f64);
        }
        history
    }

    /// Fraction classified correctly.
    pub fn accuracy(&self, data: &[(GraphInput, usize)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.iter()
            .filter(|(g, label)| self.predict(g) == *label)
            .count() as f64
            / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph_with_mean(mean: f64) -> GraphInput {
        let feats = Matrix::from_rows(&[vec![mean, 1.0], vec![mean, 1.0]]);
        GraphInput::new(feats, &[(0, 1, 1.0)])
    }

    #[test]
    fn pooling_is_column_mean() {
        let feats = Matrix::from_rows(&[vec![2.0, 4.0], vec![4.0, 8.0]]);
        let g = GraphInput::new(feats, &[]);
        assert_eq!(Mlp::pool(&g), vec![3.0, 6.0]);
    }

    #[test]
    fn learns_feature_separable_task() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(MlpConfig::default(), &mut rng);
        let data: Vec<_> = (0..20)
            .map(|i| {
                let hi = i % 2 == 0;
                (graph_with_mean(if hi { 5.0 } else { 0.5 }), usize::from(hi))
            })
            .collect();
        mlp.train(&data, 400, 0.02);
        assert!(mlp.accuracy(&data) >= 0.95, "acc {}", mlp.accuracy(&data));
    }

    #[test]
    fn cannot_distinguish_topology_only_classes() {
        // Same features, different topology: MLP must be at chance.
        let feats = Matrix::from_rows(&vec![vec![1.0, 1.0]; 4]);
        let path = GraphInput::new(feats.clone(), &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let star = GraphInput::new(feats, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut mlp = Mlp::new(MlpConfig::default(), &mut rng);
        let data = vec![(path, 0usize), (star, 1usize)];
        mlp.train(&data, 200, 0.05);
        // identical pooled inputs → identical predictions → ≤ 50% accuracy
        assert!(mlp.accuracy(&data) <= 0.5 + 1e-9);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut mlp = Mlp::new(MlpConfig::default(), &mut rng);
        let data = vec![(graph_with_mean(3.0), 1), (graph_with_mean(0.1), 0)];
        let hist = mlp.train(&data, 100, 0.05);
        assert!(hist.last().unwrap() < &hist[0]);
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = StdRng::seed_from_u64(13);
        let mlp = Mlp::new(MlpConfig::default(), &mut rng);
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        for (a, b) in back.pack().iter().zip(mlp.pack()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
