//! The Adam optimizer over flat parameter vectors.

use serde::{Deserialize, Serialize};

/// Adam state for a parameter vector of fixed length.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// New optimizer for `len` parameters with learning rate `lr`.
    pub fn new(len: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
        }
    }

    /// Apply one update step in place: `params -= lr * m̂ / (√v̂ + ε)`.
    ///
    /// # Panics
    /// Panics if slice lengths disagree with the optimizer state.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = (x - 3)^2, grad = 2(x - 3)
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn handles_multiple_params() {
        // f = (a-1)^2 + (b+2)^2
        let mut p = vec![5.0, 5.0];
        let mut opt = Adam::new(2, 0.05);
        for _ in 0..2000 {
            let g = vec![2.0 * (p[0] - 1.0), 2.0 * (p[1] + 2.0)];
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 1.0).abs() < 1e-2);
        assert!((p[1] + 2.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut opt = Adam::new(2, 0.1);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0]);
    }
}
