//! Graph inputs for the GCN: node features plus the symmetric-normalized
//! adjacency `Â = D^{-1/2}(A + I)D^{-1/2}` of Kipf & Welling, which the
//! paper's classifier uses.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A feature graph ready for GCN consumption.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphInput {
    /// `N × F` node feature matrix (the paper's `F_k`, with `F = 2`:
    /// resource demand and container count per service).
    pub features: Matrix,
    /// `N × N` normalized adjacency `Â` (dense; subproblem graphs are
    /// small by construction).
    pub adjacency: Matrix,
}

impl GraphInput {
    /// Build from node features and a weighted undirected edge list.
    /// Edge weights contribute to `A`; self-loops of weight 1 are added
    /// before normalization.
    ///
    /// # Panics
    /// Panics if an edge endpoint is out of range.
    pub fn new(features: Matrix, edges: &[(usize, usize, f64)]) -> Self {
        let n = features.rows;
        let mut a = Matrix::zeros(n, n);
        for &(u, v, w) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            *a.get_mut(u, v) += w;
            *a.get_mut(v, u) += w;
        }
        for i in 0..n {
            *a.get_mut(i, i) += 1.0; // self-loop
        }
        // D^{-1/2} (A) D^{-1/2}
        let deg: Vec<f64> = (0..n).map(|i| a.row(i).iter().sum()).collect();
        let inv_sqrt: Vec<f64> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let adjacency = Matrix::from_fn(n, n, |r, c| a.get(r, c) * inv_sqrt[r] * inv_sqrt[c]);
        GraphInput {
            features,
            adjacency,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.features.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_is_symmetric_and_normalized() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let g = GraphInput::new(x, &[(0, 1, 2.0), (1, 2, 1.0)]);
        let a = &g.adjacency;
        for r in 0..3 {
            for c in 0..3 {
                assert!((a.get(r, c) - a.get(c, r)).abs() < 1e-12);
            }
        }
        // diagonal of an isolated-ish normalized adjacency is positive
        assert!(a.get(0, 0) > 0.0);
        // spectral sanity: entries bounded by 1 for non-negative weights
        for v in &a.data {
            assert!(*v >= 0.0 && *v <= 1.0 + 1e-9, "entry {v}");
        }
    }

    #[test]
    fn isolated_vertex_keeps_self_loop_only() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        let g = GraphInput::new(x, &[]);
        assert!((g.adjacency.get(0, 0) - 1.0).abs() < 1e-12);
        assert_eq!(g.adjacency.get(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let x = Matrix::zeros(2, 1);
        let _ = GraphInput::new(x, &[(0, 5, 1.0)]);
    }
}
