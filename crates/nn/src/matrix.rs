//! Dense row-major matrices with the operations a small GCN needs.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix, row-major.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `data[r * cols + c]`.
    pub data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Build from nested rows.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..bound))
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Add a row vector (bias) to every row.
    ///
    /// # Panics
    /// Panics if `bias.len() != cols`.
    pub fn add_row_bias(&self, bias: &[f64]) -> Matrix {
        assert_eq!(bias.len(), self.cols);
        let mut out = self.clone();
        for r in 0..out.rows {
            for (c, &b) in bias.iter().enumerate() {
                out.data[r * out.cols + c] += b;
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Column means; zero-row matrices yield zeros.
    pub fn col_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        self.col_sums()
            .into_iter()
            .map(|s| s / self.rows as f64)
            .collect()
    }

    /// Column maxima with the argmax row per column; zero-row matrices
    /// yield zeros with argmax 0.
    pub fn col_max_argmax(&self) -> (Vec<f64>, Vec<usize>) {
        if self.rows == 0 {
            return (vec![0.0; self.cols], vec![0; self.cols]);
        }
        let mut max = self.row(0).to_vec();
        let mut arg = vec![0usize; self.cols];
        for r in 1..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                if v > max[c] {
                    max[c] = v;
                    arg[c] = r;
                }
            }
        }
        (max, arg)
    }

    /// Frobenius norm (used in tests).
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[vec![4.0], vec![5.0], vec![6.0]]);
        let c = a.matmul(&b);
        assert_eq!((c.rows, c.cols), (1, 1));
        assert_eq!(c.get(0, 0), 32.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn bias_and_map() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]);
        let b = a.add_row_bias(&[10.0, 20.0]);
        assert_eq!(b.row(0), &[11.0, 18.0]);
        let r = b.map(|v| v.max(0.0));
        assert_eq!(r.row(0), &[11.0, 18.0]);
        let neg = a.map(|v| v.max(0.0));
        assert_eq!(neg.row(0), &[1.0, 0.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[vec![1.0, 5.0], vec![3.0, 2.0]]);
        assert_eq!(a.col_sums(), vec![4.0, 7.0]);
        assert_eq!(a.col_means(), vec![2.0, 3.5]);
        let (max, arg) = a.col_max_argmax();
        assert_eq!(max, vec![3.0, 5.0]);
        assert_eq!(arg, vec![1, 0]);
    }

    #[test]
    fn hadamard_is_elementwise() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.hadamard(&b).row(0), &[3.0, 8.0]);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier(20, 30, &mut rng);
        let bound = (6.0f64 / 50.0).sqrt();
        assert!(m.data.iter().all(|&v| v.abs() <= bound));
        assert!(m.norm() > 0.0);
    }

    #[test]
    fn empty_matrix_reductions() {
        let m = Matrix::zeros(0, 3);
        assert_eq!(m.col_means(), vec![0.0; 3]);
        let (max, arg) = m.col_max_argmax();
        assert_eq!(max, vec![0.0; 3]);
        assert_eq!(arg, vec![0; 3]);
    }
}
