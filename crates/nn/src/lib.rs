#![warn(missing_docs)]

//! # rasa-nn
//!
//! A minimal neural-network stack, built from scratch, sized for the RASA
//! paper's algorithm-selection classifier (Section IV-D):
//!
//! * [`Matrix`] — dense row-major matrices with the handful of ops a
//!   two-layer GCN needs;
//! * [`Gcn`] — the paper's classifier: two graph-convolution layers
//!   (symmetric-normalized adjacency with self-loops) with ReLU, a
//!   mean‖max graph readout, and a linear softmax head — with exact
//!   hand-derived backpropagation;
//! * [`Mlp`] — the MLP-BASED ablation of Fig 8, which mean-pools node
//!   features and ignores graph topology;
//! * [`Adam`] — the Adam optimizer driving both;
//! * cross-entropy loss and training loops for labelled graph datasets.
//!
//! This crate substitutes for the PyTorch-style GNN stack the paper's
//! authors used: the classifier is tiny (N×2 node features, two labels), so
//! a from-scratch implementation trains in milliseconds and removes the
//! "immature GNN support in Rust" reproduction gate entirely.

pub mod adam;
pub mod gcn;
pub mod graph_input;
pub mod matrix;
pub mod mlp;

pub use adam::Adam;
pub use gcn::{Gcn, GcnConfig};
pub use graph_input::GraphInput;
pub use matrix::Matrix;
pub use mlp::{Mlp, MlpConfig};

/// Numerically-stable softmax of a logit slice.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Cross-entropy loss of a softmax distribution against a class index.
pub fn cross_entropy(probs: &[f64], label: usize) -> f64 {
    -probs[label].max(1e-12).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[1001.0, 1002.0]);
        assert!((a[0] - b[0]).abs() < 1e-12);
        let huge = softmax(&[1e9, -1e9]);
        assert!(huge[0] > 0.999);
    }

    #[test]
    fn cross_entropy_penalizes_wrong_confidence() {
        let confident_right = cross_entropy(&[0.99, 0.01], 0);
        let confident_wrong = cross_entropy(&[0.99, 0.01], 1);
        assert!(confident_right < 0.02);
        assert!(confident_wrong > 4.0);
    }
}
