//! The paper's GCN classifier (Section IV-D): two graph-convolution layers
//! with ReLU, a mean‖max graph readout, and a linear softmax head.
//! Backpropagation is hand-derived for this fixed architecture and verified
//! against finite differences in the test suite.

use crate::adam::Adam;
use crate::graph_input::GraphInput;
use crate::matrix::Matrix;
use crate::{cross_entropy, softmax};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GcnConfig {
    /// Node feature dimension (the paper uses 2: resource demand, d_s).
    pub input_dim: usize,
    /// Hidden width of both GCN layers.
    pub hidden_dim: usize,
    /// Number of output classes (2: CG vs MIP).
    pub num_classes: usize,
}

impl Default for GcnConfig {
    fn default() -> Self {
        GcnConfig {
            input_dim: 2,
            hidden_dim: 16,
            num_classes: 2,
        }
    }
}

/// A two-layer GCN graph classifier.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Gcn {
    /// Architecture.
    pub config: GcnConfig,
    w1: Matrix,
    b1: Vec<f64>,
    w2: Matrix,
    b2: Vec<f64>,
    w3: Matrix,
    b3: Vec<f64>,
}

struct Cache {
    m1: Matrix,
    z1: Matrix,
    m2: Matrix,
    z2: Matrix,
    h2: Matrix,
    readout: Vec<f64>,
    max_arg: Vec<usize>,
    logits: Vec<f64>,
}

/// Flat gradients, same layout as [`Gcn::pack`].
struct Grads {
    w1: Matrix,
    b1: Vec<f64>,
    w2: Matrix,
    b2: Vec<f64>,
    w3: Matrix,
    b3: Vec<f64>,
}

impl Gcn {
    /// Random (Xavier) initialization.
    pub fn new<R: Rng>(config: GcnConfig, rng: &mut R) -> Self {
        Gcn {
            config,
            w1: Matrix::xavier(config.input_dim, config.hidden_dim, rng),
            b1: vec![0.0; config.hidden_dim],
            w2: Matrix::xavier(config.hidden_dim, config.hidden_dim, rng),
            b2: vec![0.0; config.hidden_dim],
            w3: Matrix::xavier(2 * config.hidden_dim, config.num_classes, rng),
            b3: vec![0.0; config.num_classes],
        }
    }

    fn forward_cached(&self, g: &GraphInput) -> Cache {
        let m1 = g.adjacency.matmul(&g.features);
        let z1 = m1.matmul(&self.w1).add_row_bias(&self.b1);
        let h1 = z1.map(|v| v.max(0.0));
        let m2 = g.adjacency.matmul(&h1);
        let z2 = m2.matmul(&self.w2).add_row_bias(&self.b2);
        let h2 = z2.map(|v| v.max(0.0));
        let mean = h2.col_means();
        let (maxv, max_arg) = h2.col_max_argmax();
        let readout: Vec<f64> = mean.into_iter().chain(maxv).collect();
        let r = Matrix {
            rows: 1,
            cols: readout.len(),
            data: readout.clone(),
        };
        let logits_m = r.matmul(&self.w3).add_row_bias(&self.b3);
        Cache {
            m1,
            z1,
            m2,
            z2,
            h2,
            readout,
            max_arg,
            logits: logits_m.data,
        }
    }

    /// Class logits for a graph.
    pub fn logits(&self, g: &GraphInput) -> Vec<f64> {
        self.forward_cached(g).logits
    }

    /// Class probabilities.
    pub fn predict_proba(&self, g: &GraphInput) -> Vec<f64> {
        softmax(&self.logits(g))
    }

    /// Most likely class index.
    pub fn predict(&self, g: &GraphInput) -> usize {
        let p = self.logits(g);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }

    /// Cross-entropy loss on one example.
    pub fn loss(&self, g: &GraphInput, label: usize) -> f64 {
        cross_entropy(&softmax(&self.logits(g)), label)
    }

    fn backward(&self, g: &GraphInput, cache: &Cache, label: usize) -> Grads {
        let h = self.config.hidden_dim;
        let n = g.num_nodes().max(1);
        let probs = softmax(&cache.logits);
        let mut dlogits = probs;
        dlogits[label] -= 1.0;

        // head
        let r = Matrix {
            rows: 1,
            cols: cache.readout.len(),
            data: cache.readout.clone(),
        };
        let dlog_m = Matrix {
            rows: 1,
            cols: dlogits.len(),
            data: dlogits.clone(),
        };
        let dw3 = r.transpose().matmul(&dlog_m);
        let db3 = dlogits.clone();
        let dr = dlog_m.matmul(&self.w3.transpose()); // 1 × 2H

        // readout → dH2
        let mut dh2 = Matrix::zeros(cache.h2.rows, h);
        for c in 0..h {
            let dmean = dr.get(0, c) / n as f64;
            for rr in 0..cache.h2.rows {
                *dh2.get_mut(rr, c) += dmean;
            }
            let dmax = dr.get(0, h + c);
            if cache.h2.rows > 0 {
                *dh2.get_mut(cache.max_arg[c], c) += dmax;
            }
        }

        // layer 2
        let relu2 = cache.z2.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let dz2 = dh2.hadamard(&relu2);
        let dw2 = cache.m2.transpose().matmul(&dz2);
        let db2 = dz2.col_sums();
        let dm2 = dz2.matmul(&self.w2.transpose());
        let dh1 = g.adjacency.matmul(&dm2); // Â symmetric

        // layer 1
        let relu1 = cache.z1.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let dz1 = dh1.hadamard(&relu1);
        let dw1 = cache.m1.transpose().matmul(&dz1);
        let db1 = dz1.col_sums();

        Grads {
            w1: dw1,
            b1: db1,
            w2: dw2,
            b2: db2,
            w3: dw3,
            b3: db3,
        }
    }

    /// Total number of parameters.
    pub fn num_params(&self) -> usize {
        self.w1.data.len()
            + self.b1.len()
            + self.w2.data.len()
            + self.b2.len()
            + self.w3.data.len()
            + self.b3.len()
    }

    /// Flatten parameters (layout: w1, b1, w2, b2, w3, b3).
    pub fn pack(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        out.extend(&self.w1.data);
        out.extend(&self.b1);
        out.extend(&self.w2.data);
        out.extend(&self.b2);
        out.extend(&self.w3.data);
        out.extend(&self.b3);
        out
    }

    /// Load parameters from a flat vector (inverse of [`pack`](Self::pack)).
    ///
    /// # Panics
    /// Panics if the length disagrees.
    pub fn unpack(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.num_params());
        let mut off = 0;
        let mut take = |dst: &mut [f64]| {
            dst.copy_from_slice(&flat[off..off + dst.len()]);
            off += dst.len();
        };
        take(&mut self.w1.data);
        take(&mut self.b1);
        take(&mut self.w2.data);
        take(&mut self.b2);
        take(&mut self.w3.data);
        take(&mut self.b3);
    }

    fn pack_grads(&self, g: &Grads) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        out.extend(&g.w1.data);
        out.extend(&g.b1);
        out.extend(&g.w2.data);
        out.extend(&g.b2);
        out.extend(&g.w3.data);
        out.extend(&g.b3);
        out
    }

    /// Train full-batch with Adam for `epochs`; returns the loss per epoch.
    pub fn train(&mut self, data: &[(GraphInput, usize)], epochs: usize, lr: f64) -> Vec<f64> {
        assert!(!data.is_empty(), "empty training set");
        let mut opt = Adam::new(self.num_params(), lr);
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut total_loss = 0.0;
            let mut grad_acc = vec![0.0; self.num_params()];
            for (g, label) in data {
                let cache = self.forward_cached(g);
                total_loss += cross_entropy(&softmax(&cache.logits), *label);
                let grads = self.backward(g, &cache, *label);
                for (acc, gv) in grad_acc.iter_mut().zip(self.pack_grads(&grads)) {
                    *acc += gv / data.len() as f64;
                }
            }
            let mut params = self.pack();
            opt.step(&mut params, &grad_acc);
            self.unpack(&params);
            history.push(total_loss / data.len() as f64);
        }
        history
    }

    /// Fraction of examples classified correctly.
    pub fn accuracy(&self, data: &[(GraphInput, usize)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .iter()
            .filter(|(g, label)| self.predict(g) == *label)
            .count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star_graph(center_weighty: bool) -> GraphInput {
        // 5-node star; features distinguish the two classes
        let base = if center_weighty { 10.0 } else { 1.0 };
        let feats = Matrix::from_rows(&[
            vec![base, 4.0],
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![1.0, 2.0],
        ]);
        GraphInput::new(feats, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)])
    }

    #[test]
    fn forward_produces_finite_logits() {
        let mut rng = StdRng::seed_from_u64(0);
        let gcn = Gcn::new(GcnConfig::default(), &mut rng);
        let logits = gcn.logits(&star_graph(true));
        assert_eq!(logits.len(), 2);
        assert!(logits.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn pack_unpack_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let gcn = Gcn::new(GcnConfig::default(), &mut rng);
        let flat = gcn.pack();
        let mut other = Gcn::new(GcnConfig::default(), &mut rng);
        other.unpack(&flat);
        assert_eq!(other.pack(), flat);
        assert_eq!(flat.len(), gcn.num_params());
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = GcnConfig {
            input_dim: 2,
            hidden_dim: 4,
            num_classes: 2,
        };
        let mut gcn = Gcn::new(cfg, &mut rng);
        let g = star_graph(true);
        let label = 1usize;

        let cache = gcn.forward_cached(&g);
        let grads = gcn.backward(&g, &cache, label);
        let analytic = gcn.pack_grads(&grads);

        let eps = 1e-6;
        let params = gcn.pack();
        let mut worst = 0.0f64;
        for i in (0..params.len()).step_by(3) {
            let mut plus = params.clone();
            plus[i] += eps;
            gcn.unpack(&plus);
            let lp = gcn.loss(&g, label);
            let mut minus = params.clone();
            minus[i] -= eps;
            gcn.unpack(&minus);
            let lm = gcn.loss(&g, label);
            let numeric = (lp - lm) / (2.0 * eps);
            let diff = (numeric - analytic[i]).abs();
            let scale = numeric.abs().max(analytic[i].abs()).max(1e-6);
            worst = worst.max(diff / scale);
        }
        gcn.unpack(&params);
        // max-readout kinks can make isolated coords off; overall must be tight
        assert!(worst < 1e-4, "worst relative gradient error {worst}");
    }

    #[test]
    fn learns_a_separable_graph_task() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gcn = Gcn::new(
            GcnConfig {
                input_dim: 2,
                hidden_dim: 8,
                num_classes: 2,
            },
            &mut rng,
        );
        let data: Vec<(GraphInput, usize)> = (0..20)
            .map(|i| {
                let heavy = i % 2 == 0;
                (star_graph(heavy), usize::from(heavy))
            })
            .collect();
        gcn.train(&data, 300, 0.02);
        assert!(
            gcn.accuracy(&data) >= 0.95,
            "accuracy {}",
            gcn.accuracy(&data)
        );
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut gcn = Gcn::new(GcnConfig::default(), &mut rng);
        let data = vec![(star_graph(true), 1), (star_graph(false), 0)];
        let history = gcn.train(&data, 100, 0.05);
        assert!(history.last().unwrap() < &history[0]);
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = StdRng::seed_from_u64(11);
        let gcn = Gcn::new(GcnConfig::default(), &mut rng);
        let json = serde_json::to_string(&gcn).unwrap();
        let back: Gcn = serde_json::from_str(&json).unwrap();
        for (a, b) in back.pack().iter().zip(gcn.pack()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
