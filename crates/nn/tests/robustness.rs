//! Robustness tests: the classifiers must handle degenerate graphs
//! (single node, no edges, identical features) without NaNs or panics —
//! the partitioner does produce one- and two-service subproblems.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa_nn::{Gcn, GcnConfig, GraphInput, Matrix, Mlp, MlpConfig};

fn gcn() -> Gcn {
    let mut rng = StdRng::seed_from_u64(0);
    Gcn::new(GcnConfig::default(), &mut rng)
}

fn mlp() -> Mlp {
    let mut rng = StdRng::seed_from_u64(0);
    Mlp::new(MlpConfig::default(), &mut rng)
}

#[test]
fn single_node_graph() {
    let g = GraphInput::new(Matrix::from_rows(&[vec![1.0, 2.0]]), &[]);
    let logits = gcn().logits(&g);
    assert!(logits.iter().all(|l| l.is_finite()));
    let pred = gcn().predict(&g);
    assert!(pred < 2);
    assert!(mlp().logits(&g).iter().all(|l| l.is_finite()));
}

#[test]
fn edgeless_graph() {
    let feats = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 3.0], vec![0.5, 9.0]]);
    let g = GraphInput::new(feats, &[]);
    assert!(gcn().logits(&g).iter().all(|l| l.is_finite()));
}

#[test]
fn zero_features() {
    let feats = Matrix::zeros(4, 2);
    let g = GraphInput::new(feats, &[(0, 1, 1.0), (2, 3, 2.0)]);
    let logits = gcn().logits(&g);
    assert!(logits.iter().all(|l| l.is_finite()));
}

#[test]
fn huge_edge_weights_stay_finite() {
    let feats = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
    let g = GraphInput::new(feats, &[(0, 1, 1e12)]);
    // symmetric normalization divides by degree, so weights cancel
    assert!(gcn().logits(&g).iter().all(|l| l.is_finite()));
}

#[test]
fn training_on_degenerate_graphs_stays_finite() {
    let data = vec![
        (GraphInput::new(Matrix::from_rows(&[vec![1.0, 1.0]]), &[]), 0),
        (
            GraphInput::new(Matrix::from_rows(&[vec![5.0, 5.0]]), &[]),
            1,
        ),
    ];
    let mut model = gcn();
    let history = model.train(&data, 50, 0.05);
    assert!(history.iter().all(|l| l.is_finite()));
    // tiny but learnable: features differ
    assert!(history.last().unwrap() <= &history[0]);
}

#[test]
fn predictions_are_deterministic() {
    let feats = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
    let g = GraphInput::new(feats, &[(0, 1, 1.5)]);
    let model = gcn();
    let first = model.predict_proba(&g);
    for _ in 0..3 {
        assert_eq!(model.predict_proba(&g), first);
    }
}
