//! Vertex partitions, their quality metrics, and the partition generators
//! used by the paper's loss-minimization balanced partitioning stage
//! (Section IV-B4).

use crate::csr::AffinityGraph;
use crate::traversal::multi_source_bfs_assignment;
use rand::seq::SliceRandom;
use rand::Rng;

/// A partition of `0..n` vertices into disjoint non-empty parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// `part_of[v]` is the index of `v`'s part.
    pub part_of: Vec<usize>,
    /// Number of parts.
    pub num_parts: usize,
}

impl Partition {
    /// Build from a part-assignment vector; re-densifies part indices so
    /// empty parts disappear.
    pub fn from_assignment(assignment: Vec<usize>) -> Self {
        let mut remap: std::collections::BTreeMap<usize, usize> = Default::default();
        let mut part_of = assignment;
        for p in part_of.iter_mut() {
            let next = remap.len();
            *p = *remap.entry(*p).or_insert(next);
        }
        let num_parts = remap.len();
        Partition { part_of, num_parts }
    }

    /// The trivial one-part partition of `n` vertices.
    pub fn single(n: usize) -> Self {
        Partition {
            part_of: vec![0; n],
            num_parts: if n == 0 { 0 } else { 1 },
        }
    }

    /// Vertices of each part, in index order.
    pub fn parts(&self) -> Vec<Vec<usize>> {
        let mut parts = vec![Vec::new(); self.num_parts];
        for (v, &p) in self.part_of.iter().enumerate() {
            parts[p].push(v);
        }
        parts
    }

    /// Sizes of each part.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &p in &self.part_of {
            sizes[p] += 1;
        }
        sizes
    }
}

/// Total weight of edges crossing between different parts — the *affinity
/// loss* the paper's stage-4 heuristic minimizes.
pub fn cut_weight(graph: &AffinityGraph, partition: &Partition) -> f64 {
    let mut cut = 0.0;
    for (a, b, w) in graph.edge_list() {
        if partition.part_of[a] != partition.part_of[b] {
            cut += w;
        }
    }
    cut
}

/// The paper's balance criterion: the largest part has at most
/// `ratio` × the smallest part's size (Section IV-B4 uses `ratio = 2.0`).
/// Partitions with a single part are trivially balanced.
pub fn is_balanced(partition: &Partition, ratio: f64) -> bool {
    let sizes = partition.sizes();
    if sizes.len() <= 1 {
        return true;
    }
    let max = *sizes.iter().max().unwrap() as f64;
    let min = *sizes.iter().min().unwrap() as f64;
    // All parts produced by our generators are non-empty; guard anyway.
    min > 0.0 && max <= ratio * min
}

/// Uniformly random assignment of vertices to `k` parts (the
/// RANDOM-PARTITION ablation of Fig 6 and the partitioning rule inside the
/// POP baseline).
pub fn random_partition<R: Rng>(n: usize, k: usize, rng: &mut R) -> Partition {
    assert!(k >= 1, "need at least one part");
    let assignment: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    Partition::from_assignment(assignment)
}

/// One candidate partition of the paper's stage-4 heuristic: sample `h`
/// seed vertices uniformly, run simultaneous BFS from all of them, and
/// assign each vertex to the seed that first reaches it (Section IV-B4,
/// steps i–iii). Vertices unreachable from every seed are distributed
/// round-robin over the parts so the result is a true partition.
pub fn bfs_seeded_partition<R: Rng>(graph: &AffinityGraph, h: usize, rng: &mut R) -> Partition {
    let n = graph.num_vertices();
    assert!(h >= 1 && h <= n, "need 1 <= h <= n seeds, got h={h} n={n}");
    let mut vertices: Vec<usize> = (0..n).collect();
    vertices.shuffle(rng);
    let seeds = &vertices[..h];
    let mut assignment = multi_source_bfs_assignment(graph, seeds);
    let mut spill = 0usize;
    for a in assignment.iter_mut() {
        if *a == usize::MAX {
            *a = spill % h;
            spill += 1;
        }
    }
    Partition::from_assignment(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cliques() -> AffinityGraph {
        // cliques {0,1,2} and {3,4,5} joined by one light edge
        AffinityGraph::from_edges(
            6,
            &[
                (0, 1, 5.0),
                (1, 2, 5.0),
                (0, 2, 5.0),
                (3, 4, 5.0),
                (4, 5, 5.0),
                (3, 5, 5.0),
                (2, 3, 0.1),
            ],
        )
    }

    #[test]
    fn from_assignment_densifies() {
        let p = Partition::from_assignment(vec![7, 7, 3, 7]);
        assert_eq!(p.num_parts, 2);
        assert_eq!(p.part_of, vec![0, 0, 1, 0]);
        assert_eq!(p.sizes(), vec![3, 1]);
        assert_eq!(p.parts(), vec![vec![0, 1, 3], vec![2]]);
    }

    #[test]
    fn cut_weight_counts_cross_edges_once() {
        let g = two_cliques();
        let p = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1]);
        assert!((cut_weight(&g, &p) - 0.1).abs() < 1e-12);
        let single = Partition::single(6);
        assert_eq!(cut_weight(&g, &single), 0.0);
    }

    #[test]
    fn balance_criterion() {
        let p = Partition::from_assignment(vec![0, 0, 0, 0, 1, 1]);
        assert!(is_balanced(&p, 2.0));
        let q = Partition::from_assignment(vec![0, 0, 0, 0, 0, 1]);
        assert!(!is_balanced(&q, 2.0));
        assert!(is_balanced(&Partition::single(9), 2.0));
    }

    #[test]
    fn random_partition_is_a_partition() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = random_partition(100, 4, &mut rng);
        assert_eq!(p.part_of.len(), 100);
        assert!(p.num_parts <= 4);
        assert_eq!(p.sizes().iter().sum::<usize>(), 100);
    }

    #[test]
    fn bfs_seeded_partition_respects_locality() {
        let g = two_cliques();
        let mut rng = StdRng::seed_from_u64(7);
        // With h=2 the heuristic should frequently find the clique split;
        // check that over several draws the best observed cut is the light edge.
        let best = (0..20)
            .map(|_| {
                let p = bfs_seeded_partition(&g, 2, &mut rng);
                cut_weight(&g, &p)
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            best <= 0.1 + 1e-12,
            "best cut {best} should isolate the cliques"
        );
    }

    #[test]
    fn bfs_seeded_partition_assigns_every_vertex() {
        // graph with isolated vertices: they spill round-robin
        let g = AffinityGraph::from_edges(5, &[(0, 1, 1.0)]);
        let mut rng = StdRng::seed_from_u64(3);
        let p = bfs_seeded_partition(&g, 2, &mut rng);
        assert_eq!(p.part_of.len(), 5);
        assert!(p.part_of.iter().all(|&x| x < p.num_parts));
    }

    #[test]
    #[should_panic(expected = "1 <= h <= n")]
    fn bfs_seeded_partition_rejects_too_many_seeds() {
        let g = AffinityGraph::from_edges(2, &[(0, 1, 1.0)]);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = bfs_seeded_partition(&g, 3, &mut rng);
    }
}
