//! A multilevel min-weight balanced graph partitioner.
//!
//! This is the repository's stand-in for **KaHIP** (the Fig 6 baseline):
//! the classic three-phase multilevel scheme that KaHIP, METIS and friends
//! share —
//!
//! 1. **Coarsening** by heavy-edge matching: repeatedly contract a maximal
//!    matching that prefers heavy edges, so high-affinity pairs merge early;
//! 2. **Initial partitioning** of the coarsest graph by greedy region
//!    growing;
//! 3. **Uncoarsening with refinement**: project the partition back level by
//!    level, running boundary Fiduccia–Mattheyses-style local search at each
//!    level to reduce the cut while keeping parts balanced.
//!
//! Quality is comparable in spirit (not in engineering) to KaHIP: it finds
//! near-min cuts on modular graphs and respects a hard balance constraint.

use crate::csr::AffinityGraph;
use crate::partition::Partition;
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`multilevel_partition`].
#[derive(Clone, Debug)]
pub struct MultilevelConfig {
    /// Number of parts `k`.
    pub num_parts: usize,
    /// Allowed imbalance ε: every part's vertex weight must stay at or below
    /// `(1 + ε) · ceil(n / k)`. KaHIP's default is 0.03; the paper's
    /// balance notion (largest ≤ 2 × smallest) is looser, so we default to
    /// a compatible 0.5.
    pub epsilon: f64,
    /// Stop coarsening when at most this many vertices remain.
    pub coarsest_size: usize,
    /// Refinement passes per level.
    pub refine_passes: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            num_parts: 2,
            epsilon: 0.5,
            coarsest_size: 64,
            refine_passes: 4,
        }
    }
}

impl MultilevelConfig {
    /// Config for `k` parts with defaults otherwise.
    pub fn with_parts(k: usize) -> Self {
        MultilevelConfig {
            num_parts: k,
            ..Default::default()
        }
    }
}

/// One level of the coarsening hierarchy.
struct Level {
    graph: AffinityGraph,
    /// Weight (number of original vertices) of each coarse vertex.
    vweight: Vec<usize>,
    /// Map from this level's vertices to the coarser level's vertices
    /// (empty for the coarsest level).
    coarse_of: Vec<usize>,
}

/// Contract a heavy-edge maximal matching. Returns `(coarse_of, coarse_n)`
/// or `None` if the matching made no progress (graph cannot shrink further).
fn heavy_edge_matching<R: Rng>(graph: &AffinityGraph, rng: &mut R) -> Option<(Vec<usize>, usize)> {
    let n = graph.num_vertices();
    let mut matched = vec![usize::MAX; n];
    let mut visit: Vec<usize> = (0..n).collect();
    visit.shuffle(rng);
    for &v in &visit {
        if matched[v] != usize::MAX {
            continue;
        }
        // heaviest unmatched neighbor
        let mut best: Option<(usize, f64)> = None;
        for (u, w) in graph.neighbors(v) {
            if u != v && matched[u] == usize::MAX && best.map_or(true, |(_, bw)| w > bw) {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                matched[v] = u;
                matched[u] = v;
            }
            None => matched[v] = v, // stays single
        }
    }
    let mut coarse_of = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        if coarse_of[v] != usize::MAX {
            continue;
        }
        coarse_of[v] = next;
        let m = matched[v];
        if m != v && m != usize::MAX {
            coarse_of[m] = next;
        }
        next += 1;
    }
    if next == n {
        None // no contraction happened
    } else {
        Some((coarse_of, next))
    }
}

/// Build the coarse graph induced by `coarse_of`.
fn contract(
    graph: &AffinityGraph,
    vweight: &[usize],
    coarse_of: &[usize],
    coarse_n: usize,
) -> (AffinityGraph, Vec<usize>) {
    let mut cw = vec![0usize; coarse_n];
    for (v, &c) in coarse_of.iter().enumerate() {
        cw[c] += vweight[v];
    }
    let mut edge_acc: std::collections::HashMap<(usize, usize), f64> = Default::default();
    for (a, b, w) in graph.edge_list() {
        let (ca, cb) = (coarse_of[a], coarse_of[b]);
        if ca == cb {
            continue;
        }
        let key = if ca < cb { (ca, cb) } else { (cb, ca) };
        *edge_acc.entry(key).or_insert(0.0) += w;
    }
    let mut edges: Vec<(usize, usize, f64)> =
        edge_acc.into_iter().map(|((a, b), w)| (a, b, w)).collect();
    edges.sort_by_key(|&(a, b, _)| (a, b));
    (AffinityGraph::from_edges(coarse_n, &edges), cw)
}

/// Greedy region growing on the coarsest graph: seed each part with the
/// highest-affinity unassigned vertex, then repeatedly add the boundary
/// vertex most connected to the part until the part reaches its weight
/// budget.
fn initial_partition(
    graph: &AffinityGraph,
    vweight: &[usize],
    k: usize,
    max_part_weight: usize,
) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut part = vec![usize::MAX; n];
    let order = graph.vertices_by_total_affinity();
    let mut part_weight = vec![0usize; k];
    // Grow toward the *even* target so later parts are not starved; the
    // looser `max_part_weight` cap only constrains refinement and spilling.
    let total_weight: usize = vweight.iter().sum();
    let target = total_weight.div_ceil(k).min(max_part_weight);
    #[allow(clippy::needless_range_loop)] // p is a part id, not just an index
    for p in 0..k {
        // seed: heaviest unassigned vertex
        let Some(&seed) = order.iter().find(|&&v| part[v] == usize::MAX) else {
            break;
        };
        part[seed] = p;
        part_weight[p] += vweight[seed];
        // grow
        loop {
            if part_weight[p] >= target {
                break;
            }
            let mut best: Option<(usize, f64)> = None;
            for v in 0..n {
                if part[v] != usize::MAX {
                    continue;
                }
                if part_weight[p] + vweight[v] > target {
                    continue;
                }
                let conn: f64 = graph
                    .neighbors(v)
                    .filter(|&(u, _)| part[u] == p)
                    .map(|(_, w)| w)
                    .sum();
                if conn > 0.0 && best.map_or(true, |(_, bc)| conn > bc) {
                    best = Some((v, conn));
                }
            }
            match best {
                Some((v, _)) => {
                    part[v] = p;
                    part_weight[p] += vweight[v];
                }
                None => break,
            }
        }
    }
    // spill leftovers to the lightest fitting part
    for v in 0..n {
        if part[v] == usize::MAX {
            let p = (0..k).min_by_key(|&p| part_weight[p]).expect("k >= 1");
            part[v] = p;
            part_weight[p] += vweight[v];
        }
    }
    part
}

/// Boundary FM-style refinement: greedily move boundary vertices to the
/// part that most reduces the cut, while respecting the weight cap.
fn refine(
    graph: &AffinityGraph,
    vweight: &[usize],
    part: &mut [usize],
    k: usize,
    max_part_weight: usize,
    passes: usize,
) {
    let n = graph.num_vertices();
    let mut part_weight = vec![0usize; k];
    for v in 0..n {
        part_weight[part[v]] += vweight[v];
    }
    let mut part_count = vec![0usize; k];
    for v in 0..n {
        part_count[part[v]] += 1;
    }
    for _ in 0..passes {
        let mut moved = false;
        for v in 0..n {
            let cur = part[v];
            // never empty a part: downstream callers expect exactly k parts
            if part_count[cur] == 1 {
                continue;
            }
            // connection weight to every part
            let mut conn = vec![0.0f64; k];
            for (u, w) in graph.neighbors(v) {
                conn[part[u]] += w;
            }
            let mut best_p = cur;
            let mut best_gain = 0.0f64;
            for p in 0..k {
                if p == cur {
                    continue;
                }
                if part_weight[p] + vweight[v] > max_part_weight {
                    continue;
                }
                let gain = conn[p] - conn[cur];
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_p = p;
                }
            }
            if best_p != cur {
                part_weight[cur] -= vweight[v];
                part_weight[best_p] += vweight[v];
                part_count[cur] -= 1;
                part_count[best_p] += 1;
                part[v] = best_p;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

/// Partition `graph` into `config.num_parts` parts minimizing the cut
/// weight under the balance constraint.
pub fn multilevel_partition<R: Rng>(
    graph: &AffinityGraph,
    config: &MultilevelConfig,
    rng: &mut R,
) -> Partition {
    let n = graph.num_vertices();
    let k = config.num_parts;
    assert!(k >= 1, "need at least one part");
    if k == 1 || n <= k {
        // trivial cases: one part, or one vertex per part
        if k == 1 {
            return Partition::single(n);
        }
        return Partition::from_assignment((0..n).map(|v| v % k).collect());
    }
    let max_part_weight = (((n as f64 / k as f64).ceil()) * (1.0 + config.epsilon)).ceil() as usize;

    // 1. coarsen
    let mut levels: Vec<Level> = vec![Level {
        graph: graph.clone(),
        vweight: vec![1; n],
        coarse_of: Vec::new(),
    }];
    while levels.last().unwrap().graph.num_vertices() > config.coarsest_size.max(2 * k) {
        let (coarse_of, coarse_n) = {
            let top = levels.last().unwrap();
            match heavy_edge_matching(&top.graph, rng) {
                Some(x) => x,
                None => break,
            }
        };
        let (cg, cw) = {
            let top = levels.last().unwrap();
            contract(&top.graph, &top.vweight, &coarse_of, coarse_n)
        };
        levels.last_mut().unwrap().coarse_of = coarse_of;
        levels.push(Level {
            graph: cg,
            vweight: cw,
            coarse_of: Vec::new(),
        });
    }

    // 2. initial partition on the coarsest level
    let coarsest = levels.last().unwrap();
    let mut part = initial_partition(&coarsest.graph, &coarsest.vweight, k, max_part_weight);
    refine(
        &coarsest.graph,
        &coarsest.vweight,
        &mut part,
        k,
        max_part_weight,
        config.refine_passes,
    );

    // 3. uncoarsen + refine
    for li in (0..levels.len() - 1).rev() {
        let fine = &levels[li];
        let mut fine_part = vec![0usize; fine.graph.num_vertices()];
        for v in 0..fine.graph.num_vertices() {
            fine_part[v] = part[fine.coarse_of[v]];
        }
        part = fine_part;
        refine(
            &fine.graph,
            &fine.vweight,
            &mut part,
            k,
            max_part_weight,
            config.refine_passes,
        );
    }

    Partition::from_assignment(part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::cut_weight;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// `c` cliques of size `s` with heavy internal edges, chained by light
    /// bridges.
    fn clique_chain(c: usize, s: usize) -> AffinityGraph {
        let mut edges = Vec::new();
        for ci in 0..c {
            let base = ci * s;
            for i in 0..s {
                for j in (i + 1)..s {
                    edges.push((base + i, base + j, 10.0));
                }
            }
            if ci + 1 < c {
                edges.push((base + s - 1, base + s, 0.5));
            }
        }
        AffinityGraph::from_edges(c * s, &edges)
    }

    #[test]
    fn bisection_of_two_cliques_cuts_the_bridge() {
        let g = clique_chain(2, 8);
        let mut rng = StdRng::seed_from_u64(42);
        let p = multilevel_partition(&g, &MultilevelConfig::with_parts(2), &mut rng);
        assert_eq!(p.num_parts, 2);
        assert!(
            (cut_weight(&g, &p) - 0.5).abs() < 1e-9,
            "cut = {}",
            cut_weight(&g, &p)
        );
        assert_eq!(p.sizes(), vec![8, 8]);
    }

    #[test]
    fn four_way_partition_of_four_cliques() {
        let g = clique_chain(4, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let p = multilevel_partition(&g, &MultilevelConfig::with_parts(4), &mut rng);
        assert_eq!(p.num_parts, 4);
        // perfect cut = 3 bridges × 0.5
        assert!(
            cut_weight(&g, &p) <= 1.5 + 1e-9,
            "cut = {}",
            cut_weight(&g, &p)
        );
        for size in p.sizes() {
            assert!(size >= 3 && size <= 9, "balanced-ish sizes, got {size}");
        }
    }

    #[test]
    fn respects_balance_cap() {
        // star graph: min cut would put everything in one part, balance forbids it
        let mut edges = Vec::new();
        for v in 1..20 {
            edges.push((0, v, 1.0));
        }
        let g = AffinityGraph::from_edges(20, &edges);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = MultilevelConfig {
            num_parts: 2,
            epsilon: 0.2,
            ..Default::default()
        };
        let p = multilevel_partition(&g, &cfg, &mut rng);
        let max_allowed = ((20.0f64 / 2.0).ceil() * 1.2).ceil() as usize;
        assert!(
            p.sizes().iter().all(|&s| s <= max_allowed),
            "{:?}",
            p.sizes()
        );
    }

    #[test]
    fn single_part_is_trivial() {
        let g = clique_chain(2, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let p = multilevel_partition(&g, &MultilevelConfig::with_parts(1), &mut rng);
        assert_eq!(p.num_parts, 1);
        assert_eq!(cut_weight(&g, &p), 0.0);
    }

    #[test]
    fn more_parts_than_vertices_degenerates_gracefully() {
        let g = AffinityGraph::from_edges(3, &[(0, 1, 1.0)]);
        let mut rng = StdRng::seed_from_u64(0);
        let p = multilevel_partition(&g, &MultilevelConfig::with_parts(5), &mut rng);
        assert_eq!(p.part_of.len(), 3);
        assert!(p.num_parts <= 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = clique_chain(3, 5);
        let p1 = multilevel_partition(
            &g,
            &MultilevelConfig::with_parts(3),
            &mut StdRng::seed_from_u64(11),
        );
        let p2 = multilevel_partition(
            &g,
            &MultilevelConfig::with_parts(3),
            &mut StdRng::seed_from_u64(11),
        );
        assert_eq!(p1, p2);
    }

    #[test]
    fn handles_disconnected_graph() {
        let g = AffinityGraph::from_edges(10, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let mut rng = StdRng::seed_from_u64(5);
        let p = multilevel_partition(&g, &MultilevelConfig::with_parts(2), &mut rng);
        assert_eq!(p.part_of.len(), 10);
    }

    #[test]
    fn large_random_graph_is_partitioned_balanced() {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(99);
        let n = 400;
        let mut edges = Vec::new();
        for _ in 0..1200 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                edges.push((a.min(b), a.max(b), rng.gen_range(0.1..5.0)));
            }
        }
        edges.sort_by_key(|&(a, b, _)| (a, b));
        edges.dedup_by_key(|e| (e.0, e.1));
        let g = AffinityGraph::from_edges(n, &edges);
        let cfg = MultilevelConfig::with_parts(8);
        let p = multilevel_partition(&g, &cfg, &mut rng);
        let max_allowed = ((n as f64 / 8.0).ceil() * (1.0 + cfg.epsilon)).ceil() as usize;
        assert!(
            p.sizes().iter().all(|&s| s <= max_allowed),
            "{:?}",
            p.sizes()
        );
        assert!(
            cut_weight(&g, &p) < g.total_weight(),
            "refinement must beat trivial cut"
        );
    }
}
