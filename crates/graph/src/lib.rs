#![warn(missing_docs)]

//! # rasa-graph
//!
//! Graph machinery for RASA's affinity analysis (Sections II-B and IV-B of
//! the paper):
//!
//! * [`AffinityGraph`] — a CSR-backed weighted undirected view of a
//!   problem's affinity edges, with BFS, connected components, degree and
//!   total-affinity queries;
//! * [`fit`] — power-law and exponential fits of the total-affinity
//!   distribution (reproduces Fig 5 and underpins Assumption 4.1);
//! * [`multilevel`] — a multilevel min-weight balanced graph partitioner
//!   (heavy-edge-matching coarsening, greedy growing, FM refinement). It is
//!   the repository's stand-in for KaHIP, the baseline of Fig 6;
//! * [`partition`] — partition descriptions and quality metrics (cut weight,
//!   balance) shared by all partitioning strategies, plus random and
//!   BFS-seeded partition generators used by the paper's
//!   loss-minimization balanced partitioning stage (Section IV-B4).

pub mod csr;
pub mod fit;
pub mod multilevel;
pub mod partition;
pub mod traversal;

pub use csr::AffinityGraph;
pub use fit::{fit_exponential, fit_power_law, FitReport};
pub use multilevel::{multilevel_partition, MultilevelConfig};
pub use partition::{bfs_seeded_partition, cut_weight, is_balanced, random_partition, Partition};
pub use traversal::{bfs_order, connected_components, multi_source_bfs_assignment};
