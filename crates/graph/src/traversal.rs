//! BFS traversal and connected components.

use crate::csr::AffinityGraph;
use std::collections::VecDeque;

/// BFS visit order from `start` (vertices reachable from `start`, including
/// it, in breadth-first order; neighbor ties follow storage order, so the
/// result is deterministic).
pub fn bfs_order(graph: &AffinityGraph, start: usize) -> Vec<usize> {
    let mut visited = vec![false; graph.num_vertices()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for (u, _) in graph.neighbors(v) {
            if !visited[u] {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

/// Connected components; returns `(component_of, num_components)` where
/// `component_of[v]` is a dense component index. Isolated vertices form
/// singleton components.
pub fn connected_components(graph: &AffinityGraph) -> (Vec<usize>, usize) {
    let n = graph.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for v0 in 0..n {
        if comp[v0] != usize::MAX {
            continue;
        }
        comp[v0] = next;
        queue.push_back(v0);
        while let Some(v) = queue.pop_front() {
            for (u, _) in graph.neighbors(v) {
                if comp[u] == usize::MAX {
                    comp[u] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    (comp, next)
}

/// The multi-source BFS used by the paper's loss-minimization balanced
/// partitioning heuristic (Section IV-B4, step ii–iii): run BFS from each of
/// the `h` sampled seed vertices *simultaneously* (interleaved frontier
/// expansion) and assign every other vertex to the seed that first reaches
/// it. Returns `assignment[v] = seed index` (`usize::MAX` for vertices
/// unreachable from every seed).
///
/// Ties (two seeds reaching a vertex in the same round) resolve to the seed
/// appearing earlier in `seeds`, matching "firstly visited" with a
/// deterministic scan order.
pub fn multi_source_bfs_assignment(graph: &AffinityGraph, seeds: &[usize]) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut assignment = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for (k, &s) in seeds.iter().enumerate() {
        assert!(s < n, "seed out of range");
        // Later duplicate seeds lose to the first occurrence.
        if assignment[s] == usize::MAX {
            assignment[s] = k;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let k = assignment[v];
        for (u, _) in graph.neighbors(v) {
            if assignment[u] == usize::MAX {
                assignment[u] = k;
                queue.push_back(u);
            }
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two components: a path 0-1-2 and an edge 3-4; vertex 5 isolated.
    fn graph() -> AffinityGraph {
        AffinityGraph::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
    }

    #[test]
    fn bfs_order_is_breadth_first() {
        let g = AffinityGraph::from_edges(5, &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 4, 1.0)]);
        let order = bfs_order(&g, 0);
        assert_eq!(order[0], 0);
        // layer 1 = {1, 2}, layer 2 = {3, 4}
        assert!(order[1..3].contains(&1) && order[1..3].contains(&2));
        assert!(order[3..5].contains(&3) && order[3..5].contains(&4));
    }

    #[test]
    fn bfs_stays_within_component() {
        let g = graph();
        let order = bfs_order(&g, 3);
        assert_eq!(order.len(), 2);
        assert!(order.contains(&4));
    }

    #[test]
    fn components_are_identified() {
        let g = graph();
        let (comp, n) = connected_components(&g);
        assert_eq!(n, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
        assert_ne!(comp[5], comp[3]);
    }

    #[test]
    fn multi_source_bfs_partitions_reachable_vertices() {
        // path 0-1-2-3-4 with seeds at the ends
        let g = AffinityGraph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]);
        let assignment = multi_source_bfs_assignment(&g, &[0, 4]);
        assert_eq!(assignment[0], 0);
        assert_eq!(assignment[1], 0);
        assert_eq!(assignment[3], 1);
        assert_eq!(assignment[4], 1);
        // middle vertex: both seeds reach it in round 2; earlier seed wins
        assert_eq!(assignment[2], 0);
    }

    #[test]
    fn multi_source_bfs_leaves_unreachable_unassigned() {
        let g = graph();
        let assignment = multi_source_bfs_assignment(&g, &[0]);
        assert_eq!(assignment[3], usize::MAX);
        assert_eq!(assignment[5], usize::MAX);
        assert_eq!(assignment[2], 0);
    }

    #[test]
    fn duplicate_seeds_keep_first() {
        let g = graph();
        let assignment = multi_source_bfs_assignment(&g, &[1, 1]);
        assert_eq!(assignment[1], 0);
    }
}
