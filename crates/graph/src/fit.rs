//! Distribution fitting for the total-affinity skew (Fig 5 / Assumption 4.1).
//!
//! The paper plots the total affinity `T(s)` of services ranked by
//! decreasing `T(s)` and shows that a power law `T(s) ∝ s^{-β}` fits far
//! better than an exponential `T(s) ∝ e^{-λ s}`. Both fits here are
//! ordinary least squares in the appropriate log space:
//!
//! * power law: `ln T = ln c − β ln s` — linear in `ln s`;
//! * exponential: `ln T = ln c − λ s` — linear in `s`.

use serde::{Deserialize, Serialize};

/// Result of fitting a ranked, positive-valued sequence.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// Decay parameter: `β` for a power law, `λ` for an exponential.
    pub decay: f64,
    /// Scale constant `c` (value at rank 1 / at x = 0 respectively).
    pub scale: f64,
    /// Coefficient of determination in log space; 1.0 is a perfect fit.
    pub r_squared: f64,
}

fn linear_regression(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx == 0.0 {
        return (0.0, mean_y, if syy == 0.0 { 1.0 } else { 0.0 });
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    // Treat numerically-constant y as a perfect fit rather than dividing two
    // rounding-noise quantities.
    let y_scale = ys.iter().fold(0.0f64, |acc, y| acc.max(y.abs())).max(1.0);
    let r2 = if syy <= 1e-24 * y_scale * y_scale * n {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (slope, intercept, r2)
}

/// Fit `values[k] ≈ c · (k+1)^{-β}` to a ranked sequence (descending
/// total-affinity values). Non-positive entries are skipped (they carry no
/// information in log space).
///
/// # Panics
/// Panics if fewer than two positive values remain.
pub fn fit_power_law(values: &[f64]) -> FitReport {
    let pts: Vec<(f64, f64)> = values
        .iter()
        .enumerate()
        .filter(|(_, &v)| v > 0.0)
        .map(|(k, &v)| (((k + 1) as f64).ln(), v.ln()))
        .collect();
    assert!(pts.len() >= 2, "need at least two positive values to fit");
    let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
    let (slope, intercept, r2) = linear_regression(&xs, &ys);
    FitReport {
        decay: -slope,
        scale: intercept.exp(),
        r_squared: r2,
    }
}

/// Fit `values[k] ≈ c · e^{-λ (k+1)}` to a ranked sequence.
///
/// # Panics
/// Panics if fewer than two positive values remain.
pub fn fit_exponential(values: &[f64]) -> FitReport {
    let pts: Vec<(f64, f64)> = values
        .iter()
        .enumerate()
        .filter(|(_, &v)| v > 0.0)
        .map(|(k, &v)| ((k + 1) as f64, v.ln()))
        .collect();
    assert!(pts.len() >= 2, "need at least two positive values to fit");
    let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
    let (slope, intercept, r2) = linear_regression(&xs, &ys);
    FitReport {
        decay: -slope,
        scale: intercept.exp(),
        r_squared: r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        let beta = 1.7;
        let values: Vec<f64> = (1..=50).map(|k| 10.0 * (k as f64).powf(-beta)).collect();
        let fit = fit_power_law(&values);
        assert!((fit.decay - beta).abs() < 1e-9, "beta = {}", fit.decay);
        assert!((fit.scale - 10.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn exact_exponential_recovered() {
        let lambda = 0.25;
        let values: Vec<f64> = (1..=50).map(|k| 3.0 * (-lambda * k as f64).exp()).collect();
        let fit = fit_exponential(&values);
        assert!((fit.decay - lambda).abs() < 1e-9);
        assert!((fit.scale - 3.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn power_law_data_prefers_power_law_fit() {
        // the discriminating experiment behind Fig 5
        let values: Vec<f64> = (1..=40).map(|k| (k as f64).powf(-1.5)).collect();
        let pl = fit_power_law(&values);
        let ex = fit_exponential(&values);
        assert!(pl.r_squared > ex.r_squared);
    }

    #[test]
    fn exponential_data_prefers_exponential_fit() {
        let values: Vec<f64> = (1..=40).map(|k| (-0.3 * k as f64).exp()).collect();
        let pl = fit_power_law(&values);
        let ex = fit_exponential(&values);
        assert!(ex.r_squared > pl.r_squared);
    }

    #[test]
    fn zero_values_are_skipped() {
        let values = vec![8.0, 4.0, 0.0, 2.0];
        // ranks 1, 2, 4 with values 8, 4, 2 — not an exact power law but finite
        let fit = fit_power_law(&values);
        assert!(fit.decay > 0.0);
        assert!(fit.r_squared > 0.9);
    }

    #[test]
    #[should_panic(expected = "two positive values")]
    fn too_few_points_panics() {
        let _ = fit_power_law(&[1.0, 0.0]);
    }

    #[test]
    fn constant_sequence_has_zero_decay() {
        let values = vec![5.0; 10];
        let fit = fit_power_law(&values);
        assert!(fit.decay.abs() < 1e-9);
        assert!((fit.scale - 5.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }
}
