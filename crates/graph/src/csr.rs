//! CSR-backed weighted undirected affinity graph.

use rasa_model::{AffinityEdge, Problem, ServiceId};

/// Compressed sparse row view of an affinity graph `G = <V, E>`
/// (Section II-B). Vertices are dense `usize` indices matching
/// `ServiceId` indices of the originating problem (or any local index space
/// when built from raw edges).
#[derive(Clone, Debug)]
pub struct AffinityGraph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors`/`weights` for vertex `v`.
    offsets: Vec<usize>,
    /// Flattened neighbor lists (each undirected edge appears twice).
    neighbors: Vec<u32>,
    /// Weight parallel to `neighbors`.
    weights: Vec<f64>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl AffinityGraph {
    /// Build from an explicit vertex count and undirected weighted edges.
    ///
    /// # Panics
    /// Panics if an edge endpoint is out of range.
    pub fn from_edges(num_vertices: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut degree = vec![0usize; num_vertices];
        for &(a, b, _) in edges {
            assert!(
                a < num_vertices && b < num_vertices,
                "edge endpoint out of range"
            );
            degree[a] += 1;
            degree[b] += 1;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0usize);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut cursor = offsets[..num_vertices].to_vec();
        let mut neighbors = vec![0u32; offsets[num_vertices]];
        let mut weights = vec![0.0; offsets[num_vertices]];
        for &(a, b, w) in edges {
            neighbors[cursor[a]] = b as u32;
            weights[cursor[a]] = w;
            cursor[a] += 1;
            neighbors[cursor[b]] = a as u32;
            weights[cursor[b]] = w;
            cursor[b] += 1;
        }
        AffinityGraph {
            offsets,
            neighbors,
            weights,
            num_edges: edges.len(),
        }
    }

    /// Build from a problem's affinity edge list; vertex `k` is `ServiceId(k)`.
    pub fn from_problem(problem: &Problem) -> Self {
        let edges: Vec<(usize, usize, f64)> = problem
            .affinity_edges
            .iter()
            .map(|e| (e.a.idx(), e.b.idx(), e.weight))
            .collect();
        Self::from_edges(problem.num_services(), &edges)
    }

    /// Build from a slice of [`AffinityEdge`]s over `num_vertices` services.
    pub fn from_affinity_edges(num_vertices: usize, edges: &[AffinityEdge]) -> Self {
        let raw: Vec<(usize, usize, f64)> = edges
            .iter()
            .map(|e| (e.a.idx(), e.b.idx(), e.weight))
            .collect();
        Self::from_edges(num_vertices, &raw)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Neighbors of `v` with edge weights.
    #[inline]
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.offsets[v]..self.offsets[v + 1];
        self.neighbors[range.clone()]
            .iter()
            .zip(&self.weights[range])
            .map(|(&n, &w)| (n as usize, w))
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// `T(v) = Σ_{u ∈ N(v)} w_{v,u}` — the *total affinity* of a vertex
    /// (Section IV-B2).
    pub fn total_affinity_of(&self, v: usize) -> f64 {
        self.neighbors(v).map(|(_, w)| w).sum()
    }

    /// `T(v)` for every vertex.
    pub fn all_total_affinities(&self) -> Vec<f64> {
        (0..self.num_vertices())
            .map(|v| self.total_affinity_of(v))
            .collect()
    }

    /// Sum of all edge weights (the paper's *total affinity* of the graph,
    /// before normalization to 1.0).
    pub fn total_weight(&self) -> f64 {
        // each undirected edge is stored twice
        self.weights.iter().sum::<f64>() / 2.0
    }

    /// Vertices sorted by decreasing total affinity; ties broken by index
    /// for determinism. The prefix of this order defines the paper's
    /// *master services*.
    pub fn vertices_by_total_affinity(&self) -> Vec<usize> {
        let t = self.all_total_affinities();
        let mut order: Vec<usize> = (0..self.num_vertices()).collect();
        order.sort_by(|&a, &b| {
            t[b].partial_cmp(&t[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    }

    /// Vertices with at least one incident edge (the paper's *affinity set*;
    /// its complement is the non-affinity set of Section IV-B1).
    pub fn vertices_with_affinity(&self) -> Vec<usize> {
        (0..self.num_vertices())
            .filter(|&v| self.degree(v) > 0)
            .collect()
    }

    /// Weight of the edge `(a, b)` if present.
    pub fn edge_weight(&self, a: usize, b: usize) -> Option<f64> {
        self.neighbors(a).find(|&(n, _)| n == b).map(|(_, w)| w)
    }

    /// Undirected edge list `(a, b, w)` with `a < b`, in storage order.
    pub fn edge_list(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for v in 0..self.num_vertices() {
            for (u, w) in self.neighbors(v) {
                if v < u {
                    out.push((v, u, w));
                }
            }
        }
        out
    }

    /// Map a local vertex index back to a `ServiceId` (identity mapping for
    /// graphs built via [`from_problem`](Self::from_problem)).
    pub fn service_id(&self, v: usize) -> ServiceId {
        ServiceId(v as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> AffinityGraph {
        AffinityGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
    }

    #[test]
    fn construction_and_degrees() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0, "isolated vertex has degree 0");
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle();
        let n0: Vec<_> = g.neighbors(0).collect();
        assert!(n0.contains(&(1, 1.0)));
        assert!(n0.contains(&(2, 3.0)));
        let n1: Vec<_> = g.neighbors(1).collect();
        assert!(n1.contains(&(0, 1.0)));
    }

    #[test]
    fn total_affinity_per_vertex_and_graph() {
        let g = triangle();
        assert_eq!(g.total_affinity_of(0), 4.0);
        assert_eq!(g.total_affinity_of(1), 3.0);
        assert_eq!(g.total_affinity_of(2), 5.0);
        assert_eq!(g.total_affinity_of(3), 0.0);
        assert_eq!(g.total_weight(), 6.0);
    }

    #[test]
    fn ranking_by_total_affinity() {
        let g = triangle();
        assert_eq!(g.vertices_by_total_affinity(), vec![2, 0, 1, 3]);
    }

    #[test]
    fn affinity_set_excludes_isolated() {
        let g = triangle();
        assert_eq!(g.vertices_with_affinity(), vec![0, 1, 2]);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = triangle();
        assert_eq!(g.edge_weight(0, 2), Some(3.0));
        assert_eq!(g.edge_weight(2, 0), Some(3.0));
        assert_eq!(g.edge_weight(0, 3), None);
    }

    #[test]
    fn edge_list_normalizes_direction() {
        let g = triangle();
        let mut edges = g.edge_list();
        edges.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(edges, vec![(0, 1, 1.0), (0, 2, 3.0), (1, 2, 2.0)]);
    }

    #[test]
    fn from_problem_matches_manual_graph() {
        use rasa_model::{FeatureMask, ProblemBuilder, ResourceVec};
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 1, ResourceVec::ZERO);
        let s1 = b.add_service("b", 1, ResourceVec::ZERO);
        b.add_machine(ResourceVec::cpu_mem(1.0, 1.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 4.5);
        let p = b.build().unwrap();
        let g = AffinityGraph::from_problem(&p);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(4.5));
        assert_eq!(g.service_id(1), s1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = AffinityGraph::from_edges(2, &[(0, 5, 1.0)]);
    }

    #[test]
    fn empty_graph() {
        let g = AffinityGraph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.total_weight(), 0.0);
        assert!(g.edge_list().is_empty());
    }
}
