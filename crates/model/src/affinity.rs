//! Affinity edges: the weighted service-to-service relation RASA maximizes.

use crate::ids::ServiceId;
use serde::{Deserialize, Serialize};

/// Index of an edge within [`Problem::affinity_edges`](crate::Problem::affinity_edges).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The dense index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One undirected edge `(s, s')` of the affinity graph with weight
/// `w_{s,s'}` (Section II-B).
///
/// In this reproduction, as in the paper's production deployment, the weight
/// is the volume of traffic between the two services as observed by the
/// metrics monitoring system, optionally scaled by per-service priority
/// weights.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AffinityEdge {
    /// One endpoint.
    pub a: ServiceId,
    /// The other endpoint; invariant `a != b` (self-affinity has no meaning:
    /// a service's containers always share a machine with themselves).
    pub b: ServiceId,
    /// `w_{s,s'} > 0`: traffic volume (or priority-scaled traffic).
    pub weight: f64,
}

impl AffinityEdge {
    /// Build an edge, normalizing the endpoint order so `a < b`.
    ///
    /// # Panics
    /// Panics on self-loops or non-positive weights — both indicate a bug in
    /// the data collector rather than a recoverable condition.
    pub fn new(a: ServiceId, b: ServiceId, weight: f64) -> Self {
        assert!(a != b, "affinity self-loop on {a}");
        assert!(
            weight > 0.0 && weight.is_finite(),
            "affinity weight must be positive and finite, got {weight}"
        );
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        AffinityEdge { a, b, weight }
    }

    /// The endpoint that is not `s`.
    ///
    /// # Panics
    /// Panics if `s` is not an endpoint of the edge.
    pub fn other(&self, s: ServiceId) -> ServiceId {
        if s == self.a {
            self.b
        } else if s == self.b {
            self.a
        } else {
            panic!("{s} is not an endpoint of edge ({}, {})", self.a, self.b)
        }
    }

    /// `true` if `s` is an endpoint.
    pub fn touches(&self, s: ServiceId) -> bool {
        self.a == s || self.b == s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_normalized() {
        let e = AffinityEdge::new(ServiceId(5), ServiceId(2), 1.5);
        assert_eq!(e.a, ServiceId(2));
        assert_eq!(e.b, ServiceId(5));
        assert_eq!(e.weight, 1.5);
    }

    #[test]
    fn other_returns_opposite_endpoint() {
        let e = AffinityEdge::new(ServiceId(0), ServiceId(1), 1.0);
        assert_eq!(e.other(ServiceId(0)), ServiceId(1));
        assert_eq!(e.other(ServiceId(1)), ServiceId(0));
        assert!(e.touches(ServiceId(0)));
        assert!(!e.touches(ServiceId(2)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = AffinityEdge::new(ServiceId(3), ServiceId(3), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = AffinityEdge::new(ServiceId(0), ServiceId(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nan_weight_rejected() {
        let _ = AffinityEdge::new(ServiceId(0), ServiceId(1), f64::NAN);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let e = AffinityEdge::new(ServiceId(0), ServiceId(1), 1.0);
        let _ = e.other(ServiceId(9));
    }
}
