//! Model-level error type.

use crate::ids::{MachineId, ServiceId};
use std::fmt;

/// Errors raised while constructing or manipulating a [`Problem`](crate::Problem)
/// or [`Placement`](crate::Placement).
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// A service id referenced an index outside the problem's service list.
    UnknownService(ServiceId),
    /// A machine id referenced an index outside the problem's machine list.
    UnknownMachine(MachineId),
    /// The same unordered service pair appeared twice in the edge list.
    DuplicateEdge(ServiceId, ServiceId),
    /// An anti-affinity rule referenced no services.
    EmptyAntiAffinityRule,
    /// A structural inconsistency described by the message.
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownService(s) => write!(f, "unknown service {s}"),
            ModelError::UnknownMachine(m) => write!(f, "unknown machine {m}"),
            ModelError::DuplicateEdge(a, b) => {
                write!(f, "duplicate affinity edge ({a}, {b})")
            }
            ModelError::EmptyAntiAffinityRule => write!(f, "anti-affinity rule with no services"),
            ModelError::Invalid(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            ModelError::UnknownService(ServiceId(4)).to_string(),
            "unknown service s4"
        );
        assert_eq!(
            ModelError::DuplicateEdge(ServiceId(1), ServiceId(2)).to_string(),
            "duplicate affinity edge (s1, s2)"
        );
    }
}
