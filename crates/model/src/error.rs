//! Model-level error type.

use crate::ids::{MachineId, ServiceId};
use std::fmt;

/// Errors raised while constructing or manipulating a [`Problem`](crate::Problem)
/// or [`Placement`](crate::Placement).
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// A service id referenced an index outside the problem's service list.
    UnknownService(ServiceId),
    /// A machine id referenced an index outside the problem's machine list.
    UnknownMachine(MachineId),
    /// The same unordered service pair appeared twice in the edge list.
    DuplicateEdge(ServiceId, ServiceId),
    /// An anti-affinity rule referenced no services.
    EmptyAntiAffinityRule,
    /// A structural inconsistency described by the message.
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownService(s) => write!(f, "unknown service {s}"),
            ModelError::UnknownMachine(m) => write!(f, "unknown machine {m}"),
            ModelError::DuplicateEdge(a, b) => {
                write!(f, "duplicate affinity edge ({a}, {b})")
            }
            ModelError::EmptyAntiAffinityRule => write!(f, "anti-affinity rule with no services"),
            ModelError::Invalid(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Unified error type for the whole RASA stack.
///
/// Lower layers keep their precise error enums ([`ModelError`],
/// `MigrateError`, …); this type is the common currency fault-tolerant
/// callers — the pipeline's guarded solve layer, the chaos harness —
/// convert into so a failure in any layer can be *reported* instead of
/// unwinding through the stack.
#[derive(Clone, Debug, PartialEq)]
pub enum RasaError {
    /// A model construction/manipulation error.
    Model(ModelError),
    /// A solver-layer invariant did not hold (malformed solution vector,
    /// inconsistent formulation state, …).
    SolverInvariant(String),
    /// The migration planner failed; the message carries the lower-level
    /// `MigrateError` description.
    Migration(String),
    /// A worker panicked while solving the given subproblem; the message
    /// is the panic payload when it was a string.
    SolvePanicked {
        /// Index of the subproblem whose solve panicked.
        subproblem: usize,
        /// Stringified panic payload (`"<non-string panic payload>"` when
        /// the payload was not a string).
        message: String,
    },
    /// The deadline expired before the given subproblem produced a
    /// complete result.
    DeadlineExpired {
        /// Index of the subproblem that ran out of budget.
        subproblem: usize,
    },
    /// A solver returned a placement that violates problem constraints;
    /// the fault-isolation layer discarded it.
    InfeasibleResult {
        /// Index of the subproblem with the infeasible result.
        subproblem: usize,
    },
    /// Independent certification rejected a candidate solution: the
    /// placement satisfied the constraints but the solver's claimed
    /// objective did not match the recomputed one (or the claim was
    /// non-finite). Treated as a solver fault and routed down the
    /// fallback ladder.
    CertificationFailed {
        /// Index of the subproblem whose result failed certification.
        subproblem: usize,
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for RasaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RasaError::Model(e) => write!(f, "model error: {e}"),
            RasaError::SolverInvariant(msg) => write!(f, "solver invariant violated: {msg}"),
            RasaError::Migration(msg) => write!(f, "migration planning failed: {msg}"),
            RasaError::SolvePanicked {
                subproblem,
                message,
            } => write!(f, "subproblem {subproblem} solve panicked: {message}"),
            RasaError::DeadlineExpired { subproblem } => {
                write!(f, "subproblem {subproblem} ran out of deadline budget")
            }
            RasaError::InfeasibleResult { subproblem } => {
                write!(f, "subproblem {subproblem} produced an infeasible placement")
            }
            RasaError::CertificationFailed { subproblem, detail } => {
                write!(f, "subproblem {subproblem} failed certification: {detail}")
            }
        }
    }
}

impl std::error::Error for RasaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RasaError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for RasaError {
    fn from(e: ModelError) -> Self {
        RasaError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rasa_error_display_and_source() {
        let e = RasaError::from(ModelError::UnknownMachine(MachineId(7)));
        assert_eq!(e.to_string(), "model error: unknown machine m7");
        assert!(std::error::Error::source(&e).is_some());
        let p = RasaError::SolvePanicked {
            subproblem: 3,
            message: "boom".into(),
        };
        assert_eq!(p.to_string(), "subproblem 3 solve panicked: boom");
        assert!(std::error::Error::source(&p).is_none());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            ModelError::UnknownService(ServiceId(4)).to_string(),
            "unknown service s4"
        );
        assert_eq!(
            ModelError::DuplicateEdge(ServiceId(1), ServiceId(2)).to_string(),
            "duplicate affinity edge (s1, s2)"
        );
    }
}
