//! Gate 1 of the pipeline's trust boundary: admission control for
//! [`Problem`] instances.
//!
//! `Problem`'s fields are public and serde-deserializable, so cluster
//! snapshots loaded from JSON bypass every invariant
//! [`ProblemBuilder`](crate::problem::ProblemBuilder)
//! enforces: NaN demands, negative capacities, duplicate or misnumbered
//! ids, dangling affinity edges and `h_k = 0` anti-affinity rules all flow
//! straight into the solvers, where they surface as panics or silently
//! wrong objectives. The [`ProblemValidator`] audits every instance
//! *before* partitioning and applies a **quarantine-and-repair** policy:
//! offending entries are dropped, clamped or neutralized so the healthy
//! remainder of the cluster still gets solved, and every intervention is
//! surfaced in a typed [`AdmissionReport`] instead of aborting the round.
//!
//! Repairs are *shape-preserving*: the repaired problem has the same
//! service and machine counts as the input (quarantined services keep
//! their slot with `replicas = 0`; quarantined machines keep theirs with
//! zero capacity), so [`Placement`](crate::Placement) indexing and
//! subproblem merging are unaffected.

use crate::affinity::AffinityEdge;
use crate::ids::{MachineId, ServiceId};
use crate::problem::{AntiAffinityRule, Problem};
use crate::resources::{ResourceKind, ResourceVec, NUM_RESOURCES};
use crate::validate::RESOURCE_EPS;
use serde::Serialize;
use std::collections::HashSet;
use std::fmt;

/// How the validator handled an offending entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum RepairAction {
    /// The entry was neutralized in place (service demand zeroed and
    /// replicas set to 0, or machine capacity zeroed) so the rest of the
    /// problem solves without it.
    Quarantined,
    /// The offending value was clamped or reset into its valid range.
    Clamped,
    /// A dense id was rewritten to match the entry's index.
    Renumbered,
    /// The entry was removed from the problem.
    Dropped,
    /// Advisory only; nothing was changed.
    Flagged,
}

/// Why an affinity edge was repaired or dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum EdgeDefect {
    /// An endpoint references a service index outside the service list.
    DanglingEndpoint,
    /// Both endpoints are the same service.
    SelfLoop,
    /// The weight is NaN or infinite.
    NonFiniteWeight,
    /// The weight is zero or negative.
    NonPositiveWeight,
    /// An endpoint service was quarantined, so localizing the edge is
    /// meaningless this round.
    QuarantinedEndpoint,
    /// The same unordered service pair appeared earlier in the edge list.
    Duplicate,
    /// Endpoints were stored as `a > b`; the edge was kept with the
    /// canonical `a < b` orientation.
    Unnormalized,
}

/// Why an anti-affinity rule was repaired or dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum RuleDefect {
    /// The rule referenced service indices outside the service list; the
    /// unknown members were removed.
    UnknownMembers,
    /// The rule constrains no (known) services.
    Empty,
    /// `h_k = 0` while a member service must place containers — no
    /// placement can satisfy it, so the *constraint* is quarantined
    /// rather than the services.
    Unsatisfiable,
}

/// One defect found (and repaired) during admission.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmissionIssue {
    /// A service's per-container demand had a NaN, infinite or negative
    /// component; the service was quarantined (`replicas = 0`, zero
    /// demand).
    CorruptServiceDemand {
        /// The quarantined service (by index in the service list).
        service: ServiceId,
        /// Always [`RepairAction::Quarantined`].
        action: RepairAction,
    },
    /// `services[index].id != index` (duplicate or out-of-range id, which
    /// would make placement indexing panic); the id was renumbered.
    MisnumberedService {
        /// Index in the service list.
        index: usize,
        /// The id found there.
        found: u32,
        /// Always [`RepairAction::Renumbered`].
        action: RepairAction,
    },
    /// `machines[index].id != index`; the id was renumbered.
    MisnumberedMachine {
        /// Index in the machine list.
        index: usize,
        /// The id found there.
        found: u32,
        /// Always [`RepairAction::Renumbered`].
        action: RepairAction,
    },
    /// A machine's capacity vector had a NaN/infinite component
    /// ([`RepairAction::Quarantined`]: capacity zeroed, machine unusable)
    /// or a negative component ([`RepairAction::Clamped`] to zero).
    CorruptMachineCapacity {
        /// The affected machine.
        machine: MachineId,
        /// `Quarantined` for non-finite, `Clamped` for negative values.
        action: RepairAction,
    },
    /// A service's priority weight was NaN, infinite, zero or negative;
    /// it was reset to the neutral `1.0`.
    CorruptPriorityWeight {
        /// The affected service.
        service: ServiceId,
        /// Always [`RepairAction::Clamped`].
        action: RepairAction,
    },
    /// An affinity edge was defective.
    CorruptAffinityEdge {
        /// Index in the edge list.
        index: usize,
        /// What was wrong with it.
        defect: EdgeDefect,
        /// `Clamped` for [`EdgeDefect::Unnormalized`], `Dropped` otherwise.
        action: RepairAction,
    },
    /// An anti-affinity rule was defective.
    CorruptAntiAffinityRule {
        /// Index in the rule list.
        index: usize,
        /// What was wrong with it.
        defect: RuleDefect,
        /// `Clamped` when unknown members were filtered out, `Dropped`
        /// when the whole rule was removed.
        action: RepairAction,
    },
    /// Aggregate healthy demand exceeds aggregate capacity in a resource
    /// dimension. Advisory: the pipeline still solves the round (partial
    /// placements are allowed), but full SLA satisfaction is impossible.
    CapacityShortfall {
        /// The over-subscribed resource dimension.
        kind: ResourceKind,
        /// Total demand across non-quarantined services.
        demand: f64,
        /// Total capacity across repaired machines.
        capacity: f64,
        /// Always [`RepairAction::Flagged`].
        action: RepairAction,
    },
}

impl AdmissionIssue {
    /// The repair action taken for this issue.
    pub fn action(&self) -> RepairAction {
        match self {
            AdmissionIssue::CorruptServiceDemand { action, .. }
            | AdmissionIssue::MisnumberedService { action, .. }
            | AdmissionIssue::MisnumberedMachine { action, .. }
            | AdmissionIssue::CorruptMachineCapacity { action, .. }
            | AdmissionIssue::CorruptPriorityWeight { action, .. }
            | AdmissionIssue::CorruptAffinityEdge { action, .. }
            | AdmissionIssue::CorruptAntiAffinityRule { action, .. }
            | AdmissionIssue::CapacityShortfall { action, .. } => *action,
        }
    }
}

// The vendored serde_derive only supports fieldless enums, so the
// data-carrying issue enum serializes by hand as a tagged map:
// `{"kind": "<variant>", ...fields}`.
impl Serialize for AdmissionIssue {
    fn serialize(&self) -> serde::Value {
        use serde::Value;
        let kv = |k: &str, v: Value| (Value::Str(k.to_string()), v);
        let tag = |name: &str| kv("kind", Value::Str(name.to_string()));
        let entries = match self {
            AdmissionIssue::CorruptServiceDemand { service, action } => vec![
                tag("CorruptServiceDemand"),
                kv("service", service.serialize()),
                kv("action", action.serialize()),
            ],
            AdmissionIssue::MisnumberedService { index, found, action } => vec![
                tag("MisnumberedService"),
                kv("index", Value::U64(*index as u64)),
                kv("found", Value::U64(u64::from(*found))),
                kv("action", action.serialize()),
            ],
            AdmissionIssue::MisnumberedMachine { index, found, action } => vec![
                tag("MisnumberedMachine"),
                kv("index", Value::U64(*index as u64)),
                kv("found", Value::U64(u64::from(*found))),
                kv("action", action.serialize()),
            ],
            AdmissionIssue::CorruptMachineCapacity { machine, action } => vec![
                tag("CorruptMachineCapacity"),
                kv("machine", machine.serialize()),
                kv("action", action.serialize()),
            ],
            AdmissionIssue::CorruptPriorityWeight { service, action } => vec![
                tag("CorruptPriorityWeight"),
                kv("service", service.serialize()),
                kv("action", action.serialize()),
            ],
            AdmissionIssue::CorruptAffinityEdge { index, defect, action } => vec![
                tag("CorruptAffinityEdge"),
                kv("index", Value::U64(*index as u64)),
                kv("defect", defect.serialize()),
                kv("action", action.serialize()),
            ],
            AdmissionIssue::CorruptAntiAffinityRule { index, defect, action } => vec![
                tag("CorruptAntiAffinityRule"),
                kv("index", Value::U64(*index as u64)),
                kv("defect", defect.serialize()),
                kv("action", action.serialize()),
            ],
            AdmissionIssue::CapacityShortfall { kind, demand, capacity, action } => vec![
                tag("CapacityShortfall"),
                kv("resource", Value::Str(kind.label().to_string())),
                kv("demand", Value::F64(*demand)),
                kv("capacity", Value::F64(*capacity)),
                kv("action", action.serialize()),
            ],
        };
        Value::Map(entries)
    }
}

impl fmt::Display for AdmissionIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionIssue::CorruptServiceDemand { service, .. } => {
                write!(f, "service {service} has a corrupt demand vector (quarantined)")
            }
            AdmissionIssue::MisnumberedService { index, found, .. } => {
                write!(f, "services[{index}] carries id s{found} (renumbered)")
            }
            AdmissionIssue::MisnumberedMachine { index, found, .. } => {
                write!(f, "machines[{index}] carries id m{found} (renumbered)")
            }
            AdmissionIssue::CorruptMachineCapacity { machine, action } => {
                write!(f, "machine {machine} has a corrupt capacity vector ({action:?})")
            }
            AdmissionIssue::CorruptPriorityWeight { service, .. } => {
                write!(f, "service {service} has a corrupt priority weight (reset to 1)")
            }
            AdmissionIssue::CorruptAffinityEdge { index, defect, action } => {
                write!(f, "affinity edge #{index} is defective ({defect:?}, {action:?})")
            }
            AdmissionIssue::CorruptAntiAffinityRule { index, defect, action } => {
                write!(f, "anti-affinity rule #{index} is defective ({defect:?}, {action:?})")
            }
            AdmissionIssue::CapacityShortfall { kind, demand, capacity, .. } => write!(
                f,
                "aggregate {} demand {demand:.3} exceeds capacity {capacity:.3}",
                kind.label()
            ),
        }
    }
}

/// The outcome of auditing one [`Problem`]: every defect found, plus the
/// quarantine sets a caller needs to interpret a partial solution.
///
/// Serializes to JSON so chaos campaigns and CI can archive it as an
/// artifact.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct AdmissionReport {
    /// Every defect found, in detection order.
    pub issues: Vec<AdmissionIssue>,
    /// Services neutralized this round (no containers will be placed).
    pub quarantined_services: Vec<ServiceId>,
    /// Machines neutralized this round (zero usable capacity).
    pub quarantined_machines: Vec<MachineId>,
    /// Affinity edges removed from the repaired problem.
    pub dropped_edges: usize,
    /// Anti-affinity rules removed from the repaired problem.
    pub dropped_rules: usize,
}

impl AdmissionReport {
    /// `true` when no defect of any kind was found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// `true` when at least one issue required mutating the problem
    /// (anything beyond [`RepairAction::Flagged`] advisories).
    pub fn needs_repair(&self) -> bool {
        self.issues
            .iter()
            .any(|i| i.action() != RepairAction::Flagged)
    }

    /// Ids of services that were quarantined.
    pub fn quarantined_services(&self) -> &[ServiceId] {
        &self.quarantined_services
    }
}

/// Gate 1: structural and semantic auditor for [`Problem`]s.
///
/// [`audit`](ProblemValidator::audit) reports defects without touching
/// the problem; [`admit`](ProblemValidator::admit) additionally builds a
/// repaired copy when (and only when) one is needed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProblemValidator;

impl ProblemValidator {
    /// A validator with default tolerances.
    pub fn new() -> Self {
        ProblemValidator
    }

    /// Audit `problem` and report every defect, without repairing.
    pub fn audit(&self, problem: &Problem) -> AdmissionReport {
        self.run(problem, None)
    }

    /// Audit `problem`; when repairs are needed, return the repaired copy.
    ///
    /// `None` means the input was admissible as-is (advisory
    /// [`RepairAction::Flagged`] issues may still be present in the
    /// report) — the healthy fast path performs no clone.
    pub fn admit(&self, problem: &Problem) -> (Option<Problem>, AdmissionReport) {
        let report = self.audit(problem);
        if !report.needs_repair() {
            return (None, report);
        }
        let mut repaired = problem.clone();
        let report = self.run(problem, Some(&mut repaired));
        (Some(repaired), report)
    }

    /// Single detection/repair pass. With `repair = None` only the report
    /// is produced; with `Some(out)` the defects are fixed in `out`
    /// (which must start as a clone of `problem`).
    fn run(&self, problem: &Problem, mut repair: Option<&mut Problem>) -> AdmissionReport {
        let mut report = AdmissionReport::default();
        let n = problem.services.len();

        // Services: dense ids, finite non-negative demand, sane priority.
        let mut quarantined = vec![false; n];
        for (i, svc) in problem.services.iter().enumerate() {
            if svc.id.idx() != i {
                report.issues.push(AdmissionIssue::MisnumberedService {
                    index: i,
                    found: svc.id.0,
                    action: RepairAction::Renumbered,
                });
                if let Some(out) = repair.as_deref_mut() {
                    out.services[i].id = ServiceId(i as u32);
                }
            }
            let demand_ok = svc
                .demand
                .0
                .iter()
                .all(|v| v.is_finite() && *v >= 0.0);
            if !demand_ok {
                quarantined[i] = true;
                report.issues.push(AdmissionIssue::CorruptServiceDemand {
                    service: ServiceId(i as u32),
                    action: RepairAction::Quarantined,
                });
                report.quarantined_services.push(ServiceId(i as u32));
                if let Some(out) = repair.as_deref_mut() {
                    out.services[i].demand = ResourceVec::ZERO;
                    out.services[i].replicas = 0;
                }
            }
            if !(svc.priority_weight.is_finite() && svc.priority_weight > 0.0) {
                report.issues.push(AdmissionIssue::CorruptPriorityWeight {
                    service: ServiceId(i as u32),
                    action: RepairAction::Clamped,
                });
                if let Some(out) = repair.as_deref_mut() {
                    out.services[i].priority_weight = 1.0;
                }
            }
        }

        // Machines: dense ids, finite non-negative capacity.
        for (i, m) in problem.machines.iter().enumerate() {
            if m.id.idx() != i {
                report.issues.push(AdmissionIssue::MisnumberedMachine {
                    index: i,
                    found: m.id.0,
                    action: RepairAction::Renumbered,
                });
                if let Some(out) = repair.as_deref_mut() {
                    out.machines[i].id = MachineId(i as u32);
                }
            }
            if m.capacity.0.iter().any(|v| !v.is_finite()) {
                report.issues.push(AdmissionIssue::CorruptMachineCapacity {
                    machine: MachineId(i as u32),
                    action: RepairAction::Quarantined,
                });
                report.quarantined_machines.push(MachineId(i as u32));
                if let Some(out) = repair.as_deref_mut() {
                    out.machines[i].capacity = ResourceVec::ZERO;
                }
            } else if m.capacity.0.iter().any(|v| *v < 0.0) {
                report.issues.push(AdmissionIssue::CorruptMachineCapacity {
                    machine: MachineId(i as u32),
                    action: RepairAction::Clamped,
                });
                if let Some(out) = repair.as_deref_mut() {
                    for v in out.machines[i].capacity.0.iter_mut() {
                        if *v < 0.0 {
                            *v = 0.0;
                        }
                    }
                }
            }
        }

        // Affinity edges: in-range, no self-loops, positive finite
        // weights, canonical a < b order, no duplicates, no quarantined
        // endpoints. Dropped edges are removed from the repaired copy in
        // one retain pass at the end.
        let mut drop_edge = vec![false; problem.affinity_edges.len()];
        let mut seen: HashSet<(ServiceId, ServiceId)> = HashSet::new();
        for (i, e) in problem.affinity_edges.iter().enumerate() {
            let defect = if e.a.idx() >= n || e.b.idx() >= n {
                Some(EdgeDefect::DanglingEndpoint)
            } else if e.a == e.b {
                Some(EdgeDefect::SelfLoop)
            } else if !e.weight.is_finite() {
                Some(EdgeDefect::NonFiniteWeight)
            } else if e.weight <= 0.0 {
                Some(EdgeDefect::NonPositiveWeight)
            } else if quarantined[e.a.idx()] || quarantined[e.b.idx()] {
                Some(EdgeDefect::QuarantinedEndpoint)
            } else {
                let key = if e.a < e.b { (e.a, e.b) } else { (e.b, e.a) };
                if !seen.insert(key) {
                    Some(EdgeDefect::Duplicate)
                } else if e.a > e.b {
                    report.issues.push(AdmissionIssue::CorruptAffinityEdge {
                        index: i,
                        defect: EdgeDefect::Unnormalized,
                        action: RepairAction::Clamped,
                    });
                    if let Some(out) = repair.as_deref_mut() {
                        out.affinity_edges[i] = AffinityEdge::new(e.b, e.a, e.weight);
                    }
                    None
                } else {
                    None
                }
            };
            if let Some(defect) = defect {
                drop_edge[i] = true;
                report.dropped_edges += 1;
                report.issues.push(AdmissionIssue::CorruptAffinityEdge {
                    index: i,
                    defect,
                    action: RepairAction::Dropped,
                });
            }
        }
        if let Some(out) = repair.as_deref_mut() {
            if report.dropped_edges > 0 {
                let mut i = 0;
                out.affinity_edges.retain(|_| {
                    let keep = !drop_edge[i];
                    i += 1;
                    keep
                });
            }
        }

        // Anti-affinity rules: known members, non-empty, satisfiable.
        let mut drop_rule = vec![false; problem.anti_affinity.len()];
        let mut filtered_members: Vec<(usize, Vec<ServiceId>)> = Vec::new();
        for (i, rule) in problem.anti_affinity.iter().enumerate() {
            let known: Vec<ServiceId> = rule
                .services
                .iter()
                .copied()
                .filter(|s| s.idx() < n)
                .collect();
            if known.len() < rule.services.len() {
                report.issues.push(AdmissionIssue::CorruptAntiAffinityRule {
                    index: i,
                    defect: RuleDefect::UnknownMembers,
                    action: RepairAction::Clamped,
                });
                filtered_members.push((i, known.clone()));
            }
            if known.is_empty() {
                drop_rule[i] = true;
                report.dropped_rules += 1;
                report.issues.push(AdmissionIssue::CorruptAntiAffinityRule {
                    index: i,
                    defect: RuleDefect::Empty,
                    action: RepairAction::Dropped,
                });
                continue;
            }
            let demands_placement = known
                .iter()
                .any(|s| !quarantined[s.idx()] && problem.services[s.idx()].replicas > 0);
            if rule.max_per_machine == 0 && demands_placement {
                drop_rule[i] = true;
                report.dropped_rules += 1;
                report.issues.push(AdmissionIssue::CorruptAntiAffinityRule {
                    index: i,
                    defect: RuleDefect::Unsatisfiable,
                    action: RepairAction::Dropped,
                });
            }
        }
        if let Some(out) = repair {
            for (i, members) in &filtered_members {
                out.anti_affinity[*i] = AntiAffinityRule {
                    services: members.clone(),
                    max_per_machine: out.anti_affinity[*i].max_per_machine,
                };
            }
            if report.dropped_rules > 0 {
                let mut i = 0;
                out.anti_affinity.retain(|_| {
                    let keep = !drop_rule[i];
                    i += 1;
                    keep
                });
            }
        }

        // Aggregate feasibility advisory: healthy demand vs repaired
        // capacity, per resource dimension.
        let mut demand = [0.0f64; NUM_RESOURCES];
        for (i, svc) in problem.services.iter().enumerate() {
            if quarantined[i] {
                continue;
            }
            let total = svc.total_demand();
            for (d, v) in demand.iter_mut().zip(total.0.iter()) {
                *d += v;
            }
        }
        let mut capacity = [0.0f64; NUM_RESOURCES];
        for m in &problem.machines {
            for (c, v) in capacity.iter_mut().zip(m.capacity.0.iter()) {
                // Use the post-repair view of capacity: non-finite and
                // negative components contribute nothing.
                if v.is_finite() && *v > 0.0 {
                    *c += v;
                }
            }
        }
        for kind in ResourceKind::ALL {
            let r = kind.idx();
            if demand[r] > capacity[r] + RESOURCE_EPS {
                report.issues.push(AdmissionIssue::CapacityShortfall {
                    kind,
                    demand: demand[r],
                    capacity: capacity[r],
                    action: RepairAction::Flagged,
                });
            }
        }

        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::FeatureMask;
    use crate::problem::ProblemBuilder;

    fn healthy_problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(3, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 5.0);
        b.add_anti_affinity(vec![s0, s1], 2);
        b.build().expect("healthy problem builds")
    }

    #[test]
    fn healthy_problem_is_clean_and_not_cloned() {
        let p = healthy_problem();
        let v = ProblemValidator::new();
        assert!(v.audit(&p).is_clean());
        let (repaired, report) = v.admit(&p);
        assert!(repaired.is_none());
        assert!(report.is_clean());
    }

    #[test]
    fn nan_demand_quarantines_service_and_incident_edges() {
        let mut p = healthy_problem();
        p.services[0].demand = ResourceVec::new(f64::NAN, 1.0, 0.0, 0.0);
        let (repaired, report) = ProblemValidator::new().admit(&p);
        let r = repaired.expect("repair required");
        assert_eq!(report.quarantined_services, vec![ServiceId(0)]);
        assert_eq!(r.services[0].replicas, 0);
        assert_eq!(r.services[0].demand, ResourceVec::ZERO);
        // the s0–s1 edge touched the quarantined service and is gone
        assert!(r.affinity_edges.is_empty());
        assert_eq!(report.dropped_edges, 1);
        // the healthy service is untouched
        assert_eq!(r.services[1], p.services[1]);
    }

    #[test]
    fn negative_demand_quarantines() {
        let mut p = healthy_problem();
        p.services[1].demand = ResourceVec::new(-2.0, 1.0, 0.0, 0.0);
        let (repaired, report) = ProblemValidator::new().admit(&p);
        assert_eq!(report.quarantined_services, vec![ServiceId(1)]);
        assert_eq!(repaired.expect("repaired").services[1].replicas, 0);
    }

    #[test]
    fn infinite_capacity_quarantines_machine() {
        let mut p = healthy_problem();
        p.machines[2].capacity = ResourceVec::new(f64::INFINITY, 8.0, 0.0, 0.0);
        let (repaired, report) = ProblemValidator::new().admit(&p);
        assert_eq!(report.quarantined_machines, vec![MachineId(2)]);
        assert_eq!(
            repaired.expect("repaired").machines[2].capacity,
            ResourceVec::ZERO
        );
    }

    #[test]
    fn negative_capacity_component_is_clamped_not_quarantined() {
        let mut p = healthy_problem();
        p.machines[0].capacity = ResourceVec::new(-4.0, 8.0, 0.0, 0.0);
        let (repaired, report) = ProblemValidator::new().admit(&p);
        assert!(report.quarantined_machines.is_empty());
        let r = repaired.expect("repaired");
        assert_eq!(r.machines[0].capacity, ResourceVec::new(0.0, 8.0, 0.0, 0.0));
    }

    #[test]
    fn misnumbered_ids_are_renumbered() {
        let mut p = healthy_problem();
        p.services[1].id = ServiceId(0); // duplicate of services[0]
        p.machines[0].id = MachineId(9); // out of range
        let (repaired, report) = ProblemValidator::new().admit(&p);
        let r = repaired.expect("repaired");
        assert_eq!(r.services[1].id, ServiceId(1));
        assert_eq!(r.machines[0].id, MachineId(0));
        assert!(report.issues.iter().any(|i| matches!(
            i,
            AdmissionIssue::MisnumberedService { index: 1, found: 0, .. }
        )));
        assert!(report.issues.iter().any(|i| matches!(
            i,
            AdmissionIssue::MisnumberedMachine { index: 0, found: 9, .. }
        )));
    }

    #[test]
    fn corrupt_priority_weight_reset_to_neutral() {
        let mut p = healthy_problem();
        p.services[0].priority_weight = f64::NAN;
        let (repaired, _) = ProblemValidator::new().admit(&p);
        assert_eq!(repaired.expect("repaired").services[0].priority_weight, 1.0);
    }

    #[test]
    fn defective_edges_are_dropped() {
        let mut p = healthy_problem();
        p.affinity_edges.push(AffinityEdge {
            a: ServiceId(0),
            b: ServiceId(7), // dangling
            weight: 1.0,
        });
        p.affinity_edges.push(AffinityEdge {
            a: ServiceId(1),
            b: ServiceId(1), // self-loop
            weight: 1.0,
        });
        p.affinity_edges.push(AffinityEdge {
            a: ServiceId(0),
            b: ServiceId(1), // duplicate of the healthy edge
            weight: f64::NAN,
        });
        let (repaired, report) = ProblemValidator::new().admit(&p);
        let r = repaired.expect("repaired");
        assert_eq!(r.affinity_edges.len(), 1);
        assert_eq!(r.affinity_edges[0].weight, 5.0);
        assert_eq!(report.dropped_edges, 3);
    }

    #[test]
    fn duplicate_edge_detected_in_either_orientation() {
        let mut p = healthy_problem();
        p.affinity_edges.push(AffinityEdge {
            a: ServiceId(1),
            b: ServiceId(0),
            weight: 2.0,
        });
        let (repaired, report) = ProblemValidator::new().admit(&p);
        assert_eq!(repaired.expect("repaired").affinity_edges.len(), 1);
        assert!(report.issues.iter().any(|i| matches!(
            i,
            AdmissionIssue::CorruptAffinityEdge {
                defect: EdgeDefect::Duplicate,
                ..
            }
        )));
    }

    #[test]
    fn unnormalized_edge_is_reoriented_in_place() {
        let mut p = healthy_problem();
        p.affinity_edges[0] = AffinityEdge {
            a: ServiceId(1),
            b: ServiceId(0),
            weight: 5.0,
        };
        let (repaired, report) = ProblemValidator::new().admit(&p);
        let r = repaired.expect("repaired");
        assert_eq!(r.affinity_edges.len(), 1);
        assert_eq!(r.affinity_edges[0].a, ServiceId(0));
        assert_eq!(r.affinity_edges[0].b, ServiceId(1));
        assert_eq!(report.dropped_edges, 0);
    }

    #[test]
    fn zero_cap_anti_affinity_rule_is_dropped() {
        let mut p = healthy_problem();
        p.anti_affinity[0].max_per_machine = 0;
        let (repaired, report) = ProblemValidator::new().admit(&p);
        assert!(repaired.expect("repaired").anti_affinity.is_empty());
        assert!(report.issues.iter().any(|i| matches!(
            i,
            AdmissionIssue::CorruptAntiAffinityRule {
                defect: RuleDefect::Unsatisfiable,
                ..
            }
        )));
    }

    #[test]
    fn rule_with_unknown_members_is_filtered_then_kept() {
        let mut p = healthy_problem();
        p.anti_affinity[0].services.push(ServiceId(42));
        let (repaired, report) = ProblemValidator::new().admit(&p);
        let r = repaired.expect("repaired");
        assert_eq!(r.anti_affinity.len(), 1);
        assert_eq!(
            r.anti_affinity[0].services,
            vec![ServiceId(0), ServiceId(1)]
        );
        assert_eq!(report.dropped_rules, 0);
    }

    #[test]
    fn rule_with_only_unknown_members_is_dropped() {
        let mut p = healthy_problem();
        p.anti_affinity[0].services = vec![ServiceId(40), ServiceId(41)];
        let (repaired, report) = ProblemValidator::new().admit(&p);
        assert!(repaired.expect("repaired").anti_affinity.is_empty());
        assert_eq!(report.dropped_rules, 1);
    }

    #[test]
    fn capacity_shortfall_is_advisory_only() {
        let mut p = healthy_problem();
        for m in &mut p.machines {
            m.capacity = ResourceVec::cpu_mem(0.5, 0.5);
        }
        let (repaired, report) = ProblemValidator::new().admit(&p);
        assert!(repaired.is_none(), "advisories never trigger a repair clone");
        assert!(!report.is_clean());
        assert!(!report.needs_repair());
        assert!(report.issues.iter().any(|i| matches!(
            i,
            AdmissionIssue::CapacityShortfall {
                kind: ResourceKind::Cpu,
                ..
            }
        )));
    }

    #[test]
    fn report_serializes_to_json() {
        let mut p = healthy_problem();
        p.services[0].demand = ResourceVec::new(f64::NAN, 1.0, 0.0, 0.0);
        let (_, report) = ProblemValidator::new().admit(&p);
        let json = serde_json::to_string(&report).expect("report serializes");
        assert!(json.contains("CorruptServiceDemand"));
        assert!(json.contains("quarantined_services"));
    }

    #[test]
    fn repaired_problem_is_admissible() {
        let mut p = healthy_problem();
        p.services[0].demand = ResourceVec::new(f64::NAN, 1.0, 0.0, 0.0);
        p.machines[1].capacity = ResourceVec::new(-1.0, 4.0, 0.0, 0.0);
        p.anti_affinity[0].max_per_machine = 0;
        p.affinity_edges.push(AffinityEdge {
            a: ServiceId(0),
            b: ServiceId(0),
            weight: 1.0,
        });
        let v = ProblemValidator::new();
        let (repaired, _) = v.admit(&p);
        let r = repaired.expect("repaired");
        let (again, second) = v.admit(&r);
        assert!(again.is_none(), "repair is idempotent: {second:?}");
        assert!(!second.needs_repair());
    }
}
