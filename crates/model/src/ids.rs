//! Strongly-typed identifiers for the entities of a RASA problem.
//!
//! Identifiers are dense indices into the owning [`Problem`](crate::Problem):
//! `ServiceId(k)` is the `k`-th service of the problem's service list, which
//! lets hot paths index slices directly instead of hashing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a service within a [`Problem`](crate::Problem).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceId(pub u32);

/// Index of a machine within a [`Problem`](crate::Problem).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(pub u32);

/// Identity of one concrete container: the `replica`-th container of a
/// service. Replicas of a service are homogeneous (Section II-A of the
/// paper), so this identity only matters to the migration planner, which
/// must track individual delete/create commands.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContainerId {
    /// Owning service.
    pub service: ServiceId,
    /// Replica index in `0..d_s`.
    pub replica: u32,
}

impl ServiceId {
    /// The dense index as `usize`, for slice indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl MachineId {
    /// The dense index as `usize`, for slice indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ContainerId {
    /// Construct the identity of replica `replica` of `service`.
    pub fn new(service: ServiceId, replica: u32) -> Self {
        Self { service, replica }
    }
}

impl fmt::Debug for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Debug for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Debug for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.service, self.replica)
    }
}

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.service, self.replica)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_id_round_trip() {
        let id = ServiceId(7);
        assert_eq!(id.idx(), 7);
        assert_eq!(format!("{id}"), "s7");
        assert_eq!(format!("{id:?}"), "s7");
    }

    #[test]
    fn machine_id_round_trip() {
        let id = MachineId(11);
        assert_eq!(id.idx(), 11);
        assert_eq!(format!("{id}"), "m11");
    }

    #[test]
    fn container_id_ordering_groups_by_service() {
        let a = ContainerId::new(ServiceId(1), 5);
        let b = ContainerId::new(ServiceId(2), 0);
        assert!(a < b, "containers sort by service first");
        assert_eq!(format!("{a}"), "s1#5");
    }

    #[test]
    fn ids_are_copy_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ServiceId(3));
        set.insert(ServiceId(3));
        assert_eq!(set.len(), 1);
    }
}
