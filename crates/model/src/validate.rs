//! Constraint validation for placements (Expressions (3)–(6)).

use crate::ids::{MachineId, ServiceId};
use crate::placement::Placement;
use crate::problem::Problem;
use crate::resources::ResourceKind;
use std::fmt;

/// Default slack used when comparing accumulated float resource usage
/// against capacities.
pub const RESOURCE_EPS: f64 = 1e-6;

/// What a placement violates.
#[derive(Clone, Debug, PartialEq)]
pub enum ViolationKind {
    /// Expression (3): `Σ_m x_{s,m} != d_s`.
    Sla {
        /// The under- or over-provisioned service.
        service: ServiceId,
        /// Containers the placement provides.
        placed: u32,
        /// Containers the SLA requires (`d_s`).
        required: u32,
    },
    /// Expression (4): machine capacity exceeded in some resource.
    Resource {
        /// The overloaded machine.
        machine: MachineId,
        /// The violated resource dimension.
        kind: ResourceKind,
        /// Accumulated demand.
        used: f64,
        /// Machine capacity.
        capacity: f64,
    },
    /// Expression (5): anti-affinity rule `rule_idx` exceeded on a machine.
    AntiAffinity {
        /// Index of the rule in [`Problem::anti_affinity`].
        rule_idx: usize,
        /// The machine hosting too many constrained containers.
        machine: MachineId,
        /// Containers from the rule's service set on the machine.
        count: u32,
        /// `h_k`.
        max: u32,
    },
    /// Expression (6): containers placed on an incompatible machine.
    Schedulable {
        /// The service whose containers are misplaced.
        service: ServiceId,
        /// The incompatible machine.
        machine: MachineId,
    },
}

/// A single constraint violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which constraint is violated and by how much.
    pub kind: ViolationKind,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ViolationKind::Sla {
                service,
                placed,
                required,
            } => write!(
                f,
                "SLA: {service} has {placed}/{required} containers placed"
            ),
            ViolationKind::Resource {
                machine,
                kind,
                used,
                capacity,
            } => write!(
                f,
                "resource: {machine} {} used {used:.3} > capacity {capacity:.3}",
                kind.label()
            ),
            ViolationKind::AntiAffinity {
                rule_idx,
                machine,
                count,
                max,
            } => write!(
                f,
                "anti-affinity rule #{rule_idx}: {machine} hosts {count} > h_k = {max}"
            ),
            ViolationKind::Schedulable { service, machine } => {
                write!(f, "schedulable: {service} cannot run on {machine}")
            }
        }
    }
}

/// Validate `placement` against every constraint of `problem`.
///
/// Returns all violations (empty means feasible). `check_sla = false`
/// permits partial placements — used mid-migration, where the paper relaxes
/// SLAs to 75% alive, and for subproblem solutions where a small number of
/// failed deployments is acceptable (Section IV-B5).
pub fn validate(problem: &Problem, placement: &Placement, check_sla: bool) -> Vec<Violation> {
    let mut violations = Vec::new();

    if check_sla {
        for svc in &problem.services {
            let placed = placement.placed_count(svc.id);
            if placed != svc.replicas {
                violations.push(Violation {
                    kind: ViolationKind::Sla {
                        service: svc.id,
                        placed,
                        required: svc.replicas,
                    },
                });
            }
        }
    }

    // Resources (4).
    let usage = placement.machine_usage(problem);
    for (mi, used) in usage.iter().enumerate() {
        let cap = &problem.machines[mi].capacity;
        for kind in ResourceKind::ALL {
            if used[kind] > cap[kind] + RESOURCE_EPS {
                violations.push(Violation {
                    kind: ViolationKind::Resource {
                        machine: MachineId(mi as u32),
                        kind,
                        used: used[kind],
                        capacity: cap[kind],
                    },
                });
            }
        }
    }

    // Anti-affinity (5).
    for (rule_idx, rule) in problem.anti_affinity.iter().enumerate() {
        let mut per_machine: std::collections::BTreeMap<MachineId, u32> = Default::default();
        for &s in &rule.services {
            for (m, c) in placement.machines_of(s) {
                *per_machine.entry(m).or_insert(0) += c;
            }
        }
        for (m, count) in per_machine {
            if count > rule.max_per_machine {
                violations.push(Violation {
                    kind: ViolationKind::AntiAffinity {
                        rule_idx,
                        machine: m,
                        count,
                        max: rule.max_per_machine,
                    },
                });
            }
        }
    }

    // Schedulable (6).
    for (s, m, _c) in placement.iter() {
        if !problem.schedulable(s, m) {
            violations.push(Violation {
                kind: ViolationKind::Schedulable {
                    service: s,
                    machine: m,
                },
            });
        }
    }

    violations
}

/// `true` if `placement` satisfies every constraint (including SLA).
pub fn is_feasible(problem: &Problem, placement: &Placement) -> bool {
    validate(problem, placement, true).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::FeatureMask;
    use crate::problem::ProblemBuilder;
    use crate::resources::ResourceVec;

    fn problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(4.0, 4.0));
        let s1 = b.add_service_full(
            crate::Service::new(ServiceId(0), "b", 2, ResourceVec::cpu_mem(1.0, 1.0))
                .with_features(FeatureMask::bit(1)),
        );
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::bit(1)); // m0
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY); // m1
        b.add_anti_affinity(vec![s0, s1], 2);
        b.build().unwrap()
    }

    #[test]
    fn feasible_placement_passes() {
        let p = problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(1), 1);
        x.add(ServiceId(0), MachineId(0), 1);
        x.add(ServiceId(1), MachineId(0), 1);
        // anti-affinity: m0 hosts 2 == h_k OK. Need s1 second replica elsewhere
        // but m1 lacks feature bit 1, so place it on m0 -> would hit anti-affinity.
        // Keep SLA check off to test the rest first.
        let v = validate(&p, &x, false);
        assert!(v.is_empty(), "{v:?}");
        assert!(!is_feasible(&p, &x), "SLA short for s1");
    }

    #[test]
    fn sla_violation_detected() {
        let p = problem();
        let x = Placement::empty_for(&p);
        let v = validate(&p, &x, true);
        assert_eq!(v.len(), 2);
        assert!(matches!(
            v[0].kind,
            ViolationKind::Sla {
                placed: 0,
                required: 2,
                ..
            }
        ));
    }

    #[test]
    fn resource_violation_detected_per_dimension() {
        let p = problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(1), 2); // 8 cpu OK, 8 mem OK (exact fit)
        assert!(validate(&p, &x, false).is_empty());
        x.add(ServiceId(1), MachineId(1), 1); // pushes to 9 — but also schedulable violation
        let v = validate(&p, &x, false);
        let kinds: Vec<_> = v.iter().map(|v| &v.kind).collect();
        assert!(kinds.iter().any(|k| matches!(
            k,
            ViolationKind::Resource {
                kind: ResourceKind::Cpu,
                ..
            }
        )));
        assert!(kinds.iter().any(|k| matches!(
            k,
            ViolationKind::Resource {
                kind: ResourceKind::Memory,
                ..
            }
        )));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, ViolationKind::Schedulable { .. })));
    }

    #[test]
    fn anti_affinity_violation_detected() {
        let p = problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(0), 1);
        x.add(ServiceId(1), MachineId(0), 2); // total 3 > h_k = 2
        let v = validate(&p, &x, false);
        assert!(v.iter().any(|v| matches!(
            v.kind,
            ViolationKind::AntiAffinity {
                count: 3,
                max: 2,
                ..
            }
        )));
    }

    #[test]
    fn schedulable_violation_detected() {
        let p = problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(1), MachineId(1), 1); // s1 requires bit 1; m1 lacks it
        let v = validate(&p, &x, false);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0].kind, ViolationKind::Schedulable { .. }));
        assert!(v[0].to_string().contains("cannot run"));
    }

    #[test]
    fn exact_capacity_fit_is_feasible() {
        let p = problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(0), 2); // exactly 8/8 — and anti-affinity count 2 == max
        let v = validate(&p, &x, false);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn violation_display() {
        let v = Violation {
            kind: ViolationKind::Sla {
                service: ServiceId(1),
                placed: 1,
                required: 3,
            },
        };
        assert_eq!(v.to_string(), "SLA: s1 has 1/3 containers placed");
    }
}
