#![warn(missing_docs)]

//! # rasa-model
//!
//! Problem model for **RASA** (Resource Allocation with Service Affinity),
//! reproducing the formulation of Chen et al., *"Resource Allocation with
//! Service Affinity in Large-Scale Cloud Environments"* (ICDE 2024),
//! Section II.
//!
//! The crate defines the static description of a cluster scheduling problem:
//!
//! * [`Service`]s, each of which must run a fixed number of homogeneous
//!   containers (the SLA constraint, Expression (3) in the paper),
//! * [`Machine`]s with multi-dimensional [`ResourceVec`] capacities
//!   (Expression (4)),
//! * [`AntiAffinityRule`]s capping how many containers from a service set a
//!   single machine may host (Expression (5)),
//! * schedulable constraints expressed through feature masks
//!   ([`FeatureMask`], Expression (6)),
//! * the weighted service [`AffinityEdge`] list whose localized fraction the
//!   optimizer maximizes (Definition 1 / Expression (2)),
//! * [`Placement`]s (the decision matrix `x_{s,m}`) together with exact
//!   evaluation of the *gained affinity* objective and full constraint
//!   validation.
//!
//! Everything downstream — the partitioner, the MIP/column-generation
//! solvers, the baselines and the simulator — consumes this crate.

pub mod admission;
pub mod affinity;
pub mod error;
pub mod ids;
pub mod machine;
pub mod objective;
pub mod placement;
pub mod problem;
pub mod resources;
pub mod service;
pub mod validate;

pub use admission::{
    AdmissionIssue, AdmissionReport, EdgeDefect, ProblemValidator, RepairAction, RuleDefect,
};
pub use affinity::{AffinityEdge, EdgeId};
pub use error::{ModelError, RasaError};
pub use ids::{ContainerId, MachineId, ServiceId};
pub use machine::{FeatureMask, Machine, MachineGroup};
pub use objective::{gained_affinity, gained_affinity_of_edge, normalized_gained_affinity};
pub use placement::{ContainerAssignment, Placement};
pub use problem::{AntiAffinityRule, Problem, ProblemBuilder, ProblemStats, SubproblemMapping};
pub use resources::{ResourceKind, ResourceVec, NUM_RESOURCES};
pub use service::Service;
pub use validate::{validate, Violation, ViolationKind};
