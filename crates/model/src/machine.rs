//! Machines, feature masks (schedulable constraints) and machine groups.

use crate::ids::MachineId;
use crate::resources::ResourceVec;
use serde::{Deserialize, Serialize};

/// A bitset of up to 64 machine features (IPv4/IPv6 stack, GPU, local SSD,
/// kernel version, availability zone tags, ...).
///
/// The paper models schedulability as a dense binary matrix `b_{s,m}`
/// (Expression (6)). In production such matrices arise from compatibility
/// requirements ("machine `m` does not support the IPv4 network stack"), so
/// we represent them generatively: a machine *provides* a feature set, a
/// service *requires* one, and `b_{s,m} = 1 ⇔ required ⊆ provided`. This is
/// equivalent in expressive power for block-structured `b` (the case the
/// compatibility-partitioning stage exploits) and keeps the model `O(N + M)`
/// instead of `O(N·M)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct FeatureMask(pub u64);

impl FeatureMask {
    /// No features.
    pub const EMPTY: FeatureMask = FeatureMask(0);

    /// A mask with the single feature `bit` set.
    pub fn bit(bit: u32) -> FeatureMask {
        assert!(bit < 64, "feature bits are limited to 0..64");
        FeatureMask(1u64 << bit)
    }

    /// Union of the two masks.
    #[inline]
    pub fn union(self, other: FeatureMask) -> FeatureMask {
        FeatureMask(self.0 | other.0)
    }

    /// `true` if every feature in `self` is present in `provided`.
    #[inline]
    pub fn subset_of(self, provided: FeatureMask) -> bool {
        self.0 & !provided.0 == 0
    }

    /// Number of features set.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }
}

/// A physical machine (Kubernetes node) with a total capacity `R^M_{r,m}`
/// per resource type and a provided feature set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Dense id; equals this machine's index in [`Problem::machines`](crate::Problem::machines).
    pub id: MachineId,
    /// Total capacity per resource (Expression (4) right-hand side).
    pub capacity: ResourceVec,
    /// Features this machine provides; a service is schedulable here iff its
    /// required features are a subset.
    pub features: FeatureMask,
}

impl Machine {
    /// Construct a machine.
    pub fn new(id: MachineId, capacity: ResourceVec, features: FeatureMask) -> Self {
        Machine {
            id,
            capacity,
            features,
        }
    }

    /// `b_{s,m}` for a service with requirement mask `required`.
    #[inline]
    pub fn can_host(&self, required: FeatureMask) -> bool {
        required.subset_of(self.features)
    }
}

/// A group of identical machines (same capacity and feature set).
///
/// The paper's formulation indexes gained affinity by *machine group*
/// (`a_{s,s',g}`, Table I), i.e. it aggregates decision variables over
/// interchangeable machines — the same variable-aggregation technique RAS
/// (SOSP'21) uses. Groups are produced by
/// [`Problem::machine_groups`](crate::Problem::machine_groups).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineGroup {
    /// Capacity of each member machine.
    pub capacity: ResourceVec,
    /// Feature set of each member machine.
    pub features: FeatureMask,
    /// The member machines (ids into the owning problem).
    pub members: Vec<MachineId>,
}

impl MachineGroup {
    /// Number of machines in the group.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the group has no members (never produced by grouping).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Aggregate capacity of the whole group.
    pub fn total_capacity(&self) -> ResourceVec {
        self.capacity * self.members.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_subset_semantics() {
        let ipv4 = FeatureMask::bit(0);
        let ipv6 = FeatureMask::bit(1);
        let gpu = FeatureMask::bit(5);
        let node = ipv4.union(gpu);
        assert!(ipv4.subset_of(node));
        assert!(gpu.subset_of(node));
        assert!(!ipv6.subset_of(node));
        assert!(!ipv4.union(ipv6).subset_of(node));
        assert!(
            FeatureMask::EMPTY.subset_of(node),
            "no requirements always schedulable"
        );
    }

    #[test]
    fn machine_can_host_matches_mask_logic() {
        let m = Machine::new(
            MachineId(0),
            ResourceVec::cpu_mem(32_000.0, 131_072.0),
            FeatureMask::bit(0),
        );
        assert!(m.can_host(FeatureMask::EMPTY));
        assert!(m.can_host(FeatureMask::bit(0)));
        assert!(!m.can_host(FeatureMask::bit(1)));
    }

    #[test]
    #[should_panic(expected = "feature bits")]
    fn feature_bit_out_of_range_panics() {
        let _ = FeatureMask::bit(64);
    }

    #[test]
    fn group_total_capacity() {
        let g = MachineGroup {
            capacity: ResourceVec::cpu_mem(10.0, 20.0),
            features: FeatureMask::EMPTY,
            members: vec![MachineId(0), MachineId(3), MachineId(4)],
        };
        assert_eq!(g.len(), 3);
        assert_eq!(g.total_capacity(), ResourceVec::cpu_mem(30.0, 60.0));
    }
}
