//! Multi-dimensional resource vectors.
//!
//! The paper's resource constraints (Expression (4)) range over a set of
//! resource types `R`; in practice ByteDance consider CPU, memory, network
//! and disk (Section II-C). We model exactly those four dimensions with a
//! fixed-size vector, which keeps capacity arithmetic allocation-free on the
//! scheduler hot path.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub, SubAssign};

/// Number of resource dimensions tracked per container / machine.
pub const NUM_RESOURCES: usize = 4;

/// The resource dimensions the scheduler accounts for.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU, in millicores.
    Cpu,
    /// Memory, in MiB.
    Memory,
    /// Network bandwidth, in Mbit/s.
    Network,
    /// Disk, in GiB.
    Disk,
}

impl ResourceKind {
    /// All resource kinds, in index order.
    pub const ALL: [ResourceKind; NUM_RESOURCES] = [
        ResourceKind::Cpu,
        ResourceKind::Memory,
        ResourceKind::Network,
        ResourceKind::Disk,
    ];

    /// The dense index of this kind within a [`ResourceVec`].
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Memory => 1,
            ResourceKind::Network => 2,
            ResourceKind::Disk => 3,
        }
    }

    /// Short lowercase label, used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "mem",
            ResourceKind::Network => "net",
            ResourceKind::Disk => "disk",
        }
    }
}

/// A point in resource space: either a container's request `R^S_{r,s}` or a
/// machine's capacity `R^M_{r,m}`.
#[derive(Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVec(pub [f64; NUM_RESOURCES]);

impl ResourceVec {
    /// The zero vector.
    pub const ZERO: ResourceVec = ResourceVec([0.0; NUM_RESOURCES]);

    /// Build from explicit dimensions.
    pub fn new(cpu: f64, memory: f64, network: f64, disk: f64) -> Self {
        ResourceVec([cpu, memory, network, disk])
    }

    /// Convenience constructor for CPU/memory-only workloads (network and
    /// disk requests of zero).
    pub fn cpu_mem(cpu: f64, memory: f64) -> Self {
        ResourceVec([cpu, memory, 0.0, 0.0])
    }

    /// CPU millicores.
    #[inline]
    pub fn cpu(&self) -> f64 {
        self.0[0]
    }

    /// Memory MiB.
    #[inline]
    pub fn memory(&self) -> f64 {
        self.0[1]
    }

    /// Network Mbit/s.
    #[inline]
    pub fn network(&self) -> f64 {
        self.0[2]
    }

    /// Disk GiB.
    #[inline]
    pub fn disk(&self) -> f64 {
        self.0[3]
    }

    /// `true` if every dimension of `self` is `<=` the corresponding
    /// dimension of `cap` (within `eps` slack to absorb float accumulation).
    #[inline]
    pub fn fits_within(&self, cap: &ResourceVec, eps: f64) -> bool {
        self.0
            .iter()
            .zip(cap.0.iter())
            .all(|(need, have)| *need <= *have + eps)
    }

    /// `true` if all dimensions are `>= 0` (within `eps`).
    #[inline]
    pub fn is_non_negative(&self, eps: f64) -> bool {
        self.0.iter().all(|v| *v >= -eps)
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = [0.0; NUM_RESOURCES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a.max(*b);
        }
        ResourceVec(out)
    }

    /// The largest utilization fraction `self[r] / cap[r]` over dimensions
    /// where `cap[r] > 0`. Dimensions with zero capacity but positive demand
    /// yield `f64::INFINITY`.
    pub fn dominant_share(&self, cap: &ResourceVec) -> f64 {
        let mut worst: f64 = 0.0;
        for r in 0..NUM_RESOURCES {
            let need = self.0[r];
            let have = cap.0[r];
            if need <= 0.0 {
                continue;
            }
            worst = worst.max(if have > 0.0 {
                need / have
            } else {
                f64::INFINITY
            });
        }
        worst
    }

    /// Sum of all dimensions after normalizing each by `scale`'s
    /// corresponding dimension; a scalar "size" used by packing heuristics.
    pub fn normalized_magnitude(&self, scale: &ResourceVec) -> f64 {
        let mut total = 0.0;
        for r in 0..NUM_RESOURCES {
            if scale.0[r] > 0.0 {
                total += self.0[r] / scale.0[r];
            }
        }
        total
    }
}

impl Index<ResourceKind> for ResourceVec {
    type Output = f64;
    #[inline]
    fn index(&self, kind: ResourceKind) -> &f64 {
        &self.0[kind.idx()]
    }
}

impl IndexMut<ResourceKind> for ResourceVec {
    #[inline]
    fn index_mut(&mut self, kind: ResourceKind) -> &mut f64 {
        &mut self.0[kind.idx()]
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    fn add(self, rhs: ResourceVec) -> ResourceVec {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, rhs: ResourceVec) {
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a += *b;
        }
    }
}

impl Sub for ResourceVec {
    type Output = ResourceVec;
    fn sub(self, rhs: ResourceVec) -> ResourceVec {
        let mut out = self;
        out -= rhs;
        out
    }
}

impl SubAssign for ResourceVec {
    fn sub_assign(&mut self, rhs: ResourceVec) {
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a -= *b;
        }
    }
}

impl Mul<f64> for ResourceVec {
    type Output = ResourceVec;
    fn mul(self, k: f64) -> ResourceVec {
        let mut out = self;
        for a in out.0.iter_mut() {
            *a *= k;
        }
        out
    }
}

impl fmt::Debug for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[cpu={} mem={} net={} disk={}]",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_component_wise() {
        let a = ResourceVec::new(1.0, 2.0, 3.0, 4.0);
        let b = ResourceVec::new(0.5, 0.5, 0.5, 0.5);
        assert_eq!(a + b, ResourceVec::new(1.5, 2.5, 3.5, 4.5));
        assert_eq!(a - b, ResourceVec::new(0.5, 1.5, 2.5, 3.5));
        assert_eq!(a * 2.0, ResourceVec::new(2.0, 4.0, 6.0, 8.0));
    }

    #[test]
    fn fits_within_respects_every_dimension() {
        let cap = ResourceVec::new(10.0, 10.0, 10.0, 10.0);
        assert!(ResourceVec::new(10.0, 1.0, 0.0, 0.0).fits_within(&cap, 1e-9));
        assert!(!ResourceVec::new(10.1, 1.0, 0.0, 0.0).fits_within(&cap, 1e-9));
        // Violation in a later dimension is still a violation.
        assert!(!ResourceVec::new(1.0, 1.0, 1.0, 11.0).fits_within(&cap, 1e-9));
    }

    #[test]
    fn fits_within_eps_tolerates_float_noise() {
        let cap = ResourceVec::new(1.0, 1.0, 1.0, 1.0);
        let need = ResourceVec::new(1.0 + 1e-12, 1.0, 1.0, 1.0);
        assert!(need.fits_within(&cap, 1e-9));
    }

    #[test]
    fn dominant_share_finds_bottleneck() {
        let cap = ResourceVec::new(100.0, 200.0, 50.0, 10.0);
        let need = ResourceVec::new(50.0, 20.0, 40.0, 1.0);
        // network: 40/50 = 0.8 is the bottleneck
        assert!((need.dominant_share(&cap) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dominant_share_zero_capacity_is_infinite() {
        let cap = ResourceVec::new(100.0, 0.0, 0.0, 0.0);
        let need = ResourceVec::new(1.0, 1.0, 0.0, 0.0);
        assert_eq!(need.dominant_share(&cap), f64::INFINITY);
    }

    #[test]
    fn dominant_share_of_zero_demand_is_zero() {
        let cap = ResourceVec::new(1.0, 1.0, 1.0, 1.0);
        assert_eq!(ResourceVec::ZERO.dominant_share(&cap), 0.0);
    }

    #[test]
    fn kind_indexing() {
        let mut v = ResourceVec::ZERO;
        v[ResourceKind::Network] = 7.0;
        assert_eq!(v.network(), 7.0);
        assert_eq!(v[ResourceKind::Network], 7.0);
        assert_eq!(ResourceKind::Disk.label(), "disk");
    }

    #[test]
    fn normalized_magnitude_skips_zero_scale_dims() {
        let scale = ResourceVec::new(10.0, 0.0, 0.0, 0.0);
        let v = ResourceVec::new(5.0, 100.0, 3.0, 3.0);
        assert!((v.normalized_magnitude(&scale) - 0.5).abs() < 1e-12);
    }
}
