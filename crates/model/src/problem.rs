//! The full RASA problem instance: services, machines, affinity graph and
//! scheduling constraints (Section II-C, Expressions (2)–(9)).

use crate::affinity::{AffinityEdge, EdgeId};
use crate::error::ModelError;
use crate::ids::{MachineId, ServiceId};
use crate::machine::{FeatureMask, Machine, MachineGroup};
use crate::resources::ResourceVec;
use crate::service::Service;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An anti-affinity constraint (Expression (5)): across the service set
/// `services` (`A_k`), any single machine may host at most
/// `max_per_machine` (`h_k`) containers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AntiAffinityRule {
    /// `A_k`: the constrained service set.
    pub services: Vec<ServiceId>,
    /// `h_k`: per-machine cap for containers drawn from `services`.
    pub max_per_machine: u32,
}

/// An immutable RASA problem instance.
///
/// Construct with [`ProblemBuilder`], which validates referential integrity
/// (edge endpoints, anti-affinity members) and normalizes edges.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Problem {
    /// All services; `services[k].id == ServiceId(k)`.
    pub services: Vec<Service>,
    /// All machines; `machines[k].id == MachineId(k)`.
    pub machines: Vec<Machine>,
    /// Affinity edges, deduplicated, endpoints normalized (`a < b`).
    pub affinity_edges: Vec<AffinityEdge>,
    /// Anti-affinity rules.
    pub anti_affinity: Vec<AntiAffinityRule>,
}

/// Summary statistics of a problem, used by reports and Table II.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProblemStats {
    /// `N`: number of services.
    pub services: usize,
    /// Total containers `Σ d_s`.
    pub containers: u64,
    /// `M`: number of machines.
    pub machines: usize,
    /// `|E|`: number of affinity edges.
    pub edges: usize,
    /// `Σ w_e`: total affinity before normalization.
    pub total_affinity: f64,
    /// Number of distinct machine groups (identical capacity + features).
    pub machine_groups: usize,
}

impl Problem {
    /// `N`, the number of services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// `M`, the number of machines.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// Total affinity `Σ_{(s,s') ∈ E} w_{s,s'}` (before the paper's
    /// normalization to 1.0). Zero for problems with no edges.
    pub fn total_affinity(&self) -> f64 {
        self.affinity_edges.iter().map(|e| e.weight).sum()
    }

    /// Total affinity of a single service,
    /// `T(s) = Σ_{s' ∈ N(s)} w_{s,s'}` (Section IV-B2).
    pub fn service_total_affinity(&self, s: ServiceId) -> f64 {
        self.affinity_edges
            .iter()
            .filter(|e| e.touches(s))
            .map(|e| e.weight)
            .sum()
    }

    /// `T(s)` for every service in one pass.
    pub fn all_service_total_affinities(&self) -> Vec<f64> {
        let mut t = vec![0.0; self.services.len()];
        for e in &self.affinity_edges {
            t[e.a.idx()] += e.weight;
            t[e.b.idx()] += e.weight;
        }
        t
    }

    /// `b_{s,m}`: can machine `m` host containers of service `s`?
    #[inline]
    pub fn schedulable(&self, s: ServiceId, m: MachineId) -> bool {
        self.machines[m.idx()].can_host(self.services[s.idx()].required_features)
    }

    /// Group machines with identical `(capacity, features)` into
    /// [`MachineGroup`]s, ordered by first occurrence. This realizes the
    /// paper's machine-group index `g` (Table I).
    pub fn machine_groups(&self) -> Vec<MachineGroup> {
        // f64 capacities come from generators/traces and compare exactly for
        // machines of the same SKU; keying on bit patterns is safe here.
        let mut index: HashMap<([u64; crate::NUM_RESOURCES], FeatureMask), usize> = HashMap::new();
        let mut groups: Vec<MachineGroup> = Vec::new();
        for m in &self.machines {
            let key = (m.capacity.0.map(f64::to_bits), m.features);
            let gi = *index.entry(key).or_insert_with(|| {
                groups.push(MachineGroup {
                    capacity: m.capacity,
                    features: m.features,
                    members: Vec::new(),
                });
                groups.len() - 1
            });
            groups[gi].members.push(m.id);
        }
        groups
    }

    /// Edges incident to each service: `adjacency()[s]` lists `EdgeId`s.
    pub fn edge_adjacency(&self) -> Vec<Vec<EdgeId>> {
        let mut adj = vec![Vec::new(); self.services.len()];
        for (i, e) in self.affinity_edges.iter().enumerate() {
            adj[e.a.idx()].push(EdgeId(i as u32));
            adj[e.b.idx()].push(EdgeId(i as u32));
        }
        adj
    }

    /// Summary statistics.
    pub fn stats(&self) -> ProblemStats {
        ProblemStats {
            services: self.services.len(),
            containers: self.services.iter().map(|s| u64::from(s.replicas)).sum(),
            machines: self.machines.len(),
            edges: self.affinity_edges.len(),
            total_affinity: self.total_affinity(),
            machine_groups: self.machine_groups().len(),
        }
    }

    /// Extract the sub-problem induced by `service_ids` and `machine_ids`.
    ///
    /// Ids are re-densified: the `k`-th entry of `service_ids` becomes
    /// `ServiceId(k)` in the sub-problem. The returned maps translate
    /// sub-problem ids back to the parent's (`sub -> parent`).
    /// Affinity edges with exactly one endpoint inside are dropped (their
    /// weight is the partition's affinity loss); anti-affinity rules are
    /// restricted to the surviving services.
    pub fn induced_subproblem(
        &self,
        service_ids: &[ServiceId],
        machine_ids: &[MachineId],
    ) -> (Problem, SubproblemMapping) {
        let mut svc_old_to_new: HashMap<ServiceId, ServiceId> = HashMap::new();
        let services: Vec<Service> = service_ids
            .iter()
            .enumerate()
            .map(|(k, &sid)| {
                let mut s = self.services[sid.idx()].clone();
                svc_old_to_new.insert(sid, ServiceId(k as u32));
                s.id = ServiceId(k as u32);
                s
            })
            .collect();
        let machines: Vec<Machine> = machine_ids
            .iter()
            .enumerate()
            .map(|(k, &mid)| {
                let mut m = self.machines[mid.idx()].clone();
                m.id = MachineId(k as u32);
                m
            })
            .collect();
        let affinity_edges: Vec<AffinityEdge> = self
            .affinity_edges
            .iter()
            .filter_map(
                |e| match (svc_old_to_new.get(&e.a), svc_old_to_new.get(&e.b)) {
                    (Some(&a), Some(&b)) => Some(AffinityEdge::new(a, b, e.weight)),
                    _ => None,
                },
            )
            .collect();
        let anti_affinity: Vec<AntiAffinityRule> = self
            .anti_affinity
            .iter()
            .filter_map(|rule| {
                let services: Vec<ServiceId> = rule
                    .services
                    .iter()
                    .filter_map(|s| svc_old_to_new.get(s).copied())
                    .collect();
                (!services.is_empty()).then_some(AntiAffinityRule {
                    services,
                    max_per_machine: rule.max_per_machine,
                })
            })
            .collect();
        (
            Problem {
                services,
                machines,
                affinity_edges,
                anti_affinity,
            },
            SubproblemMapping {
                service_to_parent: service_ids.to_vec(),
                machine_to_parent: machine_ids.to_vec(),
            },
        )
    }
}

/// Translation from a sub-problem's dense ids back to the parent problem's.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubproblemMapping {
    /// `service_to_parent[k]` is the parent id of the sub-problem's `ServiceId(k)`.
    pub service_to_parent: Vec<ServiceId>,
    /// `machine_to_parent[k]` is the parent id of the sub-problem's `MachineId(k)`.
    pub machine_to_parent: Vec<MachineId>,
}

/// Validating builder for [`Problem`].
#[derive(Default)]
pub struct ProblemBuilder {
    services: Vec<Service>,
    machines: Vec<Machine>,
    edges: Vec<AffinityEdge>,
    anti_affinity: Vec<AntiAffinityRule>,
}

impl ProblemBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a service; its id is assigned densely and returned.
    pub fn add_service(
        &mut self,
        name: impl Into<String>,
        replicas: u32,
        demand: ResourceVec,
    ) -> ServiceId {
        let id = ServiceId(self.services.len() as u32);
        self.services.push(Service::new(id, name, replicas, demand));
        id
    }

    /// Add a fully-specified service (overrides the auto-assigned id).
    pub fn add_service_full(&mut self, mut service: Service) -> ServiceId {
        let id = ServiceId(self.services.len() as u32);
        service.id = id;
        self.services.push(service);
        id
    }

    /// Add a machine; its id is assigned densely and returned.
    pub fn add_machine(&mut self, capacity: ResourceVec, features: FeatureMask) -> MachineId {
        let id = MachineId(self.machines.len() as u32);
        self.machines.push(Machine::new(id, capacity, features));
        id
    }

    /// Add `count` identical machines.
    pub fn add_machines(
        &mut self,
        count: usize,
        capacity: ResourceVec,
        features: FeatureMask,
    ) -> Vec<MachineId> {
        (0..count)
            .map(|_| self.add_machine(capacity, features))
            .collect()
    }

    /// Add an affinity edge.
    pub fn add_affinity(&mut self, a: ServiceId, b: ServiceId, weight: f64) -> &mut Self {
        self.edges.push(AffinityEdge::new(a, b, weight));
        self
    }

    /// Add an anti-affinity rule.
    pub fn add_anti_affinity(
        &mut self,
        services: Vec<ServiceId>,
        max_per_machine: u32,
    ) -> &mut Self {
        self.anti_affinity.push(AntiAffinityRule {
            services,
            max_per_machine,
        });
        self
    }

    /// Validate and freeze into a [`Problem`].
    ///
    /// Checks: all ids in range, no duplicate edges, non-empty anti-affinity
    /// rules. Edge weights are multiplied by the geometric mean of the two
    /// endpoint services' priority weights (Section II-B's priority tuning);
    /// neutral priorities (1.0) leave weights untouched.
    pub fn build(self) -> Result<Problem, ModelError> {
        let n = self.services.len();
        let mut seen = std::collections::HashSet::new();
        let mut edges = Vec::with_capacity(self.edges.len());
        for e in self.edges {
            if e.a.idx() >= n {
                return Err(ModelError::UnknownService(e.a));
            }
            if e.b.idx() >= n {
                return Err(ModelError::UnknownService(e.b));
            }
            if !seen.insert((e.a, e.b)) {
                return Err(ModelError::DuplicateEdge(e.a, e.b));
            }
            let pw = (self.services[e.a.idx()].priority_weight
                * self.services[e.b.idx()].priority_weight)
                .sqrt();
            edges.push(AffinityEdge::new(e.a, e.b, e.weight * pw));
        }
        for rule in &self.anti_affinity {
            if rule.services.is_empty() {
                return Err(ModelError::EmptyAntiAffinityRule);
            }
            for s in &rule.services {
                if s.idx() >= n {
                    return Err(ModelError::UnknownService(*s));
                }
            }
        }
        Ok(Problem {
            services: self.services,
            machines: self.machines,
            affinity_edges: edges,
            anti_affinity: self.anti_affinity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_service_problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 4, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(3, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 10.0);
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let p = two_service_problem();
        assert_eq!(p.services[0].id, ServiceId(0));
        assert_eq!(p.services[1].id, ServiceId(1));
        assert_eq!(p.machines[2].id, MachineId(2));
    }

    #[test]
    fn total_affinity_sums_weights() {
        let p = two_service_problem();
        assert_eq!(p.total_affinity(), 10.0);
        assert_eq!(p.service_total_affinity(ServiceId(0)), 10.0);
        assert_eq!(p.all_service_total_affinities(), vec![10.0, 10.0]);
    }

    #[test]
    fn duplicate_edge_detected_regardless_of_order() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 1, ResourceVec::ZERO);
        let s1 = b.add_service("b", 1, ResourceVec::ZERO);
        b.add_affinity(s0, s1, 1.0);
        b.add_affinity(s1, s0, 2.0);
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::DuplicateEdge(ServiceId(0), ServiceId(1))
        );
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 1, ResourceVec::ZERO);
        b.add_affinity(s0, ServiceId(9), 1.0);
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::UnknownService(ServiceId(9))
        );
    }

    #[test]
    fn empty_anti_affinity_rejected() {
        let mut b = ProblemBuilder::new();
        b.add_anti_affinity(vec![], 1);
        assert_eq!(b.build().unwrap_err(), ModelError::EmptyAntiAffinityRule);
    }

    #[test]
    fn priority_weights_scale_edges() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service_full(
            Service::new(ServiceId(0), "hi", 1, ResourceVec::ZERO).with_priority(4.0),
        );
        let s1 = b.add_service("lo", 1, ResourceVec::ZERO);
        b.add_affinity(s0, s1, 3.0);
        let p = b.build().unwrap();
        // geometric mean of (4.0, 1.0) = 2.0
        assert!((p.affinity_edges[0].weight - 6.0).abs() < 1e-12);
    }

    #[test]
    fn machine_groups_cluster_identical_machines() {
        let mut b = ProblemBuilder::new();
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_machine(ResourceVec::cpu_mem(16.0, 8.0), FeatureMask::EMPTY);
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::bit(0));
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let groups = p.machine_groups();
        assert_eq!(groups.len(), 3);
        assert_eq!(
            groups[0].members,
            vec![MachineId(0), MachineId(1), MachineId(4)]
        );
        assert_eq!(groups[1].members, vec![MachineId(2)]);
        assert_eq!(groups[2].members, vec![MachineId(3)]);
    }

    #[test]
    fn induced_subproblem_redensifies_and_drops_cut_edges() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 1, ResourceVec::ZERO);
        let s1 = b.add_service("b", 1, ResourceVec::ZERO);
        let s2 = b.add_service("c", 1, ResourceVec::ZERO);
        b.add_machines(2, ResourceVec::cpu_mem(1.0, 1.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        b.add_affinity(s1, s2, 2.0);
        b.add_anti_affinity(vec![s0, s2], 1);
        let p = b.build().unwrap();
        let (sub, map) = p.induced_subproblem(&[s1, s2], &[MachineId(1)]);
        assert_eq!(sub.num_services(), 2);
        assert_eq!(sub.num_machines(), 1);
        // only the (s1, s2) edge survives, renamed to (0, 1)
        assert_eq!(sub.affinity_edges.len(), 1);
        assert_eq!(sub.affinity_edges[0].a, ServiceId(0));
        assert_eq!(sub.affinity_edges[0].b, ServiceId(1));
        assert_eq!(sub.affinity_edges[0].weight, 2.0);
        // anti-affinity restricted to s2 (renamed ServiceId(1))
        assert_eq!(sub.anti_affinity.len(), 1);
        assert_eq!(sub.anti_affinity[0].services, vec![ServiceId(1)]);
        assert_eq!(map.service_to_parent, vec![s1, s2]);
        assert_eq!(map.machine_to_parent, vec![MachineId(1)]);
    }

    #[test]
    fn edge_adjacency_indexes_both_endpoints() {
        let p = two_service_problem();
        let adj = p.edge_adjacency();
        assert_eq!(adj[0], vec![EdgeId(0)]);
        assert_eq!(adj[1], vec![EdgeId(0)]);
    }

    #[test]
    fn stats_reports_scale() {
        let p = two_service_problem();
        let st = p.stats();
        assert_eq!(st.services, 2);
        assert_eq!(st.containers, 6);
        assert_eq!(st.machines, 3);
        assert_eq!(st.edges, 1);
        assert_eq!(st.machine_groups, 1);
    }
}
