//! Services and their SLA/resource requirements.

use crate::ids::ServiceId;
use crate::machine::FeatureMask;
use crate::resources::ResourceVec;
use serde::{Deserialize, Serialize};

/// A microservice that must run `replicas` homogeneous containers in the
/// cluster (the paper's `d_s`), each requesting `demand` resources
/// (`R^S_{r,s}`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Service {
    /// Dense id; equals this service's index in [`Problem::services`](crate::Problem::services).
    pub id: ServiceId,
    /// Human-readable name (used only in reports and traces).
    pub name: String,
    /// `d_s`: number of containers the SLA requires (Expression (3)).
    pub replicas: u32,
    /// Per-container resource request (Expression (4)).
    pub demand: ResourceVec,
    /// Features this service's containers require from a hosting machine.
    /// Machine `m` can host this service iff
    /// `required_features ⊆ m.features` — this encodes the paper's
    /// schedulable matrix `b_{s,m}` (Expression (6)) compactly.
    pub required_features: FeatureMask,
    /// `true` if the service keeps no local state, so its containers can be
    /// migrated at negligible cost (Section III-B focuses optimization on
    /// stateless services).
    pub stateless: bool,
    /// Network-performance priority multiplier applied to this service's
    /// affinity edges (Section II-B: "the cluster manager can set up multiple
    /// priority levels"). `1.0` is neutral.
    pub priority_weight: f64,
}

impl Service {
    /// A stateless service with neutral priority and no feature requirements.
    pub fn new(id: ServiceId, name: impl Into<String>, replicas: u32, demand: ResourceVec) -> Self {
        Service {
            id,
            name: name.into(),
            replicas,
            demand,
            required_features: FeatureMask::EMPTY,
            stateless: true,
            priority_weight: 1.0,
        }
    }

    /// Builder-style setter for the required feature mask.
    pub fn with_features(mut self, mask: FeatureMask) -> Self {
        self.required_features = mask;
        self
    }

    /// Builder-style setter for statefulness.
    pub fn with_stateless(mut self, stateless: bool) -> Self {
        self.stateless = stateless;
        self
    }

    /// Builder-style setter for the priority weight.
    pub fn with_priority(mut self, weight: f64) -> Self {
        self.priority_weight = weight;
        self
    }

    /// Total resources requested by all `d_s` containers of this service.
    pub fn total_demand(&self) -> ResourceVec {
        self.demand * f64::from(self.replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_demand_scales_by_replicas() {
        let s = Service::new(ServiceId(0), "web", 4, ResourceVec::cpu_mem(500.0, 1024.0));
        assert_eq!(s.total_demand(), ResourceVec::cpu_mem(2000.0, 4096.0));
    }

    #[test]
    fn builder_setters() {
        let s = Service::new(ServiceId(1), "db", 2, ResourceVec::cpu_mem(1.0, 1.0))
            .with_features(FeatureMask(0b101))
            .with_stateless(false)
            .with_priority(2.5);
        assert_eq!(s.required_features, FeatureMask(0b101));
        assert!(!s.stateless);
        assert_eq!(s.priority_weight, 2.5);
    }
}
