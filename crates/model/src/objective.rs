//! The gained-affinity objective (Definition 1 / Expression (2)).

use crate::ids::MachineId;
use crate::placement::Placement;
use crate::problem::Problem;

/// Gained affinity contributed by one edge `(s, s')` under `placement`:
///
/// `Σ_m w_{s,s'} · min(x_{s,m}/d_s, x_{s',m}/d_{s'})`
///
/// This is the maximum fraction of the pair's traffic that can be localized
/// under traffic load balancing (Definition 1 in the paper).
pub fn gained_affinity_of_edge(problem: &Problem, placement: &Placement, edge_idx: usize) -> f64 {
    let e = &problem.affinity_edges[edge_idx];
    let da = f64::from(problem.services[e.a.idx()].replicas);
    let db = f64::from(problem.services[e.b.idx()].replicas);
    if da == 0.0 || db == 0.0 {
        return 0.0;
    }
    // Iterate the sparser endpoint's machine set; min() is zero on machines
    // hosting only one endpoint, so intersecting is sufficient.
    let (first, second, d_first, d_second) = {
        let ca = placement.machines_of(e.a).count();
        let cb = placement.machines_of(e.b).count();
        if ca <= cb {
            (e.a, e.b, da, db)
        } else {
            (e.b, e.a, db, da)
        }
    };
    let mut gained = 0.0;
    for (m, c_first) in placement.machines_of(first) {
        let c_second = placement.count(second, m);
        if c_second == 0 {
            continue;
        }
        let frac = (f64::from(c_first) / d_first).min(f64::from(c_second) / d_second);
        gained += e.weight * frac;
    }
    gained
}

/// Gained affinity of one edge restricted to a single machine:
/// `a_{s,s',m} = w · min(x_{s,m}/d_s, x_{s',m}/d_{s'})`.
pub fn gained_affinity_on_machine(
    problem: &Problem,
    placement: &Placement,
    edge_idx: usize,
    m: MachineId,
) -> f64 {
    let e = &problem.affinity_edges[edge_idx];
    let da = f64::from(problem.services[e.a.idx()].replicas);
    let db = f64::from(problem.services[e.b.idx()].replicas);
    if da == 0.0 || db == 0.0 {
        return 0.0;
    }
    let xa = f64::from(placement.count(e.a, m));
    let xb = f64::from(placement.count(e.b, m));
    e.weight * (xa / da).min(xb / db)
}

/// The overall gained affinity `Σ_{(s,s') ∈ E} Σ_m a_{s,s',m}`
/// (Expression (2)) in *absolute* weight units.
pub fn gained_affinity(problem: &Problem, placement: &Placement) -> f64 {
    (0..problem.affinity_edges.len())
        .map(|i| gained_affinity_of_edge(problem, placement, i))
        .sum()
}

/// Gained affinity normalized by the total affinity, so `1.0` means *all*
/// traffic is localized (the paper normalizes total affinity to 1.0 and
/// reports this quantity in Figs 6–10). Returns `0.0` for edge-free problems.
pub fn normalized_gained_affinity(problem: &Problem, placement: &Placement) -> f64 {
    let total = problem.total_affinity();
    if total <= 0.0 {
        return 0.0;
    }
    gained_affinity(problem, placement) / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServiceId;
    use crate::machine::FeatureMask;
    use crate::problem::ProblemBuilder;
    use crate::resources::ResourceVec;

    /// The paper's Fig 2(a) example: Service A (2 containers), Service B
    /// (4 containers); placing 1×A + 2×B on one machine localizes
    /// min(1/2, 2/4) = 50% of their traffic.
    fn fig2_problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let a = b.add_service("A", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let bb = b.add_service("B", 4, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(3, ResourceVec::cpu_mem(16.0, 16.0), FeatureMask::EMPTY);
        b.add_affinity(a, bb, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn fig2_example_gains_half() {
        let p = fig2_problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(0), 1);
        x.add(ServiceId(1), MachineId(0), 2);
        x.add(ServiceId(0), MachineId(1), 1);
        x.add(ServiceId(1), MachineId(2), 2);
        assert!((gained_affinity(&p, &x) - 0.5).abs() < 1e-12);
        assert!((normalized_gained_affinity(&p, &x) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_collocation_gains_everything() {
        let p = fig2_problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(0), 2);
        x.add(ServiceId(1), MachineId(0), 4);
        assert!((normalized_gained_affinity(&p, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_placement_gains_nothing() {
        let p = fig2_problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(0), 2);
        x.add(ServiceId(1), MachineId(1), 4);
        assert_eq!(gained_affinity(&p, &x), 0.0);
    }

    #[test]
    fn min_is_taken_per_machine_not_globally() {
        // A on m0 with many B, A on m1 with no B: only m0 contributes.
        let p = fig2_problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(0), 1);
        x.add(ServiceId(0), MachineId(1), 1);
        x.add(ServiceId(1), MachineId(0), 4);
        // m0: min(1/2, 4/4) = 0.5; m1: min(1/2, 0) = 0
        assert!((gained_affinity(&p, &x) - 0.5).abs() < 1e-12);
        assert!((gained_affinity_on_machine(&p, &x, 0, MachineId(0)) - 0.5).abs() < 1e-12);
        assert_eq!(gained_affinity_on_machine(&p, &x, 0, MachineId(1)), 0.0);
    }

    #[test]
    fn weights_scale_contributions() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("x", 1, ResourceVec::ZERO);
        let s1 = b.add_service("y", 1, ResourceVec::ZERO);
        let s2 = b.add_service("z", 1, ResourceVec::ZERO);
        b.add_machine(ResourceVec::cpu_mem(10.0, 10.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 3.0);
        b.add_affinity(s1, s2, 7.0);
        let p = b.build().unwrap();
        let mut x = Placement::empty_for(&p);
        x.add(s0, MachineId(0), 1);
        x.add(s1, MachineId(0), 1);
        // only edge (s0, s1) localized
        assert!((gained_affinity(&p, &x) - 3.0).abs() < 1e-12);
        assert!((normalized_gained_affinity(&p, &x) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_problem_normalizes_to_zero() {
        let mut b = ProblemBuilder::new();
        b.add_service("lonely", 1, ResourceVec::ZERO);
        let p = b.build().unwrap();
        let x = Placement::empty_for(&p);
        assert_eq!(normalized_gained_affinity(&p, &x), 0.0);
    }

    #[test]
    fn partial_placement_counts_fractionally() {
        // B only 3 of 4 placed with both A replicas: min(2/2, 3/4) = 0.75
        let p = fig2_problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(0), 2);
        x.add(ServiceId(1), MachineId(0), 3);
        assert!((gained_affinity(&p, &x) - 0.75).abs() < 1e-12);
    }
}
