//! Placements: the decision matrix `x_{s,m}` and concrete per-container
//! assignments.
//!
//! Two granularities coexist:
//!
//! * [`Placement`] is the *count* matrix the optimizer reasons about
//!   (`x_{s,m}` = number of service-`s` containers on machine `m`), stored
//!   sparsely per service.
//! * [`ContainerAssignment`] names *which* replica sits where; the migration
//!   planner (Algorithm 2 of the paper) needs this to emit concrete
//!   delete/create commands.

use crate::ids::{ContainerId, MachineId, ServiceId};
use crate::problem::Problem;
use crate::resources::ResourceVec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sparse `x_{s,m}` matrix: for each service, the machines hosting at least
/// one of its containers and the counts.
///
/// `BTreeMap` keeps iteration deterministic, which in turn makes every
/// experiment in the repository reproducible bit-for-bit.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    per_service: Vec<BTreeMap<MachineId, u32>>,
}

impl Placement {
    /// An empty placement for `num_services` services.
    pub fn empty(num_services: usize) -> Self {
        Placement {
            per_service: vec![BTreeMap::new(); num_services],
        }
    }

    /// An empty placement shaped for `problem`.
    pub fn empty_for(problem: &Problem) -> Self {
        Self::empty(problem.num_services())
    }

    /// Number of services this placement is shaped for.
    pub fn num_services(&self) -> usize {
        self.per_service.len()
    }

    /// `x_{s,m}`.
    #[inline]
    pub fn count(&self, s: ServiceId, m: MachineId) -> u32 {
        self.per_service[s.idx()].get(&m).copied().unwrap_or(0)
    }

    /// Set `x_{s,m}` (removing the entry when zero).
    pub fn set_count(&mut self, s: ServiceId, m: MachineId, count: u32) {
        if count == 0 {
            self.per_service[s.idx()].remove(&m);
        } else {
            self.per_service[s.idx()].insert(m, count);
        }
    }

    /// Add `delta` containers of `s` on `m`.
    pub fn add(&mut self, s: ServiceId, m: MachineId, delta: u32) {
        if delta == 0 {
            return;
        }
        *self.per_service[s.idx()].entry(m).or_insert(0) += delta;
    }

    /// Remove `delta` containers of `s` from `m`.
    ///
    /// # Panics
    /// Panics if fewer than `delta` containers are present — callers track
    /// exact counts, so underflow is a logic error.
    pub fn remove(&mut self, s: ServiceId, m: MachineId, delta: u32) {
        if delta == 0 {
            return;
        }
        let entry = self.per_service[s.idx()].get_mut(&m).unwrap_or_else(|| {
            panic!("removing {delta} containers of {s} from {m}, but none are placed")
        });
        assert!(
            *entry >= delta,
            "removing {delta} containers of {s} from {m}, but only {entry} are placed"
        );
        *entry -= delta;
        if *entry == 0 {
            self.per_service[s.idx()].remove(&m);
        }
    }

    /// Machines hosting service `s`, with counts, in machine-id order.
    pub fn machines_of(&self, s: ServiceId) -> impl Iterator<Item = (MachineId, u32)> + '_ {
        self.per_service[s.idx()].iter().map(|(&m, &c)| (m, c))
    }

    /// Total containers placed for service `s` (`Σ_m x_{s,m}`).
    pub fn placed_count(&self, s: ServiceId) -> u32 {
        self.per_service[s.idx()].values().sum()
    }

    /// Total containers placed across all services.
    pub fn total_placed(&self) -> u64 {
        self.per_service
            .iter()
            .map(|m| m.values().map(|&c| u64::from(c)).sum::<u64>())
            .sum()
    }

    /// Iterate all `(service, machine, count)` triples with positive count.
    pub fn iter(&self) -> impl Iterator<Item = (ServiceId, MachineId, u32)> + '_ {
        self.per_service.iter().enumerate().flat_map(|(si, per_m)| {
            per_m
                .iter()
                .map(move |(&m, &c)| (ServiceId(si as u32), m, c))
        })
    }

    /// Per-machine resource usage under this placement for `problem`.
    pub fn machine_usage(&self, problem: &Problem) -> Vec<ResourceVec> {
        let mut usage = vec![ResourceVec::ZERO; problem.num_machines()];
        for (s, m, c) in self.iter() {
            usage[m.idx()] += problem.services[s.idx()].demand * f64::from(c);
        }
        usage
    }

    /// Per-machine total container count under this placement.
    pub fn machine_container_counts(&self, num_machines: usize) -> Vec<u32> {
        let mut counts = vec![0u32; num_machines];
        for (_, m, c) in self.iter() {
            counts[m.idx()] += c;
        }
        counts
    }

    /// Merge a sub-problem solution back into a parent-shaped placement
    /// using id translation tables (`sub -> parent`).
    pub fn merge_subplacement(
        &mut self,
        sub: &Placement,
        service_to_parent: &[ServiceId],
        machine_to_parent: &[MachineId],
    ) {
        for (s, m, c) in sub.iter() {
            self.add(service_to_parent[s.idx()], machine_to_parent[m.idx()], c);
        }
    }

    /// Number of container moves (per-service, per-machine positive count
    /// differences) needed to turn `self` into `target`. A standard churn
    /// metric: each moved container counts once.
    pub fn moves_to(&self, target: &Placement) -> u64 {
        assert_eq!(self.num_services(), target.num_services());
        let mut moves = 0u64;
        for si in 0..self.per_service.len() {
            let s = ServiceId(si as u32);
            // containers that must be created on machines where target > current
            for (m, &tc) in target.per_service[si].iter() {
                let cur = self.count(s, *m);
                if tc > cur {
                    moves += u64::from(tc - cur);
                }
            }
        }
        moves
    }
}

/// Concrete assignment of each replica of each service to a machine (or
/// `None` while it is deleted mid-migration).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ContainerAssignment {
    /// `slots[s][r]` is the machine currently hosting replica `r` of
    /// service `s`, if any.
    slots: Vec<Vec<Option<MachineId>>>,
}

impl ContainerAssignment {
    /// All replicas unassigned, shaped for `problem`.
    pub fn empty_for(problem: &Problem) -> Self {
        ContainerAssignment {
            slots: problem
                .services
                .iter()
                .map(|s| vec![None; s.replicas as usize])
                .collect(),
        }
    }

    /// Materialize a count-level [`Placement`] into concrete replicas,
    /// assigning replica indices in machine-id order (deterministic).
    pub fn materialize(problem: &Problem, placement: &Placement) -> Self {
        let mut out = Self::empty_for(problem);
        for (si, svc) in problem.services.iter().enumerate() {
            let s = ServiceId(si as u32);
            let mut next = 0usize;
            for (m, c) in placement.machines_of(s) {
                for _ in 0..c {
                    assert!(
                        next < svc.replicas as usize,
                        "placement assigns more than d_s containers for {s}"
                    );
                    out.slots[si][next] = Some(m);
                    next += 1;
                }
            }
        }
        out
    }

    /// Where replica `c` currently runs.
    pub fn machine_of(&self, c: ContainerId) -> Option<MachineId> {
        self.slots[c.service.idx()][c.replica as usize]
    }

    /// Assign replica `c` to `m`.
    pub fn assign(&mut self, c: ContainerId, m: MachineId) {
        self.slots[c.service.idx()][c.replica as usize] = Some(m);
    }

    /// Unassign replica `c` (delete its container).
    pub fn unassign(&mut self, c: ContainerId) {
        self.slots[c.service.idx()][c.replica as usize] = None;
    }

    /// Number of currently-assigned replicas of service `s`.
    pub fn alive_count(&self, s: ServiceId) -> u32 {
        self.slots[s.idx()].iter().filter(|m| m.is_some()).count() as u32
    }

    /// Collapse back to a count-level [`Placement`].
    pub fn to_placement(&self) -> Placement {
        let mut p = Placement::empty(self.slots.len());
        for (si, replicas) in self.slots.iter().enumerate() {
            for m in replicas.iter().flatten() {
                p.add(ServiceId(si as u32), *m, 1);
            }
        }
        p
    }

    /// Iterate `(container, machine)` pairs for assigned replicas.
    pub fn iter_assigned(&self) -> impl Iterator<Item = (ContainerId, MachineId)> + '_ {
        self.slots.iter().enumerate().flat_map(|(si, replicas)| {
            replicas.iter().enumerate().filter_map(move |(r, m)| {
                m.map(|m| (ContainerId::new(ServiceId(si as u32), r as u32), m))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::FeatureMask;
    use crate::problem::ProblemBuilder;

    fn problem() -> Problem {
        let mut b = ProblemBuilder::new();
        b.add_service("a", 3, ResourceVec::cpu_mem(2.0, 4.0));
        b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(16.0, 32.0), FeatureMask::EMPTY);
        b.build().unwrap()
    }

    #[test]
    fn add_remove_round_trip() {
        let mut p = Placement::empty(2);
        let (s, m) = (ServiceId(0), MachineId(1));
        p.add(s, m, 3);
        assert_eq!(p.count(s, m), 3);
        p.remove(s, m, 2);
        assert_eq!(p.count(s, m), 1);
        p.remove(s, m, 1);
        assert_eq!(p.count(s, m), 0);
        assert_eq!(p.machines_of(s).count(), 0, "zero entries are pruned");
    }

    #[test]
    #[should_panic(expected = "only 1 are placed")]
    fn remove_underflow_panics() {
        let mut p = Placement::empty(1);
        p.add(ServiceId(0), MachineId(0), 1);
        p.remove(ServiceId(0), MachineId(0), 2);
    }

    #[test]
    fn set_count_zero_prunes() {
        let mut p = Placement::empty(1);
        p.set_count(ServiceId(0), MachineId(0), 5);
        p.set_count(ServiceId(0), MachineId(0), 0);
        assert_eq!(p.iter().count(), 0);
    }

    #[test]
    fn machine_usage_accumulates_demand() {
        let prob = problem();
        let mut p = Placement::empty_for(&prob);
        p.add(ServiceId(0), MachineId(0), 2); // 2 × (2, 4)
        p.add(ServiceId(1), MachineId(0), 1); // 1 × (1, 1)
        p.add(ServiceId(0), MachineId(1), 1);
        let usage = p.machine_usage(&prob);
        assert_eq!(usage[0], ResourceVec::cpu_mem(5.0, 9.0));
        assert_eq!(usage[1], ResourceVec::cpu_mem(2.0, 4.0));
    }

    #[test]
    fn totals_and_counts() {
        let prob = problem();
        let mut p = Placement::empty_for(&prob);
        p.add(ServiceId(0), MachineId(0), 2);
        p.add(ServiceId(1), MachineId(1), 2);
        assert_eq!(p.placed_count(ServiceId(0)), 2);
        assert_eq!(p.total_placed(), 4);
        assert_eq!(p.machine_container_counts(2), vec![2, 2]);
    }

    #[test]
    fn merge_subplacement_translates_ids() {
        let mut parent = Placement::empty(4);
        let mut sub = Placement::empty(2);
        sub.add(ServiceId(0), MachineId(0), 1);
        sub.add(ServiceId(1), MachineId(1), 2);
        parent.merge_subplacement(
            &sub,
            &[ServiceId(3), ServiceId(1)],
            &[MachineId(7), MachineId(2)],
        );
        assert_eq!(parent.count(ServiceId(3), MachineId(7)), 1);
        assert_eq!(parent.count(ServiceId(1), MachineId(2)), 2);
    }

    #[test]
    fn moves_to_counts_created_containers() {
        let mut from = Placement::empty(1);
        from.add(ServiceId(0), MachineId(0), 3);
        let mut to = Placement::empty(1);
        to.add(ServiceId(0), MachineId(0), 1);
        to.add(ServiceId(0), MachineId(1), 2);
        assert_eq!(from.moves_to(&to), 2);
        assert_eq!(from.moves_to(&from), 0);
    }

    #[test]
    fn materialize_round_trips_to_placement() {
        let prob = problem();
        let mut p = Placement::empty_for(&prob);
        p.add(ServiceId(0), MachineId(0), 2);
        p.add(ServiceId(0), MachineId(1), 1);
        p.add(ServiceId(1), MachineId(1), 2);
        let assign = ContainerAssignment::materialize(&prob, &p);
        assert_eq!(assign.alive_count(ServiceId(0)), 3);
        assert_eq!(assign.to_placement(), p);
    }

    #[test]
    #[should_panic(expected = "more than d_s")]
    fn materialize_rejects_overfull_placement() {
        let prob = problem();
        let mut p = Placement::empty_for(&prob);
        p.add(ServiceId(1), MachineId(0), 3); // d_s = 2
        let _ = ContainerAssignment::materialize(&prob, &p);
    }

    #[test]
    fn assignment_mutation() {
        let prob = problem();
        let mut a = ContainerAssignment::empty_for(&prob);
        let c = ContainerId::new(ServiceId(0), 1);
        assert_eq!(a.machine_of(c), None);
        a.assign(c, MachineId(1));
        assert_eq!(a.machine_of(c), Some(MachineId(1)));
        assert_eq!(a.alive_count(ServiceId(0)), 1);
        assert_eq!(a.iter_assigned().count(), 1);
        a.unassign(c);
        assert_eq!(a.alive_count(ServiceId(0)), 0);
    }
}
