//! Feature-graph construction (the paper's `Ĝ_k = <S_k, E_k, F_k>`).

use rasa_model::{Problem, ResourceVec};
use rasa_nn::{GraphInput, Matrix};

/// Build the GCN input for a subproblem: the affinity graph with an `N × 2`
/// feature matrix per service — normalized resource demand `r_s` and
/// container count `d_s` (Section IV-D1 defines `F_k`'s rows as
/// `[r_s, d_s]`).
///
/// Scaling: demand is expressed as the fraction of an average machine one
/// container consumes (dominant share), and `d_s` is log-compressed —
/// keeping features O(1) across cluster scales so one trained model
/// transfers between clusters, as the paper's deployment requires.
pub fn feature_graph(problem: &Problem) -> GraphInput {
    let avg_cap = average_machine_capacity(problem);
    let features = Matrix::from_fn(problem.num_services(), 2, |s, c| {
        let svc = &problem.services[s];
        match c {
            0 => svc.demand.dominant_share(&avg_cap).min(10.0),
            _ => (1.0 + f64::from(svc.replicas)).ln(),
        }
    });
    let edges: Vec<(usize, usize, f64)> = problem
        .affinity_edges
        .iter()
        .map(|e| (e.a.idx(), e.b.idx(), e.weight))
        .collect();
    GraphInput::new(features, &edges)
}

/// Component-wise mean capacity over machines (a neutral scale for demand
/// normalization). Falls back to all-ones when the problem has no machines.
pub fn average_machine_capacity(problem: &Problem) -> ResourceVec {
    if problem.machines.is_empty() {
        return ResourceVec::new(1.0, 1.0, 1.0, 1.0);
    }
    let mut total = ResourceVec::ZERO;
    for m in &problem.machines {
        total += m.capacity;
    }
    total * (1.0 / problem.machines.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{FeatureMask, ProblemBuilder};

    #[test]
    fn features_have_two_columns_and_edges_carry_weights() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 4, ResourceVec::cpu_mem(2.0, 2.0));
        let s1 = b.add_service("b", 1, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 3.0);
        let p = b.build().unwrap();
        let g = feature_graph(&p);
        assert_eq!(g.features.rows, 2);
        assert_eq!(g.features.cols, 2);
        // demand share: 2/8 = 0.25
        assert!((g.features.get(0, 0) - 0.25).abs() < 1e-12);
        // log(1 + 4)
        assert!((g.features.get(0, 1) - 5.0f64.ln()).abs() < 1e-12);
        // adjacency off-diagonal nonzero for the single edge
        assert!(g.adjacency.get(0, 1) > 0.0);
    }

    #[test]
    fn demand_share_is_capped() {
        let mut b = ProblemBuilder::new();
        b.add_service("huge", 1, ResourceVec::cpu_mem(1e9, 1.0));
        b.add_machine(ResourceVec::cpu_mem(1.0, 1.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let g = feature_graph(&p);
        assert_eq!(g.features.get(0, 0), 10.0);
    }

    #[test]
    fn no_machines_does_not_divide_by_zero() {
        let mut b = ProblemBuilder::new();
        b.add_service("a", 1, ResourceVec::cpu_mem(2.0, 2.0));
        let p = b.build().unwrap();
        let g = feature_graph(&p);
        assert!(g.features.get(0, 0).is_finite());
    }
}
