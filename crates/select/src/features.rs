//! Feature-graph construction (the paper's `Ĝ_k = <S_k, E_k, F_k>`).

use rasa_model::{Problem, ResourceVec};
use rasa_nn::{GraphInput, Matrix};

/// Build the GCN input for a subproblem: the affinity graph with an `N × 2`
/// feature matrix per service — normalized resource demand `r_s` and
/// container count `d_s` (Section IV-D1 defines `F_k`'s rows as
/// `[r_s, d_s]`).
///
/// Scaling: demand is expressed as the fraction of an average machine one
/// container consumes (dominant share), and `d_s` is log-compressed —
/// keeping features O(1) across cluster scales so one trained model
/// transfers between clusters, as the paper's deployment requires.
pub fn feature_graph(problem: &Problem) -> GraphInput {
    let avg_cap = average_machine_capacity(problem);
    let features = Matrix::from_fn(problem.num_services(), 2, |s, c| {
        let svc = &problem.services[s];
        match c {
            0 => svc.demand.dominant_share(&avg_cap).min(10.0),
            _ => (1.0 + f64::from(svc.replicas)).ln(),
        }
    });
    let edges: Vec<(usize, usize, f64)> = problem
        .affinity_edges
        .iter()
        .map(|e| (e.a.idx(), e.b.idx(), e.weight))
        .collect();
    GraphInput::new(features, &edges)
}

/// Dimension of the [`portfolio_features`] vector.
pub const PORTFOLIO_FEATURE_DIM: usize = 10;

/// Fixed-dimension subproblem descriptor for the multi-way portfolio
/// selector: everything the binary GCN sees (scale, demand, replicas) plus
/// the cut-quality / affinity-density signals that separate POP-friendly
/// subproblems (dense, evenly-spread affinity the random split barely
/// hurts... or hub-concentrated graphs it destroys) from solver-friendly
/// ones. All entries are O(1) across cluster scales (log-compressed or
/// normalized ratios) so one trained model transfers between clusters.
///
/// Index glossary (documented for operators in `docs/STRATEGIES.md`):
/// 0 `ln(1+services)`, 1 `ln(1+machines)`, 2 `ln(1+edges)`,
/// 3 edge density (`2e/(n(n-1))`, clamped to \[0,1\]),
/// 4 affinity density (`ln(1+total_weight/services)`),
/// 5 mean dominant demand share, 6 mean `ln(1+replicas)`,
/// 7 weighted-degree coefficient of variation (hub-ness),
/// 8 top-quartile weighted-degree share (cut concentration),
/// 9 replica pressure (`ln(1+replicas_total/machines)`).
pub fn portfolio_features(problem: &Problem) -> Vec<f64> {
    let n = problem.num_services();
    let m = problem.num_machines();
    let e = problem.affinity_edges.len();
    let avg_cap = average_machine_capacity(problem);

    let total_weight: f64 = problem.affinity_edges.iter().map(|x| x.weight).sum();
    let mut degree = vec![0.0f64; n];
    for edge in &problem.affinity_edges {
        degree[edge.a.idx()] += edge.weight;
        degree[edge.b.idx()] += edge.weight;
    }
    let deg_mean = if n > 0 {
        degree.iter().sum::<f64>() / n as f64
    } else {
        0.0
    };
    let deg_cv = if deg_mean > 0.0 {
        let var = degree
            .iter()
            .map(|d| (d - deg_mean) * (d - deg_mean))
            .sum::<f64>()
            / n as f64;
        (var.sqrt() / deg_mean).min(10.0)
    } else {
        0.0
    };
    let top_share = if total_weight > 0.0 && n > 0 {
        let mut sorted = degree.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let top = n.div_ceil(4);
        // each edge contributes its weight to two degrees, so the degree
        // sum is 2×total_weight; normalize by the degree sum
        sorted.iter().take(top).sum::<f64>() / (2.0 * total_weight)
    } else {
        0.0
    };

    let (mut share_sum, mut replica_log_sum, mut replicas_total) = (0.0f64, 0.0f64, 0.0f64);
    for svc in &problem.services {
        share_sum += svc.demand.dominant_share(&avg_cap).min(10.0);
        replica_log_sum += (1.0 + f64::from(svc.replicas)).ln();
        replicas_total += f64::from(svc.replicas);
    }
    let nf = n.max(1) as f64;

    vec![
        (1.0 + n as f64).ln(),
        (1.0 + m as f64).ln(),
        (1.0 + e as f64).ln(),
        if n > 1 {
            ((2.0 * e as f64) / (n as f64 * (n as f64 - 1.0))).min(1.0)
        } else {
            0.0
        },
        (1.0 + total_weight / nf).ln(),
        share_sum / nf,
        replica_log_sum / nf,
        deg_cv,
        top_share,
        (1.0 + replicas_total / m.max(1) as f64).ln(),
    ]
}

/// Component-wise mean capacity over machines (a neutral scale for demand
/// normalization). Falls back to all-ones when the problem has no machines.
pub fn average_machine_capacity(problem: &Problem) -> ResourceVec {
    if problem.machines.is_empty() {
        return ResourceVec::new(1.0, 1.0, 1.0, 1.0);
    }
    let mut total = ResourceVec::ZERO;
    for m in &problem.machines {
        total += m.capacity;
    }
    total * (1.0 / problem.machines.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{FeatureMask, ProblemBuilder};

    #[test]
    fn features_have_two_columns_and_edges_carry_weights() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 4, ResourceVec::cpu_mem(2.0, 2.0));
        let s1 = b.add_service("b", 1, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 3.0);
        let p = b.build().unwrap();
        let g = feature_graph(&p);
        assert_eq!(g.features.rows, 2);
        assert_eq!(g.features.cols, 2);
        // demand share: 2/8 = 0.25
        assert!((g.features.get(0, 0) - 0.25).abs() < 1e-12);
        // log(1 + 4)
        assert!((g.features.get(0, 1) - 5.0f64.ln()).abs() < 1e-12);
        // adjacency off-diagonal nonzero for the single edge
        assert!(g.adjacency.get(0, 1) > 0.0);
    }

    #[test]
    fn demand_share_is_capped() {
        let mut b = ProblemBuilder::new();
        b.add_service("huge", 1, ResourceVec::cpu_mem(1e9, 1.0));
        b.add_machine(ResourceVec::cpu_mem(1.0, 1.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let g = feature_graph(&p);
        assert_eq!(g.features.get(0, 0), 10.0);
    }

    #[test]
    fn no_machines_does_not_divide_by_zero() {
        let mut b = ProblemBuilder::new();
        b.add_service("a", 1, ResourceVec::cpu_mem(2.0, 2.0));
        let p = b.build().unwrap();
        let g = feature_graph(&p);
        assert!(g.features.get(0, 0).is_finite());
    }

    #[test]
    fn portfolio_features_have_fixed_dim_and_stay_finite() {
        // empty, machine-less, and regular problems all produce a finite
        // PORTFOLIO_FEATURE_DIM-length vector
        let empty = ProblemBuilder::new().build().unwrap();
        let mut b = ProblemBuilder::new();
        b.add_service("a", 3, ResourceVec::cpu_mem(1.0, 1.0));
        let no_machines = b.build().unwrap();
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 4, ResourceVec::cpu_mem(2.0, 2.0));
        let s1 = b.add_service("b", 1, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 3.0);
        let regular = b.build().unwrap();
        for p in [&empty, &no_machines, &regular] {
            let f = portfolio_features(p);
            assert_eq!(f.len(), PORTFOLIO_FEATURE_DIM);
            assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
        }
    }

    #[test]
    fn hub_concentration_separates_star_from_matching() {
        // a star graph concentrates weighted degree on the hub; a perfect
        // matching spreads it evenly — the cut-quality features must tell
        // these apart (POP hurts the matching far less than the star)
        let mut star = ProblemBuilder::new();
        let hub = star.add_service("hub", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let leaves: Vec<_> = (0..7)
            .map(|i| star.add_service(format!("l{i}"), 1, ResourceVec::cpu_mem(1.0, 1.0)))
            .collect();
        star.add_machines(4, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        for &l in &leaves {
            star.add_affinity(hub, l, 1.0);
        }
        let star = star.build().unwrap();

        let mut matching = ProblemBuilder::new();
        let svcs: Vec<_> = (0..8)
            .map(|i| matching.add_service(format!("s{i}"), 1, ResourceVec::cpu_mem(1.0, 1.0)))
            .collect();
        matching.add_machines(4, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        for i in 0..4 {
            matching.add_affinity(svcs[2 * i], svcs[2 * i + 1], 1.0);
        }
        let matching = matching.build().unwrap();

        let fs = portfolio_features(&star);
        let fm = portfolio_features(&matching);
        assert!(fs[7] > fm[7], "degree CV: star {} vs matching {}", fs[7], fm[7]);
        assert!(fs[8] > fm[8], "top share: star {} vs matching {}", fs[8], fm[8]);
    }
}
