//! Labelling subproblems for selector training (Section IV-D1: "To label a
//! subproblem, we attempt each subproblem with the two candidate algorithms
//! and choose the one that returns better objective within \[a\] time limit").

use crate::online::SelectionSample;
use crate::selectors::PoolAlgorithm;
use rasa_mip::Deadline;
use rasa_model::Problem;
use rasa_solver::Scheduler as _;
use rasa_solver::{ColumnGeneration, GreedyScheduler, MipBased, PopOptions, PopStrategy};
use std::time::Duration;

/// A labelled training example.
#[derive(Clone, Debug)]
pub struct LabeledSubproblem {
    /// The subproblem.
    pub problem: Problem,
    /// Winning pool algorithm.
    pub label: PoolAlgorithm,
    /// Gained affinity CG achieved under the time limit.
    pub cg_objective: f64,
    /// Gained affinity MIP achieved under the time limit.
    pub mip_objective: f64,
}

/// Run both pool algorithms on `problem` with `time_limit` each and label
/// with the winner (ties go to CG, the cheaper algorithm).
pub fn label_subproblem(problem: &Problem, time_limit: Duration) -> LabeledSubproblem {
    let cg = ColumnGeneration::new().schedule(problem, Deadline::after(time_limit));
    let mip = MipBased::new().schedule(problem, Deadline::after(time_limit));
    let label = if mip.gained_affinity > cg.gained_affinity + 1e-9 {
        PoolAlgorithm::Mip
    } else {
        PoolAlgorithm::Cg
    };
    LabeledSubproblem {
        problem: problem.clone(),
        label,
        cg_objective: cg.gained_affinity,
        mip_objective: mip.gained_affinity,
    }
}

/// A subproblem labelled against the *full* four-arm pool: every arm's
/// realized objective and latency, plus the winner. One label expands into
/// four full-feedback [`SelectionSample`]s via
/// [`into_samples`](Self::into_samples) — the bootstrap dataset for the
/// portfolio selector before any online stream exists.
#[derive(Clone, Debug)]
pub struct PortfolioLabel {
    /// The subproblem.
    pub problem: Problem,
    /// Normalized gained affinity per arm, indexed by
    /// [`PoolAlgorithm::class_index`].
    pub objectives: [f64; 4],
    /// Wall-clock per arm (seconds), indexed by class index.
    pub latencies: [f64; 4],
    /// Arm with the best objective (latency breaks ties).
    pub winner: PoolAlgorithm,
}

impl PortfolioLabel {
    /// Expand into one [`SelectionSample`] per arm, sharing the
    /// subproblem's [`portfolio_features`](crate::features::portfolio_features).
    pub fn into_samples(self) -> Vec<SelectionSample> {
        let features = crate::features::portfolio_features(&self.problem);
        PoolAlgorithm::ALL
            .iter()
            .map(|&alg| {
                let i = alg.class_index();
                SelectionSample {
                    features: features.clone(),
                    choice: alg,
                    quality: self.objectives[i],
                    latency_secs: self.latencies[i],
                    degraded: false,
                }
            })
            .collect()
    }
}

/// Race all four pool arms on `problem` with `time_limit` each and record
/// every arm's realized objective and latency. `pop_parts`/`pop_seed`
/// configure the POP rung's shard split (matching the pipeline's
/// configuration keeps labels on-policy).
pub fn label_portfolio(
    problem: &Problem,
    time_limit: Duration,
    pop_parts: usize,
    pop_seed: u64,
) -> PortfolioLabel {
    let pop = PopStrategy::new(PopOptions {
        parts: pop_parts,
        seed: pop_seed,
        complete: true,
        ..PopOptions::default()
    });
    let cg = ColumnGeneration::new();
    let mip = MipBased::new();
    let mut objectives = [0.0f64; 4];
    let mut latencies = [0.0f64; 4];
    for &alg in &PoolAlgorithm::ALL {
        let scheduler: &dyn rasa_solver::Scheduler = match alg {
            PoolAlgorithm::Cg => &cg,
            PoolAlgorithm::Mip => &mip,
            PoolAlgorithm::Pop => &pop,
            PoolAlgorithm::Greedy => &GreedyScheduler,
        };
        let out = scheduler.schedule(problem, Deadline::after(time_limit));
        objectives[alg.class_index()] = out.normalized_gained_affinity;
        latencies[alg.class_index()] = out.elapsed.as_secs_f64();
    }
    let winner = PoolAlgorithm::ALL
        .iter()
        .copied()
        .max_by(|&a, &b| {
            let (ia, ib) = (a.class_index(), b.class_index());
            objectives[ia]
                .partial_cmp(&objectives[ib])
                .unwrap_or(std::cmp::Ordering::Equal)
                // ties go to the faster arm
                .then_with(|| {
                    latencies[ib]
                        .partial_cmp(&latencies[ia])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
        })
        .unwrap_or(PoolAlgorithm::Mip);
    PortfolioLabel {
        problem: problem.clone(),
        objectives,
        latencies,
        winner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{FeatureMask, ProblemBuilder, ResourceVec};

    #[test]
    fn labels_pick_the_better_objective() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        let p = b.build().unwrap();
        let labeled = label_subproblem(&p, Duration::from_secs(5));
        // tiny problem: both should reach 1.0, tie → CG
        assert!(
            labeled.cg_objective >= 1.0 - 1e-6,
            "cg {}",
            labeled.cg_objective
        );
        assert!(labeled.mip_objective >= 1.0 - 1e-6);
        assert_eq!(labeled.label, PoolAlgorithm::Cg);
    }

    #[test]
    fn portfolio_label_covers_all_arms_and_expands_to_samples() {
        let mut b = ProblemBuilder::new();
        let svcs: Vec<_> = (0..4)
            .map(|i| b.add_service(format!("s{i}"), 2, ResourceVec::cpu_mem(1.0, 1.0)))
            .collect();
        b.add_machines(4, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        for i in 0..2 {
            b.add_affinity(svcs[2 * i], svcs[2 * i + 1], 5.0);
        }
        let p = b.build().unwrap();
        let label = label_portfolio(&p, Duration::from_secs(5), 2, 0);
        assert!(label.objectives.iter().all(|o| o.is_finite() && *o >= 0.0));
        assert!(label.latencies.iter().all(|l| *l >= 0.0));
        // the winner's objective is the max
        let best = label
            .objectives
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((label.objectives[label.winner.class_index()] - best).abs() < 1e-12);
        let samples = label.into_samples();
        assert_eq!(samples.len(), 4);
        for (alg, s) in PoolAlgorithm::ALL.iter().zip(&samples) {
            assert_eq!(s.choice, *alg);
            assert_eq!(s.features.len(), crate::features::PORTFOLIO_FEATURE_DIM);
        }
    }
}
