//! Labelling subproblems for selector training (Section IV-D1: "To label a
//! subproblem, we attempt each subproblem with the two candidate algorithms
//! and choose the one that returns better objective within \[a\] time limit").

use crate::selectors::PoolAlgorithm;
use rasa_mip::Deadline;
use rasa_model::Problem;
use rasa_solver::Scheduler as _;
use rasa_solver::{ColumnGeneration, MipBased};
use std::time::Duration;

/// A labelled training example.
#[derive(Clone, Debug)]
pub struct LabeledSubproblem {
    /// The subproblem.
    pub problem: Problem,
    /// Winning pool algorithm.
    pub label: PoolAlgorithm,
    /// Gained affinity CG achieved under the time limit.
    pub cg_objective: f64,
    /// Gained affinity MIP achieved under the time limit.
    pub mip_objective: f64,
}

/// Run both pool algorithms on `problem` with `time_limit` each and label
/// with the winner (ties go to CG, the cheaper algorithm).
pub fn label_subproblem(problem: &Problem, time_limit: Duration) -> LabeledSubproblem {
    let cg = ColumnGeneration::new().schedule(problem, Deadline::after(time_limit));
    let mip = MipBased::new().schedule(problem, Deadline::after(time_limit));
    let label = if mip.gained_affinity > cg.gained_affinity + 1e-9 {
        PoolAlgorithm::Mip
    } else {
        PoolAlgorithm::Cg
    };
    LabeledSubproblem {
        problem: problem.clone(),
        label,
        cg_objective: cg.gained_affinity,
        mip_objective: mip.gained_affinity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{FeatureMask, ProblemBuilder, ResourceVec};

    #[test]
    fn labels_pick_the_better_objective() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        let p = b.build().unwrap();
        let labeled = label_subproblem(&p, Duration::from_secs(5));
        // tiny problem: both should reach 1.0, tie → CG
        assert!(
            labeled.cg_objective >= 1.0 - 1e-6,
            "cg {}",
            labeled.cg_objective
        );
        assert!(labeled.mip_objective >= 1.0 - 1e-6);
        assert_eq!(labeled.label, PoolAlgorithm::Cg);
    }
}
