#![warn(missing_docs)]

//! # rasa-select
//!
//! Algorithm selection for the RASA scheduling pool (Section IV-D of the
//! paper): given a subproblem, decide whether the **column generation** or
//! the **MIP-based** algorithm should solve it.
//!
//! Components:
//!
//! * [`feature_graph`] — builds the paper's *feature graph*
//!   `Ĝ = <S, E, F>` for a subproblem, with an `N × 2` feature matrix of
//!   per-service resource demand and container count (`[r_s, d_s]`);
//! * [`label_subproblem`] — the paper's labelling procedure: run both pool
//!   algorithms under a time limit and keep the winner;
//! * [`AlgorithmSelector`] implementations: [`FixedSelector`] (the CG-only /
//!   MIP-only ablations), [`HeuristicSelector`] (the paper's empirical
//!   rule), [`MlpSelector`] (topology-blind) and [`GcnSelector`] (the
//!   paper's proposal) — the five bars of Fig 8;
//! * [`training`] — dataset assembly and training loops for the learned
//!   selectors, plus weight persistence.

pub mod features;
pub mod labeling;
pub mod selectors;
pub mod training;

pub use features::feature_graph;
pub use labeling::{label_subproblem, LabeledSubproblem};
pub use selectors::{
    AlgorithmSelector, FixedSelector, GcnSelector, HeuristicSelector, MlpSelector, PoolAlgorithm,
};
pub use training::{train_gcn, train_mlp, TrainReport};
