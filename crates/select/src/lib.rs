#![warn(missing_docs)]

//! # rasa-select
//!
//! Algorithm selection for the RASA scheduling pool (Section IV-D of the
//! paper): given a subproblem, decide which pool arm — **column
//! generation**, **MIP**, the **POP** shard rung, or the **greedy** floor —
//! should solve it.
//!
//! Components:
//!
//! * [`feature_graph`] — builds the paper's *feature graph*
//!   `Ĝ = <S, E, F>` for a subproblem, with an `N × 2` feature matrix of
//!   per-service resource demand and container count (`[r_s, d_s]`);
//! * [`portfolio_features`] — the fixed 10-dim descriptor (scale, demand,
//!   affinity density, cut-quality signals) the multi-way selector uses;
//! * [`label_subproblem`] — the paper's binary labelling procedure;
//!   [`label_portfolio`] races all four arms and records every arm's
//!   realized objective and latency;
//! * [`AlgorithmSelector`] implementations: [`FixedSelector`] (the CG-only /
//!   MIP-only ablations), [`HeuristicSelector`] (the paper's empirical
//!   rule), [`MlpSelector`] (topology-blind), [`GcnSelector`] (the
//!   paper's proposal) — the five bars of Fig 8 — and
//!   [`PortfolioSelector`], the learning multi-way selector;
//! * [`online`] — the [`SampleLog`] stream of
//!   `(features, choice, quality, latency)` tuples the pipeline logs and
//!   [`retrain_from_samples`] refits from (with a holdout
//!   [`RegretReport`]);
//! * [`training`] — dataset assembly and training loops for the learned
//!   selectors, plus weight persistence.

pub mod features;
pub mod labeling;
pub mod online;
pub mod portfolio;
pub mod selectors;
pub mod training;

pub use features::{feature_graph, portfolio_features, PORTFOLIO_FEATURE_DIM};
pub use labeling::{label_portfolio, label_subproblem, LabeledSubproblem, PortfolioLabel};
pub use online::{SampleLog, SelectionSample, DEFAULT_SAMPLE_CAPACITY};
pub use portfolio::{
    fit_portfolio, retrain_from_samples, PortfolioSelector, RegretReport, MIP_ANCHOR_MARGIN,
};
pub use selectors::{
    AlgorithmSelector, FixedSelector, GcnSelector, HeuristicSelector, MlpSelector, PoolAlgorithm,
};
pub use training::{train_gcn, train_mlp, TrainReport};
