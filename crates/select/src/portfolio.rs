//! The learning multi-way selector: one ridge-regression quality model per
//! pool arm over the fixed [`portfolio_features`] descriptor, trained from
//! the online [`SelectionSample`] stream. Select-time cost is four dot
//! products — cheap enough to run per subproblem inside the pipeline.
//!
//! The closed-form per-arm fit keeps retraining deterministic and
//! dependency-free (a `(D+1)×(D+1)` normal-equation solve per arm), and the
//! holdout [`RegretReport`] quantifies how far the learned policy sits from
//! the best fixed arm on withheld samples.

use crate::features::{portfolio_features, PORTFOLIO_FEATURE_DIM};
use crate::online::SelectionSample;
use crate::selectors::{AlgorithmSelector, PoolAlgorithm};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use rasa_model::Problem;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Weight-vector length: the feature dimension plus a bias term.
const WEIGHT_DIM: usize = PORTFOLIO_FEATURE_DIM + 1;

/// Predicted advantage an arm must have over MIP before the selector
/// deviates from the incumbent. Ridge extrapolation error on subproblems
/// unlike the training stream is routinely a few points of normalized
/// affinity; a mispredicted deviation costs real objective, while staying
/// on MIP costs at most the (uncertain) predicted gap. This is safe
/// policy improvement rather than pure argmax: deviate only when the
/// model is confident past its own noise floor.
pub const MIP_ANCHOR_MARGIN: f64 = 0.05;

/// Per-arm ridge-regression quality models; the selector picks the arm with
/// the highest predicted normalized objective for the subproblem at hand.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PortfolioSelector {
    /// Per-arm weight vectors (feature weights followed by a bias term),
    /// indexed by [`PoolAlgorithm::class_index`].
    pub weights: Vec<Vec<f64>>,
    /// Training samples seen per arm — arms with zero samples are never
    /// predicted (their model is uninformed).
    pub counts: Vec<usize>,
    /// Ridge regularization strength used at fit time.
    pub lambda: f64,
}

impl Default for PortfolioSelector {
    fn default() -> Self {
        PortfolioSelector {
            weights: vec![vec![0.0; WEIGHT_DIM]; PoolAlgorithm::ALL.len()],
            counts: vec![0; PoolAlgorithm::ALL.len()],
            lambda: 1e-3,
        }
    }
}

impl PortfolioSelector {
    /// Predicted quality of `alg` on a feature vector (bias included).
    pub fn predict(&self, alg: PoolAlgorithm, features: &[f64]) -> f64 {
        let w = &self.weights[alg.class_index()];
        let dot: f64 = w
            .iter()
            .zip(features.iter().chain(std::iter::once(&1.0)))
            .map(|(wi, xi)| wi * xi)
            .sum();
        dot
    }

    /// Arms the selector has evidence for (at least one training sample).
    pub fn informed_arms(&self) -> Vec<PoolAlgorithm> {
        PoolAlgorithm::ALL
            .iter()
            .copied()
            .filter(|a| self.counts[a.class_index()] > 0)
            .collect()
    }

    /// Pick the best-predicted arm for a raw feature vector. Falls back to
    /// MIP when no arm has training evidence, and stays on MIP unless the
    /// best arm's predicted advantage clears [`MIP_ANCHOR_MARGIN`].
    pub fn select_features(&self, features: &[f64]) -> PoolAlgorithm {
        let informed = self.informed_arms();
        if informed.is_empty() {
            return PoolAlgorithm::Mip;
        }
        let best = informed
            .iter()
            .copied()
            .max_by(|&a, &b| {
                self.predict(a, features)
                    .partial_cmp(&self.predict(b, features))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(PoolAlgorithm::Mip);
        if best != PoolAlgorithm::Mip
            && informed.contains(&PoolAlgorithm::Mip)
            && self.predict(best, features)
                < self.predict(PoolAlgorithm::Mip, features) + MIP_ANCHOR_MARGIN
        {
            return PoolAlgorithm::Mip;
        }
        best
    }

    /// Serialize to pretty JSON at `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load a selector previously written by [`save`](Self::save).
    pub fn load(path: &Path) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(io::Error::other)
    }
}

impl AlgorithmSelector for PortfolioSelector {
    fn name(&self) -> &'static str {
        "PORTFOLIO"
    }

    fn select(&self, problem: &Problem) -> PoolAlgorithm {
        self.select_features(&portfolio_features(problem))
    }
}

/// Fit one ridge model per arm from full- or partial-feedback samples.
/// Degraded samples still count — the realized (rescued) quality is what
/// the decision actually bought, so the fit learns to avoid arms that
/// degrade often.
pub fn fit_portfolio(samples: &[SelectionSample], lambda: f64) -> PortfolioSelector {
    let mut selector = PortfolioSelector {
        lambda,
        ..PortfolioSelector::default()
    };
    for &alg in &PoolAlgorithm::ALL {
        let arm = alg.class_index();
        // accumulate X^T X + λI and X^T y over this arm's samples
        let mut xtx = vec![vec![0.0f64; WEIGHT_DIM]; WEIGHT_DIM];
        let mut xty = vec![0.0f64; WEIGHT_DIM];
        let mut n = 0usize;
        for s in samples.iter().filter(|s| s.choice == alg) {
            if s.features.len() != PORTFOLIO_FEATURE_DIM {
                continue; // stale stream from an older feature schema
            }
            let x: Vec<f64> = s.features.iter().copied().chain([1.0]).collect();
            for i in 0..WEIGHT_DIM {
                for j in 0..WEIGHT_DIM {
                    xtx[i][j] += x[i] * x[j];
                }
                xty[i] += x[i] * s.quality;
            }
            n += 1;
        }
        if n == 0 {
            continue;
        }
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += lambda.max(1e-12);
        }
        if let Some(w) = solve_linear(xtx, xty) {
            selector.weights[arm] = w;
            selector.counts[arm] = n;
        }
    }
    selector
}

/// Gaussian elimination with partial pivoting on a small dense system.
/// Returns `None` when the (ridge-regularized, hence normally SPD) system
/// is still numerically singular.
fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let (pivot_rows, below) = a.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        let b_col = b[col];
        for (offset, row) in below.iter_mut().enumerate() {
            let factor = row[col] / pivot_row[col];
            if factor == 0.0 {
                continue;
            }
            for (entry, &p) in row[col..].iter_mut().zip(&pivot_row[col..]) {
                *entry -= factor * p;
            }
            b[col + 1 + offset] -= factor * b_col;
        }
    }
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Holdout evaluation of a freshly fitted selector, written alongside the
/// retrained model so operators can see whether learning is paying off.
///
/// Values are *matched off-policy estimates*: on each holdout sample whose
/// logged arm equals the policy's pick, the realized quality counts toward
/// that policy's average. Full-feedback bootstrap labels (four samples per
/// subproblem) make every policy's pick matched exactly once per
/// subproblem, so the estimates are directly comparable there.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegretReport {
    /// Samples used for fitting.
    pub train_samples: usize,
    /// Samples withheld for evaluation.
    pub holdout_samples: usize,
    /// Matched mean quality of the learned policy on the holdout.
    pub policy_value: f64,
    /// Matched mean quality of always choosing MIP (the incumbent default).
    pub always_mip_value: f64,
    /// Matched mean quality of the best single fixed arm on the holdout.
    pub best_fixed_value: f64,
    /// Label of that best fixed arm.
    pub best_fixed_arm: String,
    /// `max(0, best_fixed − policy)` — how much the learned policy gives up
    /// against the strongest constant choice.
    pub estimated_regret: f64,
    /// Training-sample counts per arm, in class-index order (CG, MIP, POP,
    /// GREEDY).
    pub arm_counts: Vec<usize>,
}

/// Matched off-policy value of `pick` on `holdout`: average realized quality
/// over the samples where the logged arm equals the policy's choice.
fn matched_value(holdout: &[SelectionSample], mut pick: impl FnMut(&[f64]) -> PoolAlgorithm) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for s in holdout {
        if pick(&s.features) == s.choice {
            sum += s.quality;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Deterministically shuffle `samples`, withhold `holdout_frac`, fit the
/// selector on the rest, and score it against fixed-arm baselines on the
/// holdout. Returns the fitted selector (trained on the *training split
/// only*, so the report is honest) together with the report.
pub fn retrain_from_samples(
    samples: &[SelectionSample],
    holdout_frac: f64,
    lambda: f64,
    seed: u64,
) -> (PortfolioSelector, RegretReport) {
    let mut shuffled: Vec<SelectionSample> = samples.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    shuffled.shuffle(&mut rng);
    let holdout_len = ((shuffled.len() as f64) * holdout_frac.clamp(0.0, 0.9)).round() as usize;
    let split = shuffled.len().saturating_sub(holdout_len.max(usize::from(
        shuffled.len() > 1 && holdout_frac > 0.0,
    )));
    let (train, holdout) = shuffled.split_at(split);
    let selector = fit_portfolio(train, lambda);

    let policy_value = matched_value(holdout, |f| selector.select_features(f));
    let always_mip_value = matched_value(holdout, |_| PoolAlgorithm::Mip);
    let (mut best_fixed_value, mut best_fixed_arm) = (f64::NEG_INFINITY, PoolAlgorithm::Mip);
    for &alg in &PoolAlgorithm::ALL {
        let v = matched_value(holdout, |_| alg);
        if v > best_fixed_value {
            best_fixed_value = v;
            best_fixed_arm = alg;
        }
    }
    if holdout.is_empty() {
        best_fixed_value = 0.0;
    }
    let report = RegretReport {
        train_samples: train.len(),
        holdout_samples: holdout.len(),
        policy_value,
        always_mip_value,
        best_fixed_value,
        best_fixed_arm: best_fixed_arm.label().to_string(),
        estimated_regret: (best_fixed_value - policy_value).max(0.0),
        arm_counts: selector.counts.clone(),
    };
    (selector, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic full-feedback stream with planted structure: on problems
    /// with feature[0] high, arm POP is best; otherwise MIP is best. CG is
    /// mediocre everywhere, GREEDY is bad everywhere.
    fn planted_samples(n: usize) -> Vec<SelectionSample> {
        let mut out = Vec::new();
        for i in 0..n {
            let big = i % 2 == 0;
            let mut features = vec![0.0; PORTFOLIO_FEATURE_DIM];
            features[0] = if big { 4.0 } else { 1.0 };
            features[3] = 0.2 + 0.01 * (i % 7) as f64;
            for &alg in &PoolAlgorithm::ALL {
                let quality = match (alg, big) {
                    (PoolAlgorithm::Pop, true) => 0.9,
                    (PoolAlgorithm::Pop, false) => 0.4,
                    (PoolAlgorithm::Mip, true) => 0.6,
                    (PoolAlgorithm::Mip, false) => 0.8,
                    (PoolAlgorithm::Cg, _) => 0.5,
                    (PoolAlgorithm::Greedy, _) => 0.2,
                };
                out.push(SelectionSample {
                    features: features.clone(),
                    choice: alg,
                    quality,
                    latency_secs: 0.01,
                    degraded: false,
                });
            }
        }
        out
    }

    #[test]
    fn fit_learns_the_planted_structure() {
        let selector = fit_portfolio(&planted_samples(40), 1e-3);
        let mut big = vec![0.0; PORTFOLIO_FEATURE_DIM];
        big[0] = 4.0;
        let mut small = vec![0.0; PORTFOLIO_FEATURE_DIM];
        small[0] = 1.0;
        assert_eq!(selector.select_features(&big), PoolAlgorithm::Pop);
        assert_eq!(selector.select_features(&small), PoolAlgorithm::Mip);
    }

    #[test]
    fn small_predicted_edges_stay_on_mip() {
        // a planted advantage inside the anchor margin is treated as model
        // noise: the selector keeps the MIP incumbent
        let mut samples = Vec::new();
        for i in 0..40 {
            let mut features = vec![0.0; PORTFOLIO_FEATURE_DIM];
            features[0] = 1.0 + 0.01 * (i % 3) as f64;
            for &alg in &PoolAlgorithm::ALL {
                let quality = match alg {
                    PoolAlgorithm::Pop => 0.72, // +0.02 over MIP — inside the margin
                    PoolAlgorithm::Mip => 0.70,
                    _ => 0.3,
                };
                samples.push(SelectionSample {
                    features: features.clone(),
                    choice: alg,
                    quality,
                    latency_secs: 0.01,
                    degraded: false,
                });
            }
        }
        let selector = fit_portfolio(&samples, 1e-3);
        let mut probe = vec![0.0; PORTFOLIO_FEATURE_DIM];
        probe[0] = 1.0;
        assert_eq!(selector.select_features(&probe), PoolAlgorithm::Mip);
    }

    #[test]
    fn untrained_selector_falls_back_to_mip() {
        let selector = PortfolioSelector::default();
        assert_eq!(selector.select_features(&[0.0; PORTFOLIO_FEATURE_DIM]), PoolAlgorithm::Mip);
        assert!(selector.informed_arms().is_empty());
    }

    #[test]
    fn retrain_beats_always_mip_on_planted_holdout() {
        // the round-trip property: label → train → predict on held-out
        // samples beats the always-MIP incumbent on realized labels
        let samples = planted_samples(60);
        let (selector, report) = retrain_from_samples(&samples, 0.25, 1e-3, 7);
        assert!(report.holdout_samples > 0);
        assert!(
            report.policy_value > report.always_mip_value + 1e-6,
            "policy {} vs always-MIP {}",
            report.policy_value,
            report.always_mip_value
        );
        // planted best arm alternates, so the adaptive policy should also
        // beat every fixed arm → zero estimated regret
        assert!(
            report.estimated_regret < 1e-9,
            "regret {}",
            report.estimated_regret
        );
        assert!(selector.counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn retrain_is_deterministic_for_a_seed() {
        let samples = planted_samples(30);
        let (a, ra) = retrain_from_samples(&samples, 0.25, 1e-3, 11);
        let (b, rb) = retrain_from_samples(&samples, 0.25, 1e-3, 11);
        assert_eq!(a.weights, b.weights);
        assert_eq!(ra.policy_value, rb.policy_value);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("rasa-portfolio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("selector.json");
        let selector = fit_portfolio(&planted_samples(10), 1e-3);
        selector.save(&path).unwrap();
        let back = PortfolioSelector::load(&path).unwrap();
        assert_eq!(selector.weights, back.weights);
        assert_eq!(selector.counts, back.counts);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solve_linear_rejects_singular_systems() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_none());
        let a = vec![vec![2.0, 0.0], vec![0.0, 3.0]];
        let x = solve_linear(a, vec![4.0, 9.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
    }
}
