//! Training loops for the learned selectors, plus weight persistence.

use crate::features::feature_graph;
use crate::labeling::LabeledSubproblem;
use crate::selectors::{GcnSelector, MlpSelector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa_nn::{Gcn, GcnConfig, GraphInput, Mlp, MlpConfig};

/// Summary of a training run.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainReport {
    /// Mean loss after the final epoch.
    pub final_loss: f64,
    /// Training-set accuracy of the final model.
    pub train_accuracy: f64,
    /// Number of examples trained on.
    pub examples: usize,
}

fn to_dataset(data: &[LabeledSubproblem]) -> Vec<(GraphInput, usize)> {
    data.iter()
        .map(|ex| (feature_graph(&ex.problem), ex.label.class_index()))
        .collect()
}

/// Train the GCN-BASED selector on labelled subproblems.
pub fn train_gcn(
    data: &[LabeledSubproblem],
    epochs: usize,
    lr: f64,
    seed: u64,
) -> (GcnSelector, TrainReport) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = Gcn::new(GcnConfig::default(), &mut rng);
    let dataset = to_dataset(data);
    let history = model.train(&dataset, epochs, lr);
    let report = TrainReport {
        final_loss: history.last().copied().unwrap_or(f64::NAN),
        train_accuracy: model.accuracy(&dataset),
        examples: dataset.len(),
    };
    (GcnSelector { model }, report)
}

/// Train the MLP-BASED ablation on the same data.
pub fn train_mlp(
    data: &[LabeledSubproblem],
    epochs: usize,
    lr: f64,
    seed: u64,
) -> (MlpSelector, TrainReport) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = Mlp::new(MlpConfig::default(), &mut rng);
    let dataset = to_dataset(data);
    let history = model.train(&dataset, epochs, lr);
    let report = TrainReport {
        final_loss: history.last().copied().unwrap_or(f64::NAN),
        train_accuracy: model.accuracy(&dataset),
        examples: dataset.len(),
    };
    (MlpSelector { model }, report)
}

/// Persist a trained GCN selector as JSON.
pub fn save_gcn(selector: &GcnSelector, path: &std::path::Path) -> std::io::Result<()> {
    let json = serde_json::to_string(selector).expect("GCN serializes");
    std::fs::write(path, json)
}

/// Load a GCN selector saved with [`save_gcn`].
pub fn load_gcn(path: &std::path::Path) -> std::io::Result<GcnSelector> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selectors::{AlgorithmSelector, PoolAlgorithm};
    use rasa_model::{FeatureMask, Problem, ProblemBuilder, ResourceVec};

    /// Synthetic labelled set where the winning algorithm correlates with
    /// replica count (a signal both learned selectors can pick up).
    fn synthetic_data(n: usize) -> Vec<LabeledSubproblem> {
        (0..n)
            .map(|i| {
                let cg_ish = i % 2 == 0;
                let replicas = if cg_ish { 40 } else { 2 };
                let mut b = ProblemBuilder::new();
                let s0 = b.add_service("a", replicas, ResourceVec::cpu_mem(1.0, 1.0));
                let s1 = b.add_service("b", replicas, ResourceVec::cpu_mem(1.0, 1.0));
                b.add_machines(4, ResourceVec::cpu_mem(16.0, 16.0), FeatureMask::EMPTY);
                b.add_affinity(s0, s1, 1.0);
                let problem: Problem = b.build().unwrap();
                LabeledSubproblem {
                    problem,
                    label: if cg_ish {
                        PoolAlgorithm::Cg
                    } else {
                        PoolAlgorithm::Mip
                    },
                    cg_objective: 0.0,
                    mip_objective: 0.0,
                }
            })
            .collect()
    }

    #[test]
    fn gcn_learns_synthetic_labels() {
        let data = synthetic_data(16);
        let (selector, report) = train_gcn(&data, 300, 0.02, 42);
        assert!(
            report.train_accuracy >= 0.9,
            "acc {}",
            report.train_accuracy
        );
        assert_eq!(report.examples, 16);
        assert_eq!(selector.select(&data[0].problem), data[0].label);
    }

    #[test]
    fn mlp_learns_feature_signal() {
        let data = synthetic_data(16);
        let (_selector, report) = train_mlp(&data, 400, 0.02, 42);
        // replica count is visible in pooled features, so MLP should learn it
        assert!(
            report.train_accuracy >= 0.9,
            "acc {}",
            report.train_accuracy
        );
    }

    #[test]
    fn save_and_load_round_trip() {
        let data = synthetic_data(4);
        let (selector, _) = train_gcn(&data, 10, 0.02, 1);
        let dir = std::env::temp_dir().join("rasa_select_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gcn.json");
        save_gcn(&selector, &path).unwrap();
        let loaded = load_gcn(&path).unwrap();
        assert_eq!(
            loaded.select(&data[0].problem),
            selector.select(&data[0].problem)
        );
        std::fs::remove_file(&path).ok();
    }
}
