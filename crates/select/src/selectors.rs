//! The five algorithm-selection strategies compared in Fig 8.

use crate::features::feature_graph;
use rasa_model::Problem;
use rasa_nn::{Gcn, Mlp};
use serde::{Deserialize, Serialize};

/// A member of the scheduling algorithm pool. The paper's pool is
/// {CG, MIP} (Section IV-C); the portfolio extension adds the POP strategy
/// rung (random shard split, `rasa_solver::pop`) and the greedy completion
/// floor as first-class arms.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum PoolAlgorithm {
    /// Column generation — class index 0.
    Cg,
    /// MIP-based — class index 1.
    Mip,
    /// POP strategy rung (random k-way shard split) — class index 2.
    Pop,
    /// Greedy affinity-aware first-fit (the completion pass as an arm) —
    /// class index 3.
    Greedy,
}

impl PoolAlgorithm {
    /// Every pool arm, in class-index order.
    pub const ALL: [PoolAlgorithm; 4] = [
        PoolAlgorithm::Cg,
        PoolAlgorithm::Mip,
        PoolAlgorithm::Pop,
        PoolAlgorithm::Greedy,
    ];

    /// Class index used by the learned classifiers and the portfolio
    /// selector's per-arm models.
    pub fn class_index(self) -> usize {
        match self {
            PoolAlgorithm::Cg => 0,
            PoolAlgorithm::Mip => 1,
            PoolAlgorithm::Pop => 2,
            PoolAlgorithm::Greedy => 3,
        }
    }

    /// Inverse of [`class_index`](Self::class_index).
    ///
    /// # Panics
    /// Panics on an index outside `0..4`.
    pub fn from_class_index(idx: usize) -> Self {
        match idx {
            0 => PoolAlgorithm::Cg,
            1 => PoolAlgorithm::Mip,
            2 => PoolAlgorithm::Pop,
            3 => PoolAlgorithm::Greedy,
            _ => panic!("unknown class index {idx}"),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PoolAlgorithm::Cg => "CG",
            PoolAlgorithm::Mip => "MIP",
            PoolAlgorithm::Pop => "POP",
            PoolAlgorithm::Greedy => "GREEDY",
        }
    }
}

/// Chooses a pool algorithm for a subproblem.
pub trait AlgorithmSelector {
    /// Strategy name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Pick the algorithm for `problem`.
    fn select(&self, problem: &Problem) -> PoolAlgorithm;
}

/// Always pick the same algorithm — the CG-only / MIP-only ablations.
#[derive(Clone, Copy, Debug)]
pub struct FixedSelector(pub PoolAlgorithm);

impl AlgorithmSelector for FixedSelector {
    fn name(&self) -> &'static str {
        self.0.label()
    }

    fn select(&self, _problem: &Problem) -> PoolAlgorithm {
        self.0
    }
}

/// The paper's empirical rule (Section V-C): compare the average container
/// count per service against the average machine count per machine type —
/// if services are "bigger" than machine groups, pick CG, else MIP.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeuristicSelector;

impl AlgorithmSelector for HeuristicSelector {
    fn name(&self) -> &'static str {
        "HEURISTIC"
    }

    fn select(&self, problem: &Problem) -> PoolAlgorithm {
        if problem.services.is_empty() {
            return PoolAlgorithm::Mip;
        }
        let avg_containers = problem
            .services
            .iter()
            .map(|s| f64::from(s.replicas))
            .sum::<f64>()
            / problem.services.len() as f64;
        let groups = problem.machine_groups();
        let avg_machines_per_type = if groups.is_empty() {
            0.0
        } else {
            problem.num_machines() as f64 / groups.len() as f64
        };
        if avg_containers > avg_machines_per_type {
            PoolAlgorithm::Cg
        } else {
            PoolAlgorithm::Mip
        }
    }
}

/// Topology-blind learned selector (mean-pooled features → MLP) — the
/// MLP-BASED ablation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MlpSelector {
    /// Trained model.
    pub model: Mlp,
}

impl AlgorithmSelector for MlpSelector {
    fn name(&self) -> &'static str {
        "MLP-BASED"
    }

    fn select(&self, problem: &Problem) -> PoolAlgorithm {
        let g = feature_graph(problem);
        PoolAlgorithm::from_class_index(self.model.predict(&g))
    }
}

/// The paper's proposal: a GCN over the subproblem's feature graph
/// (GCN-BASED in Fig 8).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GcnSelector {
    /// Trained model.
    pub model: Gcn,
}

impl AlgorithmSelector for GcnSelector {
    fn name(&self) -> &'static str {
        "GCN-BASED"
    }

    fn select(&self, problem: &Problem) -> PoolAlgorithm {
        let g = feature_graph(problem);
        PoolAlgorithm::from_class_index(self.model.predict(&g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{FeatureMask, ProblemBuilder, ResourceVec};

    #[test]
    fn class_index_round_trip() {
        for alg in PoolAlgorithm::ALL {
            assert_eq!(PoolAlgorithm::from_class_index(alg.class_index()), alg);
        }
        assert_eq!(PoolAlgorithm::Cg.label(), "CG");
        assert_eq!(PoolAlgorithm::Pop.label(), "POP");
        assert_eq!(PoolAlgorithm::Greedy.label(), "GREEDY");
        assert_eq!(FixedSelector(PoolAlgorithm::Pop).name(), "POP");
    }

    #[test]
    fn fixed_selector_is_constant() {
        let mut b = ProblemBuilder::new();
        b.add_service("a", 1, ResourceVec::ZERO);
        let p = b.build().unwrap();
        assert_eq!(
            FixedSelector(PoolAlgorithm::Cg).select(&p),
            PoolAlgorithm::Cg
        );
        assert_eq!(FixedSelector(PoolAlgorithm::Mip).name(), "MIP");
    }

    #[test]
    fn heuristic_prefers_cg_for_replica_heavy_problems() {
        // many containers per service, few machines per type → CG
        let mut b = ProblemBuilder::new();
        b.add_service("big", 100, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_machine(ResourceVec::cpu_mem(16.0, 8.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        assert_eq!(HeuristicSelector.select(&p), PoolAlgorithm::Cg);
    }

    #[test]
    fn heuristic_prefers_mip_for_machine_heavy_problems() {
        let mut b = ProblemBuilder::new();
        b.add_service("small", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(50, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        assert_eq!(HeuristicSelector.select(&p), PoolAlgorithm::Mip);
    }
}
