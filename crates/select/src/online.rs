//! The online-learning sample stream: every pipeline round logs one
//! `(features, choice, realized quality, latency)` tuple per freshly
//! solved subproblem, and the retrain path refits the portfolio selector
//! from the accumulated stream (the learning-tier loop of
//! arXiv:2306.17054 applied to strategy selection).
//!
//! [`SampleLog`] is a bounded, thread-safe ring buffer the pipeline writes
//! into from its (possibly parallel) merge loop. Cloning shares the
//! underlying buffer — a [`RasaConfig`](https://docs.rs) clone logs into
//! the same stream, which is exactly what a serve session wants: rounds
//! accumulate, `retrain` drains a snapshot. Persistence is plain JSONL via
//! `rasa_trace::persist` so streams survive process restarts.

use crate::selectors::PoolAlgorithm;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One observed outcome of routing a subproblem to a pool arm.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SelectionSample {
    /// [`portfolio_features`](crate::features::portfolio_features) of the
    /// subproblem at choice time.
    pub features: Vec<f64>,
    /// The arm that solved it (after any fallback, the *primary* choice —
    /// realized quality is attributed to the decision, not the rescue).
    pub choice: PoolAlgorithm,
    /// Realized normalized gained affinity in `[0, 1]`.
    pub quality: f64,
    /// Wall-clock the solve consumed, seconds.
    pub latency_secs: f64,
    /// `true` when the solve degraded (fallback ladder or deadline) — the
    /// quality is then the rescue's, discounted by the retrain fit.
    pub degraded: bool,
}

/// Default [`SampleLog`] capacity: enough for hundreds of serve rounds
/// without unbounded growth.
pub const DEFAULT_SAMPLE_CAPACITY: usize = 4096;

/// Bounded, thread-safe collector of [`SelectionSample`]s. Drop-oldest on
/// overflow (the caller counts drops via the returned flag). `Clone`
/// shares the buffer.
#[derive(Clone, Debug)]
pub struct SampleLog {
    inner: Arc<Mutex<VecDeque<SelectionSample>>>,
    capacity: usize,
}

impl Default for SampleLog {
    fn default() -> Self {
        SampleLog::with_capacity(DEFAULT_SAMPLE_CAPACITY)
    }
}

impl SampleLog {
    /// A log bounded at `capacity` samples (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        SampleLog {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<SelectionSample>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append a sample; returns `true` when an oldest sample was dropped
    /// to make room (callers surface that as a `select.samples_dropped`
    /// counter).
    pub fn record(&self, sample: SelectionSample) -> bool {
        let mut q = self.lock();
        let dropped = q.len() >= self.capacity;
        if dropped {
            q.pop_front();
        }
        q.push_back(sample);
        dropped
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Copy out the current contents, oldest first, leaving the log
    /// intact (retraining keeps accumulating context across retrains; the
    /// ring bound caps memory).
    pub fn snapshot(&self) -> Vec<SelectionSample> {
        self.lock().iter().cloned().collect()
    }

    /// Move out the current contents, oldest first, leaving the log empty.
    pub fn drain(&self) -> Vec<SelectionSample> {
        self.lock().drain(..).collect()
    }

    /// Bulk-append (e.g. samples loaded from a persisted JSONL stream);
    /// returns how many old samples were dropped to make room.
    pub fn extend(&self, samples: impl IntoIterator<Item = SelectionSample>) -> usize {
        let mut dropped = 0;
        for s in samples {
            if self.record(s) {
                dropped += 1;
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(q: f64) -> SelectionSample {
        SelectionSample {
            features: vec![1.0, 2.0],
            choice: PoolAlgorithm::Mip,
            quality: q,
            latency_secs: 0.1,
            degraded: false,
        }
    }

    #[test]
    fn ring_drops_oldest_and_reports_it() {
        let log = SampleLog::with_capacity(2);
        assert!(!log.record(sample(0.1)));
        assert!(!log.record(sample(0.2)));
        assert!(log.record(sample(0.3)), "overflow drops the oldest");
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].quality, 0.2);
        assert_eq!(snap[1].quality, 0.3);
        assert_eq!(log.len(), 2, "snapshot leaves the log intact");
        assert_eq!(log.drain().len(), 2);
        assert!(log.is_empty());
    }

    #[test]
    fn clones_share_the_buffer() {
        let log = SampleLog::default();
        let other = log.clone();
        other.record(sample(0.5));
        assert_eq!(log.len(), 1, "a cloned config logs into the same stream");
    }

    #[test]
    fn samples_round_trip_through_serde() {
        let s = sample(0.7);
        let json = serde_json::to_string(&s).unwrap();
        let back: SelectionSample = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
