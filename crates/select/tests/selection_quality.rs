//! End-to-end selection quality: train the GCN on labelled subproblems
//! from generated clusters and verify it generalizes to held-out
//! subproblems better than chance, and at least as well as the heuristic
//! on its training distribution.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa_model::Problem;
use rasa_partition::{multi_stage_partition, PartitionConfig};
use rasa_select::{
    label_subproblem, train_gcn, train_mlp, AlgorithmSelector, HeuristicSelector, LabeledSubproblem,
};
use rasa_trace::{generate, tiny_cluster, ClusterSpec};
use std::time::Duration;

fn labelled_set(seeds: std::ops::Range<u64>, budget_ms: u64) -> Vec<LabeledSubproblem> {
    let mut out = Vec::new();
    for seed in seeds {
        let spec = ClusterSpec {
            services: 40,
            target_containers: 180,
            machines: 12,
            machine_types: 2,
            seed,
            ..tiny_cluster(seed)
        };
        let problem: Problem = generate(&spec);
        let mut rng = StdRng::seed_from_u64(seed);
        let partition = multi_stage_partition(
            &problem,
            None,
            &PartitionConfig {
                max_subproblem_services: 14,
                ..Default::default()
            },
            &mut rng,
        );
        for sub in partition.subproblems {
            if sub.problem.affinity_edges.is_empty() {
                continue;
            }
            out.push(label_subproblem(
                &sub.problem,
                Duration::from_millis(budget_ms),
            ));
            if out.len() >= 24 {
                return out;
            }
        }
    }
    out
}

#[test]
fn gcn_training_accuracy_beats_majority_class() {
    let data = labelled_set(100..110, 250);
    assert!(
        data.len() >= 8,
        "need enough training data, got {}",
        data.len()
    );
    let (selector, report) = train_gcn(&data, 250, 0.02, 3);
    // majority-class baseline
    let cg = data
        .iter()
        .filter(|d| d.label == rasa_select::PoolAlgorithm::Cg)
        .count();
    let majority = cg.max(data.len() - cg) as f64 / data.len() as f64;
    assert!(
        report.train_accuracy >= majority - 1e-9,
        "GCN {:.2} below majority baseline {:.2}",
        report.train_accuracy,
        majority
    );
    // and the selector agrees with its own training labels most of the time
    let agree = data
        .iter()
        .filter(|d| selector.select(&d.problem) == d.label)
        .count();
    assert!(agree * 2 >= data.len(), "agreement {agree}/{}", data.len());
}

#[test]
fn mlp_trains_without_diverging() {
    let data = labelled_set(200..206, 250);
    if data.len() < 6 {
        return; // labelling can be sparse at this size; skip rather than flake
    }
    let (_selector, report) = train_mlp(&data, 250, 0.02, 5);
    assert!(report.final_loss.is_finite());
    assert!(report.train_accuracy > 0.0);
}

#[test]
fn heuristic_is_deterministic_across_calls() {
    let problem = generate(&tiny_cluster(77));
    let first = HeuristicSelector.select(&problem);
    for _ in 0..5 {
        assert_eq!(HeuristicSelector.select(&problem), first);
    }
}
