//! Property tests for the chaos harness: a seeded fault schedule with up to
//! `N-1` machine failures must always leave the cluster `validate()`-clean,
//! and every SLA-critical service must be as fully placed as the surviving
//! capacity permits (greedy completion can add nothing further).

use proptest::prelude::*;
use rasa_migrate::MigrateConfig;
use rasa_model::{validate, FeatureMask, Problem, ProblemBuilder, ResourceVec};
use rasa_sim::chaos::{run_chaos, ChaosEvent, ChaosSchedule};
use rasa_solver::MipBased;

fn chain_cluster(services: usize, machines: usize) -> Problem {
    let mut b = ProblemBuilder::new();
    let mut prev = None;
    for i in 0..services {
        let s = b.add_service(format!("s{i}"), 3, ResourceVec::cpu_mem(1.0, 1.0));
        if let Some(p) = prev {
            b.add_affinity(p, s, 5.0);
        }
        prev = Some(s);
    }
    b.add_machines(machines, ResourceVec::cpu_mem(4.0, 4.0), FeatureMask::EMPTY);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn chaos_schedules_always_end_feasible(
        seed in 0u64..1_000,
        failures in 1usize..4,
        machines in 3usize..6,
    ) {
        let p = chain_cluster(3, machines);
        // generate() internally caps kills at N-1 so capacity never hits zero
        let schedule = ChaosSchedule::generate(&p, seed, failures);
        let killed: usize = schedule
            .events
            .iter()
            .map(|e| match e {
                ChaosEvent::CorrelatedFailure { machines, .. }
                | ChaosEvent::MidSolveFailure { machines } => machines.len(),
                ChaosEvent::DeadlineStarvation => 0,
            })
            .sum();
        prop_assert!(killed < machines, "schedule would kill the whole cluster");

        let report = run_chaos(&p, &MipBased::new(), &schedule, &MigrateConfig::default());
        prop_assert!(report.is_clean(), "violations: {:?}", report.violations);

        // the final placement validates (partial allowed) on the degraded
        // cluster...
        let mut degraded = p.clone();
        for &d in &report.dead_machines {
            degraded.machines[d.idx()].capacity = ResourceVec::ZERO;
        }
        prop_assert!(validate(&degraded, &report.final_placement, false).is_empty());
        // ...and every service is as placed as surviving capacity permits
        prop_assert!(
            report.fully_recovered,
            "capacity permitted more replicas than the run recovered"
        );
    }
}
