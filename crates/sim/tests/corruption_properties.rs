//! Property tests for the data-corruption trust boundary: an arbitrary
//! seeded injector applied to an arbitrary generated cluster must never
//! panic the pipeline and must never yield an uncertified placement —
//! and the admission gate's repair must itself be admissible (auditing a
//! repaired problem finds nothing left to repair).
//!
//! Seeds that ever failed are pinned in
//! `corruption_properties.proptest-regressions` and replayed explicitly by
//! [`regression_corpus_replays_clean`] before any novel cases run, so the
//! corpus stays load-bearing even though the vendored proptest stand-in
//! does not read regression files itself.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa_core::{certify_placement, Deadline, RasaPipeline};
use rasa_model::ProblemValidator;
use rasa_sim::corruption::{inject, run_corruption_campaign, CorruptionKind};
use rasa_trace::{generate, ClusterSpec};
use std::time::Duration;

/// Small generated cluster; all randomness derives from `seed`.
fn small_cluster(seed: u64) -> ClusterSpec {
    ClusterSpec {
        name: format!("prop-{seed}"),
        services: 10,
        target_containers: 36,
        machines: 5,
        community_size: 4,
        group_rules: 1,
        seed,
        ..ClusterSpec::default()
    }
}

/// The in-memory corruption kinds (artifact/cache kinds are exercised by
/// the campaign property below).
const MEMORY_KINDS: [CorruptionKind; 8] = [
    CorruptionKind::NanDemand,
    CorruptionKind::InfDemand,
    CorruptionKind::CapacitySignFlip,
    CorruptionKind::NonFiniteCapacity,
    CorruptionKind::DanglingEdge,
    CorruptionKind::NonFiniteEdgeWeight,
    CorruptionKind::ZeroAntiAffinity,
    CorruptionKind::CorruptPriority,
];

/// Shared body: inject `kind` into a seed-generated cluster, run the
/// pipeline, and return an error description if anything panicked the
/// trust boundary or failed certification.
fn check_corrupted_round(seed: u64, kind: CorruptionKind) -> Result<(), String> {
    let mut problem = generate(&small_cluster(seed));
    let mut rng = StdRng::seed_from_u64(seed);
    inject(&mut problem, kind, &mut rng);

    // Gate 1 sees the corruption...
    let (repaired, report) = ProblemValidator::new().admit(&problem);
    if report.is_clean() {
        return Err(format!("{}: injection had no effect", kind.label()));
    }

    // ...and the pipeline survives it end to end
    let run =
        RasaPipeline::default().optimize(&problem, None, Deadline::after(Duration::from_secs(2)));
    let effective = repaired.as_ref().unwrap_or(&problem);
    certify_placement(
        effective,
        &run.outcome.placement,
        run.outcome.gained_affinity,
        false,
        "property",
    )
    .map(|_| ())
    .map_err(|e| format!("{}: {e}", kind.label()))
}

/// Replays every `(seed, kind)` pinned in the sibling
/// `.proptest-regressions` corpus. Add a line there (and a pair here)
/// whenever a property case fails, so the failure stays covered.
#[test]
fn regression_corpus_replays_clean() {
    // (seed, kind) pairs mirrored from corruption_properties.proptest-regressions
    let corpus: &[(u64, CorruptionKind)] = &[
        (42, CorruptionKind::NanDemand),
        (42, CorruptionKind::CapacitySignFlip),
        (7, CorruptionKind::DanglingEdge),
        (311, CorruptionKind::ZeroAntiAffinity),
        (311, CorruptionKind::NonFiniteCapacity),
    ];
    for &(seed, kind) in corpus {
        check_corrupted_round(seed, kind).expect("pinned regression case stays clean");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn corrupted_problems_never_panic_and_always_certify(
        seed in 0u64..1_000,
        kind_idx in 0usize..8,
    ) {
        let kind = MEMORY_KINDS[kind_idx];
        let outcome = check_corrupted_round(seed, kind);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }

    #[test]
    fn repair_is_idempotent(
        seed in 0u64..1_000,
        kind_idx in 0usize..8,
    ) {
        let mut problem = generate(&small_cluster(seed));
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        inject(&mut problem, MEMORY_KINDS[kind_idx], &mut rng);
        let (repaired, _) = ProblemValidator::new().admit(&problem);
        if let Some(r) = repaired {
            let second = ProblemValidator::new().audit(&r);
            prop_assert!(
                second.is_clean(),
                "{}: repaired problem still dirty: {:?}",
                MEMORY_KINDS[kind_idx].label(),
                second.issues
            );
        }
    }
}

proptest! {
    // campaign rounds run full pipeline solves; keep the case count low
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn short_campaigns_are_clean_for_any_seed(seed in 0u64..1_000) {
        let report = run_corruption_campaign(seed, 3);
        prop_assert!(
            report.is_clean(),
            "seed {seed}: {:?}",
            report
                .rounds
                .iter()
                .filter(|r| r.panicked || !r.certified)
                .collect::<Vec<_>>()
        );
    }
}
