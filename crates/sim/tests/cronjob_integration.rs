//! Integration tests for the CronJob workflow on generated clusters:
//! optimize → dry-run steady state → churn recovery, plus rollback paths.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa_baselines::Original;
use rasa_model::{normalized_gained_affinity, validate};
use rasa_sim::{CronJob, CronJobConfig, DataCollector, TickOutcome};
use rasa_solver::{MipBased, Scheduler};
use rasa_trace::{generate, tiny_cluster};
use std::time::Duration;

fn config() -> CronJobConfig {
    CronJobConfig {
        optimizer_budget: Duration::from_secs(3),
        collector: DataCollector {
            measurement_noise: 0.0,
        },
        ..Default::default()
    }
}

#[test]
fn cronjob_converges_then_dry_runs_on_a_generated_cluster() {
    let problem = generate(&tiny_cluster(24));
    let mut placement = Original
        .schedule(&problem, rasa_lp::Deadline::none())
        .placement;
    let before = normalized_gained_affinity(&problem, &placement);
    let cron = CronJob::new(config());
    let mut rng = StdRng::seed_from_u64(1);

    let mut migrated = 0;
    for _ in 0..4 {
        match cron.tick(&problem, &mut placement, &MipBased::new(), &mut rng) {
            TickOutcome::Migrated { .. } => migrated += 1,
            TickOutcome::DryRun { .. } => break,
            TickOutcome::RolledBack { reason } => panic!("rollback: {reason}"),
        }
    }
    assert!(migrated >= 1, "first tick should migrate");
    let after = normalized_gained_affinity(&problem, &placement);
    assert!(
        after > before + 0.03,
        "affinity should improve: {before} → {after}"
    );
    assert!(validate(&problem, &placement, true).is_empty());

    // steady state: next tick dry-runs
    let outcome = cron.tick(&problem, &mut placement, &MipBased::new(), &mut rng);
    assert!(
        matches!(outcome, TickOutcome::DryRun { .. }),
        "expected dry-run, got {outcome:?}"
    );
}

#[test]
fn zero_rollback_threshold_always_rolls_back() {
    let problem = generate(&tiny_cluster(22));
    let mut placement = Original
        .schedule(&problem, rasa_lp::Deadline::none())
        .placement;
    let before = placement.clone();
    let cron = CronJob::new(CronJobConfig {
        rollback_load_threshold: 0.0, // any load at all trips the check
        ..config()
    });
    let mut rng = StdRng::seed_from_u64(2);
    let outcome = cron.tick(&problem, &mut placement, &MipBased::new(), &mut rng);
    assert!(
        matches!(outcome, TickOutcome::RolledBack { .. }),
        "got {outcome:?}"
    );
    assert_eq!(placement, before, "rollback must not touch the placement");
}

#[test]
fn noisy_measurements_still_produce_feasible_migrations() {
    let problem = generate(&tiny_cluster(23));
    let mut placement = Original
        .schedule(&problem, rasa_lp::Deadline::none())
        .placement;
    let cron = CronJob::new(CronJobConfig {
        collector: DataCollector {
            measurement_noise: 0.2, // heavy metric noise
        },
        ..config()
    });
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..3 {
        let _ = cron.tick(&problem, &mut placement, &MipBased::new(), &mut rng);
        // regardless of what the optimizer saw, the real cluster stays valid
        assert!(validate(&problem, &placement, true).is_empty());
    }
}
