//! End-to-end soak: the seeded churn campaign against a live in-process
//! `rasa-serve` daemon must finish with zero panics, zero uncertified
//! publishes, bounded tenant state, and a clean drain — the acceptance
//! test for the service layer's robustness contract.

#![allow(clippy::unwrap_used)]

use rasa_sim::soak::{run_soak, SoakConfig};

#[test]
fn churn_campaign_holds_the_robustness_contract() {
    let config = SoakConfig {
        seed: 20260808,
        rounds: 90,
        ..SoakConfig::default()
    };
    let report = run_soak(&config);

    assert!(
        report.is_clean(),
        "soak violations: {:#?}\nfull report: {}",
        report.violations,
        serde_json::to_string_pretty(&report).unwrap()
    );
    assert_eq!(report.rounds_executed, 90, "wall cap must not truncate");
    assert_eq!(report.accepted_uncertified, 0);
    assert_eq!(report.counter("serve.solve_panics"), 0);
    assert_eq!(report.counter("serve.connection_panics"), 0);

    // the campaign must actually exercise the interesting paths
    assert!(report.responses.ok > 10, "healthy traffic: {:?}", report.responses);
    assert!(
        report.actions.starved_deltas > 0 && report.actions.slow_loris > 0,
        "schedule must include hostile actions: {:?}",
        report.actions
    );
    assert!(
        report.counter("serve.requests") > 50,
        "daemon saw the traffic: {:?}",
        report.serve_counters
    );

    // starved deadlines tripped at least one breaker, and while open the
    // daemon served stale-but-certified placements
    assert!(
        report.counter("serve.breaker_trips") >= 1,
        "starved tenant must trip its breaker: {:?}",
        report.serve_counters
    );
    assert!(
        report.stale_served >= 1,
        "open breaker must serve stale placements: {:?}",
        report.serve_counters
    );

    // hostile label churn stayed bounded: at most `max_tenants` resident
    // labels, evictions fired, and the conservation check (drain-vs-fold
    // accounting over the `serve.requests` family) raised no violation —
    // run_soak pushes one if any churn increment went missing
    assert!(
        report.label_count_after_churn <= config.serve.max_tenants as u64,
        "label cardinality must stay at or under the cap: {} > {}",
        report.label_count_after_churn,
        config.serve.max_tenants
    );
    assert!(
        report.label_evictions > 0,
        "churning 10x the cap of tenants must evict into `other`"
    );

    // the pre-drain observability capture succeeded
    assert!(
        report.tenants_json.contains("\"tenant\":\"starved\""),
        "tenant roster: {}",
        report.tenants_json
    );
    assert!(
        report.tenants_json.contains("\"slo\":"),
        "roster rows carry SLO burn: {}",
        report.tenants_json
    );
    assert!(
        report.log_tail_json.contains("\"entries\":"),
        "structured log tail: {}",
        report.log_tail_json
    );

    // drain completed and was measured
    assert!(report.drain.drain_seconds >= 0.0);
    assert!(report.wall_seconds > 0.0);
}
