//! End-to-end soak: the seeded churn campaign against a live in-process
//! `rasa-serve` daemon must finish with zero panics, zero uncertified
//! publishes, bounded tenant state, and a clean drain — the acceptance
//! test for the service layer's robustness contract.

#![allow(clippy::unwrap_used)]

use rasa_sim::soak::{run_soak, SoakConfig};

#[test]
fn churn_campaign_holds_the_robustness_contract() {
    let config = SoakConfig {
        seed: 20260808,
        rounds: 90,
        ..SoakConfig::default()
    };
    let report = run_soak(&config);

    assert!(
        report.is_clean(),
        "soak violations: {:#?}\nfull report: {}",
        report.violations,
        serde_json::to_string_pretty(&report).unwrap()
    );
    assert_eq!(report.rounds_executed, 90, "wall cap must not truncate");
    assert_eq!(report.accepted_uncertified, 0);
    assert_eq!(report.counter("serve.solve_panics"), 0);
    assert_eq!(report.counter("serve.connection_panics"), 0);

    // the campaign must actually exercise the interesting paths
    assert!(report.responses.ok > 10, "healthy traffic: {:?}", report.responses);
    assert!(
        report.actions.starved_deltas > 0 && report.actions.slow_loris > 0,
        "schedule must include hostile actions: {:?}",
        report.actions
    );
    assert!(
        report.counter("serve.requests") > 50,
        "daemon saw the traffic: {:?}",
        report.serve_counters
    );

    // starved deadlines tripped at least one breaker, and while open the
    // daemon served stale-but-certified placements
    assert!(
        report.counter("serve.breaker_trips") >= 1,
        "starved tenant must trip its breaker: {:?}",
        report.serve_counters
    );
    assert!(
        report.stale_served >= 1,
        "open breaker must serve stale placements: {:?}",
        report.serve_counters
    );

    // drain completed and was measured
    assert!(report.drain.drain_seconds >= 0.0);
    assert!(report.wall_seconds > 0.0);
}
