//! Chaos-injection harness: seeded deterministic fault schedules executed
//! against a live scheduler + migration loop, generalizing the single-failure
//! drill in [`crate::failover`].
//!
//! Three fault families (DESIGN.md "Fault tolerance & degraded modes"):
//!
//! * **Correlated machine deaths** — a burst of machines (think a rack or a
//!   power domain) dies together mid-migration; their containers are lost and
//!   their capacity drops to zero.
//! * **Mid-solve death** — machines die *between* the optimizer solving and
//!   the result being executed, so the controller holds a stale target that
//!   still references dead capacity and must repair it before migrating.
//! * **Deadline starvation** — the optimizer is invoked with an already
//!   expired deadline and whatever partial answer it returns must still be
//!   safe to act on.
//!
//! An [`InvariantChecker`] runs `validate()` after **every** migration step:
//! the placement must never overflow the degraded cluster's capacity, and a
//! service pushed below its SLA floor by a failure must recover
//! monotonically (its alive count may only rise until the floor is
//! restored). Violations are collected, not panicked on, so a chaos run
//! always produces a full report.
//!
//! Every round also runs under a `chaos.round` flight-recorder scope marked
//! degraded (each round *is* an injected fault), so a recorder configured
//! with a dump directory black-boxes every fault round: the span tree down
//! through the nested optimizer solve plus the typed event log. The `chaos`
//! binary enables this by default.

use crate::cronjob::reconcile_counts;
use crate::failover::recreate_lost;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasa_lp::Deadline;
use rasa_migrate::{plan_migration, MigrateConfig};
use rasa_model::{
    validate, ContainerAssignment, ContainerId, MachineId, Placement, Problem, ResourceVec,
    ServiceId,
};
use rasa_solver::{complete_placement, Scheduler};
use std::collections::BTreeSet;
use std::time::Duration;

/// Wall-clock budget for every non-starved solve the harness issues
/// (bootstrap, mid-solve targets, post-failure re-optimization). The
/// harness enforces the same deadline discipline it tests: an unbounded
/// solve would let one pathological branch-and-bound instance stall the
/// whole drill, and `complete_placement` repairs whatever partial the
/// budget leaves behind.
const SOLVE_BUDGET: Duration = Duration::from_secs(2);

/// One fault in a chaos schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// `machines` die together right after migration step `after_step` of
    /// the round's plan (clamped to the plan length).
    CorrelatedFailure {
        /// Plan step index after which the burst lands.
        after_step: usize,
        /// The machines that die together.
        machines: Vec<MachineId>,
    },
    /// `machines` die between the optimizer producing a target and the
    /// controller executing it: the target is stale and references dead
    /// capacity.
    MidSolveFailure {
        /// The machines that die mid-solve.
        machines: Vec<MachineId>,
    },
    /// The optimizer runs with an already-expired deadline; its (possibly
    /// empty) partial answer must still be safe to act on.
    DeadlineStarvation,
}

impl ChaosEvent {
    /// Human-readable one-liner for reports.
    pub fn describe(&self) -> String {
        match self {
            ChaosEvent::CorrelatedFailure {
                after_step,
                machines,
            } => format!("correlated failure of {machines:?} after step {after_step}"),
            ChaosEvent::MidSolveFailure { machines } => {
                format!("mid-solve failure of {machines:?}")
            }
            ChaosEvent::DeadlineStarvation => "deadline starvation".to_string(),
        }
    }
}

/// A seeded, deterministic sequence of faults. Same problem + same seed →
/// byte-identical schedule, so every chaos run is reproducible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// Seed the schedule was generated from.
    pub seed: u64,
    /// The faults, executed in order.
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// Generate a schedule killing at most `max_failures` machines (capped
    /// at `N-1` so the cluster never loses all capacity), in correlated
    /// bursts of one or two, interleaved with deadline-starvation rounds.
    /// No machine dies twice.
    pub fn generate(problem: &Problem, seed: u64, max_failures: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = vec![ChaosEvent::DeadlineStarvation];
        let mut alive: Vec<MachineId> = problem.machines.iter().map(|m| m.id).collect();
        let mut budget = max_failures.min(problem.num_machines().saturating_sub(1));
        while budget > 0 {
            let burst = if budget >= 2 && rng.gen_bool(0.5) { 2 } else { 1 };
            let mut machines = Vec::with_capacity(burst);
            for _ in 0..burst {
                let i = rng.gen_range(0..alive.len());
                machines.push(alive.swap_remove(i));
            }
            budget -= machines.len();
            if rng.gen_bool(0.4) {
                events.push(ChaosEvent::MidSolveFailure { machines });
            } else {
                events.push(ChaosEvent::CorrelatedFailure {
                    after_step: rng.gen_range(0..4usize),
                    machines,
                });
            }
            if rng.gen_bool(0.25) {
                events.push(ChaosEvent::DeadlineStarvation);
            }
        }
        ChaosSchedule { seed, events }
    }
}

/// Per-step safety monitor. `check` is called after every migration step of
/// every round; it records (never panics on) two invariant classes:
///
/// 1. `validate(degraded, placement, false)` must be empty — no capacity
///    overflow, no anti-affinity or schedulability violation on the
///    *degraded* cluster;
/// 2. monotone SLA recovery — once a failure pushes a service below its
///    `min_alive_fraction` floor, its alive count must never decrease again
///    until the floor is restored.
#[derive(Clone, Debug)]
pub struct InvariantChecker {
    floors: Vec<u32>,
    /// Highest alive count seen per service while it sits below its floor
    /// (`None` when at/above the floor or right after a failure burst).
    watermarks: Vec<Option<u32>>,
    /// Invariant violations observed so far (empty on a clean run).
    pub violations: Vec<String>,
}

impl InvariantChecker {
    /// Checker for `problem` with the SLA floor `⌊fraction · replicas⌋`
    /// (same formula the migration planner enforces).
    pub fn new(problem: &Problem, min_alive_fraction: f64) -> Self {
        let floors: Vec<u32> = problem
            .services
            .iter()
            .map(|s| (min_alive_fraction * f64::from(s.replicas)).floor() as u32)
            .collect();
        let watermarks = vec![None; floors.len()];
        InvariantChecker {
            floors,
            watermarks,
            violations: Vec::new(),
        }
    }

    /// A failure burst legitimately drops alive counts below the floor;
    /// reset the recovery watermarks so the drop itself is not flagged.
    pub fn on_failure(&mut self) {
        self.watermarks.iter_mut().for_each(|w| *w = None);
    }

    /// Validate `placement` against the degraded cluster and update the
    /// monotone-recovery watermarks. `phase` labels any violation recorded.
    pub fn check(&mut self, degraded: &Problem, placement: &Placement, phase: &str) {
        for v in validate(degraded, placement, false) {
            self.violations.push(format!("{phase}: {v:?}"));
        }
        for (i, svc) in degraded.services.iter().enumerate() {
            let alive = placement.placed_count(svc.id);
            if alive >= self.floors[i] {
                self.watermarks[i] = None;
                continue;
            }
            if let Some(w) = self.watermarks[i] {
                if alive < w {
                    self.violations.push(format!(
                        "{phase}: service {:?} alive count regressed {w} -> {alive} \
                         while below SLA floor {}",
                        svc.id, self.floors[i]
                    ));
                }
            }
            self.watermarks[i] = Some(self.watermarks[i].map_or(alive, |w| w.max(alive)));
        }
    }
}

/// What one chaos round did to the cluster.
#[derive(Clone, Debug)]
pub struct ChaosRound {
    /// Description of the injected event.
    pub event: String,
    /// Containers lost to dying machines this round.
    pub lost_containers: usize,
    /// Lost containers recreated immediately on surviving capacity.
    pub recreated: usize,
    /// Containers moved by migration plans this round.
    pub moves: usize,
    /// Planner error, if the round's migration could not be planned (the
    /// state simply stays at the last feasible point).
    pub error: Option<String>,
    /// Total alive fraction (placed / total replicas) after the round.
    pub alive_fraction: f64,
}

/// Full result of a chaos run.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// One entry per schedule event, in order.
    pub rounds: Vec<ChaosRound>,
    /// Machines dead at the end of the run.
    pub dead_machines: Vec<MachineId>,
    /// All invariant violations observed (empty on a clean run).
    pub violations: Vec<String>,
    /// The final container placement.
    pub final_placement: Placement,
    /// True when greedy completion cannot place a single further container
    /// on the surviving capacity — i.e. every service is as recovered as the
    /// degraded cluster permits.
    pub fully_recovered: bool,
}

impl ChaosReport {
    /// True when no invariant was violated at any step.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Execute `schedule` against `problem`: bootstrap a placement with
/// `scheduler`, then run every fault round, re-optimizing and migrating via
/// `rasa-migrate` under `migrate`'s SLA floor, with the invariant checker
/// auditing every step. Never panics on planner failures — they are recorded
/// in the round report and the state stays at the last feasible point.
pub fn run_chaos(
    problem: &Problem,
    scheduler: &dyn Scheduler,
    schedule: &ChaosSchedule,
    migrate: &MigrateConfig,
) -> ChaosReport {
    // bootstrap on the healthy cluster
    let mut bootstrap = scheduler
        .schedule(problem, Deadline::after(SOLVE_BUDGET))
        .placement;
    complete_placement(problem, &mut bootstrap);
    let mut state = ContainerAssignment::materialize(problem, &bootstrap);
    let mut dead: BTreeSet<MachineId> = BTreeSet::new();
    let mut checker = InvariantChecker::new(problem, migrate.min_alive_fraction);
    checker.check(problem, &state.to_placement(), "bootstrap");

    let mut rounds = Vec::with_capacity(schedule.events.len());
    for (round, event) in schedule.events.iter().enumerate() {
        let phase = format!("round {round} ({})", event.describe());
        let mut fscope = rasa_obs::flight::begin_solve(
            "chaos.round",
            &[
                ("round", round.to_string()),
                ("event", event.describe()),
                ("seed", schedule.seed.to_string()),
            ],
        );
        let r = match event {
            ChaosEvent::DeadlineStarvation => {
                // the optimizer gets no budget; whatever partial answer it
                // returns is completed/reconciled into a safe target
                let degraded = degraded_problem(problem, &dead);
                let current = state.to_placement();
                let mut target = scheduler
                    .schedule(&degraded, Deadline::after(Duration::ZERO))
                    .placement;
                complete_placement(&degraded, &mut target);
                reconcile_counts(&degraded, &current, &mut target);
                let (moves, error) =
                    migrate_to(&degraded, &mut state, &target, migrate, &mut checker, &phase);
                ChaosRound {
                    event: event.describe(),
                    lost_containers: 0,
                    recreated: 0,
                    moves,
                    error,
                    alive_fraction: alive_fraction(problem, &state.to_placement()),
                }
            }
            ChaosEvent::MidSolveFailure { machines } => {
                // the optimizer solves against the cluster as it was...
                let pre = degraded_problem(problem, &dead);
                let mut target = scheduler.schedule(&pre, Deadline::after(SOLVE_BUDGET)).placement;
                // ...then the burst lands before the result is executed
                let lost = kill_machines(&mut state, &mut dead, machines);
                checker.on_failure();
                let degraded = degraded_problem(problem, &dead);
                // phase A — restore the SLA: recreate every offline
                // container into completion slots on surviving capacity
                let current = state.to_placement();
                let mut repaired = current.clone();
                complete_placement(&degraded, &mut repaired);
                let offline = offline_containers(problem, &state);
                let recreated = recreate_lost(&mut state, &current, &repaired, &offline);
                checker.check(&degraded, &state.to_placement(), &phase);
                // phase B — the stale target is stripped of dead machines,
                // repaired, and only then acted on
                for &m in dead.iter() {
                    for svc in &problem.services {
                        let c = target.count(svc.id, m);
                        if c > 0 {
                            target.remove(svc.id, m, c);
                        }
                    }
                }
                complete_placement(&degraded, &mut target);
                reconcile_counts(&degraded, &state.to_placement(), &mut target);
                let (moves, error) =
                    migrate_to(&degraded, &mut state, &target, migrate, &mut checker, &phase);
                ChaosRound {
                    event: event.describe(),
                    lost_containers: lost.len(),
                    recreated,
                    moves,
                    error,
                    alive_fraction: alive_fraction(problem, &state.to_placement()),
                }
            }
            ChaosEvent::CorrelatedFailure {
                after_step,
                machines,
            } => {
                // a normal re-optimization round is in flight...
                let degraded0 = degraded_problem(problem, &dead);
                let current = state.to_placement();
                let mut target = scheduler
                    .schedule(&degraded0, Deadline::after(SOLVE_BUDGET))
                    .placement;
                complete_placement(&degraded0, &mut target);
                reconcile_counts(&degraded0, &current, &mut target);
                let mut error = None;
                let mut moves = 0usize;
                if current != target {
                    match plan_migration(&degraded0, &state, &target, migrate) {
                        Ok(plan) => {
                            for step in plan.steps.iter().take(after_step + 1) {
                                for &(c, _m) in &step.deletes {
                                    state.unassign(c);
                                }
                                for &(c, m) in &step.creates {
                                    state.assign(c, m);
                                    moves += 1;
                                }
                                checker.check(&degraded0, &state.to_placement(), &phase);
                            }
                        }
                        Err(e) => error = Some(e.to_string()),
                    }
                }
                // ...when the burst lands mid-plan. Recovery must re-place
                // both the burst-lost containers and any replica deleted by
                // an executed step whose create step never ran.
                let lost = kill_machines(&mut state, &mut dead, machines);
                checker.on_failure();
                let degraded = degraded_problem(problem, &dead);
                let current = state.to_placement();
                let mut repaired = current.clone();
                complete_placement(&degraded, &mut repaired);
                let offline = offline_containers(problem, &state);
                let recreated = recreate_lost(&mut state, &current, &repaired, &offline);
                checker.check(&degraded, &state.to_placement(), &phase);
                // residual difference goes through the planner
                reconcile_counts(&degraded, &state.to_placement(), &mut repaired);
                let (res_moves, res_err) =
                    migrate_to(&degraded, &mut state, &repaired, migrate, &mut checker, &phase);
                ChaosRound {
                    event: event.describe(),
                    lost_containers: lost.len(),
                    recreated,
                    moves: moves + res_moves,
                    error: error.or(res_err),
                    alive_fraction: alive_fraction(problem, &state.to_placement()),
                }
            }
        };
        let mut r = r;
        // top-up: the round's migrations may have opened room for replicas
        // that could not be recreated earlier (capacity freed by a better
        // arrangement), so retry the offline pool before closing the round
        let offline = offline_containers(problem, &state);
        if !offline.is_empty() {
            let degraded = degraded_problem(problem, &dead);
            let current = state.to_placement();
            let mut repaired = current.clone();
            if complete_placement(&degraded, &mut repaired) > 0 {
                r.recreated += recreate_lost(&mut state, &current, &repaired, &offline);
                checker.check(&degraded, &state.to_placement(), &phase);
                r.alive_fraction = alive_fraction(problem, &state.to_placement());
            }
        }
        // every chaos round is an injected fault: mark the recording
        // degraded so a dump-configured recorder black-boxes it
        fscope.set_verdict(
            match event {
                ChaosEvent::CorrelatedFailure { .. } => "correlated_failure",
                ChaosEvent::MidSolveFailure { .. } => "mid_solve_failure",
                ChaosEvent::DeadlineStarvation => "deadline_starvation",
            },
            true,
        );
        drop(fscope);
        rounds.push(r);
    }

    let final_placement = state.to_placement();
    let degraded = degraded_problem(problem, &dead);
    let mut probe = final_placement.clone();
    let fully_recovered = complete_placement(&degraded, &mut probe) == 0;
    ChaosReport {
        rounds,
        dead_machines: dead.into_iter().collect(),
        violations: checker.violations,
        final_placement,
        fully_recovered,
    }
}

/// Clone of `problem` with every dead machine's capacity zeroed.
fn degraded_problem(problem: &Problem, dead: &BTreeSet<MachineId>) -> Problem {
    let mut degraded = problem.clone();
    for &d in dead {
        degraded.machines[d.idx()].capacity = ResourceVec::ZERO;
    }
    degraded
}

/// Every replica currently offline: burst-lost containers plus any replica
/// a partially-executed plan deleted without reaching its create step.
fn offline_containers(problem: &Problem, state: &ContainerAssignment) -> Vec<ContainerId> {
    let mut out = Vec::new();
    for (si, svc) in problem.services.iter().enumerate() {
        let s = ServiceId(si as u32);
        for r in 0..svc.replicas {
            let c = ContainerId::new(s, r);
            if state.machine_of(c).is_none() {
                out.push(c);
            }
        }
    }
    out
}

/// Mark `machines` dead and lose every container assigned to them.
fn kill_machines(
    state: &mut ContainerAssignment,
    dead: &mut BTreeSet<MachineId>,
    machines: &[MachineId],
) -> Vec<ContainerId> {
    dead.extend(machines.iter().copied());
    let lost: Vec<ContainerId> = state
        .iter_assigned()
        .filter(|&(_, m)| machines.contains(&m))
        .map(|(c, _)| c)
        .collect();
    for &c in &lost {
        state.unassign(c);
    }
    lost
}

/// Plan and execute a migration toward `target`, auditing after every step.
/// Returns `(moves, planner_error)`; on a planner error the state is left
/// untouched (still feasible).
fn migrate_to(
    degraded: &Problem,
    state: &mut ContainerAssignment,
    target: &Placement,
    migrate: &MigrateConfig,
    checker: &mut InvariantChecker,
    phase: &str,
) -> (usize, Option<String>) {
    if &state.to_placement() == target {
        return (0, None);
    }
    match plan_migration(degraded, state, target, migrate) {
        Ok(plan) => {
            let mut moves = 0usize;
            for step in &plan.steps {
                for &(c, _m) in &step.deletes {
                    state.unassign(c);
                }
                for &(c, m) in &step.creates {
                    state.assign(c, m);
                    moves += 1;
                }
                checker.check(degraded, &state.to_placement(), phase);
            }
            (moves, None)
        }
        Err(e) => (0, Some(e.to_string())),
    }
}

/// Total alive fraction: placed containers over total replicas.
fn alive_fraction(problem: &Problem, placement: &Placement) -> f64 {
    let total: u64 = problem.services.iter().map(|s| u64::from(s.replicas)).sum();
    if total == 0 {
        1.0
    } else {
        placement.total_placed() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{FeatureMask, ProblemBuilder, ServiceId};
    use rasa_solver::MipBased;

    fn cluster(machines: usize) -> Problem {
        let mut b = ProblemBuilder::new();
        let a = b.add_service("a", 4, ResourceVec::cpu_mem(1.0, 1.0));
        let c = b.add_service("c", 4, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(machines, ResourceVec::cpu_mem(6.0, 6.0), FeatureMask::EMPTY);
        b.add_affinity(a, c, 10.0);
        b.build().unwrap()
    }

    #[test]
    fn schedule_generation_is_deterministic_and_bounded() {
        let p = cluster(4);
        let s1 = ChaosSchedule::generate(&p, 99, 3);
        let s2 = ChaosSchedule::generate(&p, 99, 3);
        assert_eq!(s1, s2);
        let mut killed: Vec<MachineId> = Vec::new();
        for e in &s1.events {
            match e {
                ChaosEvent::CorrelatedFailure { machines, .. }
                | ChaosEvent::MidSolveFailure { machines } => killed.extend(machines),
                ChaosEvent::DeadlineStarvation => {}
            }
        }
        assert!(killed.len() <= 3, "kills {} machines", killed.len());
        let distinct: BTreeSet<_> = killed.iter().collect();
        assert_eq!(distinct.len(), killed.len(), "a machine died twice");
        // a different seed produces a different schedule (overwhelmingly)
        let s3 = ChaosSchedule::generate(&p, 100, 3);
        assert!(s1 != s3 || s1.events.len() == 1);
    }

    #[test]
    fn correlated_two_machine_burst_recovers_to_feasible_state() {
        // the acceptance drill: ≥2 correlated machine failures, full audit
        let p = cluster(4);
        let schedule = ChaosSchedule {
            seed: 0,
            events: vec![ChaosEvent::CorrelatedFailure {
                after_step: 1,
                machines: vec![MachineId(1), MachineId(2)],
            }],
        };
        let report = run_chaos(&p, &MipBased::new(), &schedule, &MigrateConfig::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.dead_machines, vec![MachineId(1), MachineId(2)]);
        // surviving capacity (2 machines × 6) covers all 8 containers
        assert!(report.fully_recovered);
        assert_eq!(report.final_placement.placed_count(ServiceId(0)), 4);
        assert_eq!(report.final_placement.placed_count(ServiceId(1)), 4);
        for d in [MachineId(1), MachineId(2)] {
            assert_eq!(report.final_placement.count(ServiceId(0), d), 0);
            assert_eq!(report.final_placement.count(ServiceId(1), d), 0);
        }
    }

    #[test]
    fn mid_solve_failure_strips_stale_target() {
        let p = cluster(4);
        let schedule = ChaosSchedule {
            seed: 0,
            events: vec![ChaosEvent::MidSolveFailure {
                machines: vec![MachineId(0)],
            }],
        };
        let report = run_chaos(&p, &MipBased::new(), &schedule, &MigrateConfig::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        for s in [ServiceId(0), ServiceId(1)] {
            assert_eq!(report.final_placement.count(s, MachineId(0)), 0);
        }
        assert!(report.fully_recovered);
    }

    #[test]
    fn starvation_round_keeps_state_feasible() {
        let p = cluster(3);
        let schedule = ChaosSchedule {
            seed: 0,
            events: vec![ChaosEvent::DeadlineStarvation, ChaosEvent::DeadlineStarvation],
        };
        let report = run_chaos(&p, &MipBased::new(), &schedule, &MigrateConfig::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.dead_machines.is_empty());
        // nothing died, so the full replica set stays alive
        assert!((report.rounds.last().unwrap().alive_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generated_schedule_with_n_minus_1_failures_stays_clean() {
        let p = cluster(4);
        let schedule = ChaosSchedule::generate(&p, 7, 3);
        let report = run_chaos(&p, &MipBased::new(), &schedule, &MigrateConfig::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        // the final placement validates (partial allowed) on the degraded cluster
        let mut degraded = p.clone();
        for &d in &report.dead_machines {
            degraded.machines[d.idx()].capacity = ResourceVec::ZERO;
        }
        assert!(validate(&degraded, &report.final_placement, false).is_empty());
    }
}
