//! Seeded churn soak harness for the `rasa-serve` daemon.
//!
//! Boots an in-process [`Server`], then drives it with a deterministic,
//! seeded mix of hostile and well-formed traffic: tenant arrivals and
//! departures, fresh snapshots, single deltas and concurrent delta
//! storms, deadline-starved rounds (to trip circuit breakers), slow-loris
//! connections, mid-request disconnects, oversized bodies, truncated
//! JSON, and corrupted snapshots reusing the [`corruption`] injectors.
//!
//! The campaign asserts the daemon's robustness contract:
//!
//! * **zero panics** — `serve.solve_panics` and `serve.connection_panics`
//!   stay at zero over the whole run;
//! * **zero uncertified publishes** — every `"accepted":true` response
//!   carries `"certified":true`;
//! * **bounded state** — live tenants never exceed the configured cap and
//!   resident memory growth stays under a budget;
//! * **bounded breaker flapping** — breaker trips stay under a threshold
//!   proportional to the deliberately-starved traffic;
//! * **degraded health reporting** — `/healthz` answers 503 naming the
//!   tenant while a breaker is open;
//! * **bounded label cardinality** — churning 10× the label cap of
//!   distinct tenants leaves at most `label_cap` resident labels, evicts
//!   into the `other` bucket, and conserves family totals;
//! * **clean drain** — the server drains and reports when the campaign
//!   ends.
//!
//! Violations are collected (not panicked) into [`SoakReport::violations`]
//! so a CI run can upload the full report alongside the failure.
//!
//! [`corruption`]: crate::corruption

use crate::corruption::{inject, CorruptionKind};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rasa_serve::{BreakerConfig, HttpLimits, ServeConfig, Server};
use rasa_trace::{generate, tiny_cluster};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Campaign parameters. [`Default`] gives a fast deterministic profile
/// suitable for tests; CI scales `rounds`/`max_wall` up.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Master seed for the action schedule, problem generation, and
    /// corruption injection.
    pub seed: u64,
    /// Number of churn actions to attempt.
    pub rounds: usize,
    /// Wall-clock cap: the campaign stops early once exceeded.
    pub max_wall: Duration,
    /// Names in the rotating tenant pool (`t0..tN`), excluding the
    /// dedicated deadline-starved tenant.
    pub tenant_pool: usize,
    /// Breaker-trip budget: more trips than this counts as flapping.
    pub max_breaker_trips: u64,
    /// Resident-memory growth budget in KiB (Linux only; ignored where
    /// `/proc/self/status` is unavailable).
    pub max_rss_growth_kib: i64,
    /// Server configuration for the in-process daemon.
    pub serve: ServeConfig,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 42,
            rounds: 120,
            max_wall: Duration::from_secs(120),
            tenant_pool: 6,
            max_breaker_trips: 30,
            max_rss_growth_kib: 512 * 1024,
            serve: ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                queue_capacity: 2,
                max_tenants: 8,
                http: HttpLimits {
                    read_timeout: Duration::from_millis(150),
                    ..HttpLimits::default()
                },
                default_deadline: Duration::from_millis(250),
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    cooldown: Duration::from_secs(2),
                },
                drain_grace: Duration::from_secs(15),
                ..ServeConfig::default()
            },
        }
    }
}

/// How many times each churn action ran.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ActionTally {
    /// Fresh snapshot posted to a pool tenant.
    pub snapshots: u64,
    /// Snapshot corrupted by a [`CorruptionKind`] injector before posting.
    pub corrupted_snapshots: u64,
    /// Single delta posted to a pool tenant.
    pub deltas: u64,
    /// Burst of concurrent deltas against one tenant.
    pub delta_storms: u64,
    /// Delta with a 1 ms deadline against the starved tenant.
    pub starved_deltas: u64,
    /// Connection that dribbles bytes slower than the read timeout.
    pub slow_loris: u64,
    /// Connection dropped midway through the request body.
    pub disconnects: u64,
    /// Body with a declared length over the server limit.
    pub oversized: u64,
    /// Valid JSON cut off mid-document.
    pub truncated: u64,
    /// `DELETE /tenant` for a pool tenant.
    pub removals: u64,
}

/// Response statuses observed by the churn client.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ResponseTally {
    /// `200 OK` (fresh or stale).
    pub ok: u64,
    /// `400 Bad Request` (malformed JSON / bad params).
    pub bad_request: u64,
    /// `404 Not Found`.
    pub not_found: u64,
    /// `408 Request Timeout` (slow-loris caught).
    pub request_timeout: u64,
    /// `413 Payload Too Large`.
    pub payload_too_large: u64,
    /// `422 Unprocessable Entity` (structurally invalid delta).
    pub unprocessable: u64,
    /// `429 Too Many Requests` (queue full / tenant cap).
    pub too_many_requests: u64,
    /// `503 Service Unavailable` (draining / no placement yet).
    pub unavailable: u64,
    /// `504 Gateway Timeout` (round outlived the request timeout).
    pub gateway_timeout: u64,
    /// Any other status.
    pub other: u64,
    /// No response at all (deliberate disconnects, resets).
    pub no_response: u64,
}

/// Drain outcome copied out of the server's
/// [`DrainReport`](rasa_serve::DrainReport).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DrainSummary {
    /// Seconds the drain took.
    pub drain_seconds: f64,
    /// Queued jobs abandoned (black-boxed + 503) at the grace cutoff.
    pub abandoned_jobs: u64,
    /// Rounds that completed during the drain window.
    pub inflight_completed: u64,
    /// Flight-recorder black-box dumps written over the server lifetime.
    pub blackbox_dumps: u64,
}

/// Everything a soak campaign measured, serializable as the CI artifact.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SoakReport {
    /// Master seed the campaign ran under.
    pub seed: u64,
    /// Actions actually executed (≤ configured rounds if the wall cap hit).
    pub rounds_executed: u64,
    /// Campaign wall time in seconds, drain included.
    pub wall_seconds: f64,
    /// Per-action counts.
    pub actions: ActionTally,
    /// Per-status counts.
    pub responses: ResponseTally,
    /// `200` responses that carried `"stale":true` (breaker-open serving).
    pub stale_served: u64,
    /// `"accepted":true` responses missing `"certified":true` — must be 0.
    pub accepted_uncertified: u64,
    /// Growth of `serve.*` counters over the campaign, name-sorted.
    pub serve_counters: Vec<(String, u64)>,
    /// Resident-set growth in KiB (`None` off Linux).
    pub rss_growth_kib: Option<i64>,
    /// Distinct metric labels resident after the hostile label-churn
    /// phase (must stay at or under the registry's label cap).
    pub label_count_after_churn: u64,
    /// Growth of `obs.label_evictions` over the campaign (churning 10×
    /// the cap of distinct tenants must evict).
    pub label_evictions: u64,
    /// `GET /tenants` body captured just before drain (uploaded by CI on
    /// failure).
    pub tenants_json: String,
    /// `GET /debug/log?tail=128` body captured just before drain.
    pub log_tail_json: String,
    /// Drain outcome.
    pub drain: DrainSummary,
    /// Invariant violations; empty means the campaign passed.
    pub violations: Vec<String>,
}

impl SoakReport {
    /// `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Value of a `serve.*` counter delta (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.serve_counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }
}

struct Reply {
    status: u16,
    body: String,
}

/// One-shot HTTP exchange; `None` when the connection failed or was reset
/// (which the soak treats as data, not an error).
fn exchange(addr: SocketAddr, method: &str, target: &str, body: &str) -> Option<Reply> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .ok()?;
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: soak\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).ok()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).ok()?;
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())?;
    Some(Reply {
        status,
        body: body.to_string(),
    })
}

fn tally_response(report: &mut SoakReport, reply: Option<Reply>) {
    let Some(reply) = reply else {
        report.responses.no_response += 1;
        return;
    };
    match reply.status {
        200 => report.responses.ok += 1,
        400 => report.responses.bad_request += 1,
        404 => report.responses.not_found += 1,
        408 => report.responses.request_timeout += 1,
        413 => report.responses.payload_too_large += 1,
        422 => report.responses.unprocessable += 1,
        429 => report.responses.too_many_requests += 1,
        503 => report.responses.unavailable += 1,
        504 => report.responses.gateway_timeout += 1,
        _ => report.responses.other += 1,
    }
    if reply.body.contains("\"stale\":true") {
        report.stale_served += 1;
        if !reply.body.contains("\"certified\":true") {
            report.violations.push(format!(
                "stale response without certified placement: {}",
                reply.body
            ));
        }
    }
    if reply.body.contains("\"accepted\":true") && !reply.body.contains("\"certified\":true") {
        report.accepted_uncertified += 1;
        report.violations.push(format!(
            "accepted response without certification: {}",
            reply.body
        ));
    }
}

fn problem_json(services: usize, seed: u64, corrupt: Option<(CorruptionKind, &mut StdRng)>) -> String {
    let mut spec = tiny_cluster(seed);
    spec.services = services;
    spec.target_containers = services as u64 * 4;
    spec.machines = (services / 3).max(4);
    let mut problem = generate(&spec);
    if let Some((kind, rng)) = corrupt {
        inject(&mut problem, kind, rng);
    }
    // Non-finite floats may refuse to serialize; hand the daemon malformed
    // JSON in that case — it must answer 400, not fall over.
    serde_json::to_string(&problem).unwrap_or_else(|_| "{\"services\":[{\"broken\":".to_string())
}

fn delta_json(rng: &mut StdRng, service_span: u32) -> String {
    let a = rng.gen_range(0..service_span);
    let mut b = rng.gen_range(0..service_span);
    if b == a {
        b = (b + 1) % service_span.max(2);
    }
    let weight = 1.0 + rng.gen_range(0.0..1.0) * 60.0;
    format!(
        "{{\"edge_updates\":[{{\"a\":{a},\"b\":{b},\"weight\":{weight:.3}}}],\"replica_updates\":[]}}"
    )
}

fn rss_kib() -> Option<i64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

const CORRUPTIONS: [CorruptionKind; 5] = [
    CorruptionKind::DanglingEdge,
    CorruptionKind::CapacitySignFlip,
    CorruptionKind::ZeroAntiAffinity,
    CorruptionKind::NonFiniteEdgeWeight,
    CorruptionKind::NanDemand,
];

/// Run a full churn campaign against a freshly booted in-process daemon
/// and return the report. Never panics on daemon misbehavior — failures
/// land in [`SoakReport::violations`].
pub fn run_soak(config: &SoakConfig) -> SoakReport {
    let mut report = SoakReport {
        seed: config.seed,
        ..SoakReport::default()
    };
    let before = rasa_obs::global().snapshot();
    let rss_before = rss_kib();
    let started = Instant::now();

    let server = match Server::bind(config.serve.clone()) {
        Ok(server) => server,
        Err(e) => {
            report.violations.push(format!("bind failed: {e}"));
            return report;
        }
    };
    let addr = match server.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            report.violations.push(format!("local_addr failed: {e}"));
            return report;
        }
    };
    let handle = server.handle();
    let daemon = std::thread::spawn(move || server.run());

    let mut rng = StdRng::seed_from_u64(config.seed);
    let read_timeout = config.serve.http.read_timeout;

    // The starved tenant gets a deliberately larger problem so 1 ms
    // deadlines reliably exhaust the ladder and trip its breaker.
    let starved_body = problem_json(40, config.seed ^ 0x5afe, None);
    tally_response(
        &mut report,
        exchange(addr, "POST", "/snapshot?tenant=starved", &starved_body),
    );

    for round in 0..config.rounds {
        if started.elapsed() > config.max_wall {
            break;
        }
        report.rounds_executed = round as u64 + 1;
        let tenant = format!("t{}", rng.gen_range(0..config.tenant_pool as u32));
        let roll = rng.gen_range(0..100u32);
        match roll {
            0..=24 => {
                report.actions.snapshots += 1;
                let body = problem_json(6 + rng.gen_range(0..6) as usize, rng.gen(), None);
                let target = format!("/snapshot?tenant={tenant}");
                tally_response(&mut report, exchange(addr, "POST", &target, &body));
            }
            25..=33 => {
                report.actions.corrupted_snapshots += 1;
                let kind = CORRUPTIONS[rng.gen_range(0..CORRUPTIONS.len() as u32) as usize];
                let seed = rng.gen();
                let body = problem_json(8, seed, Some((kind, &mut rng)));
                let target = format!("/snapshot?tenant={tenant}");
                tally_response(&mut report, exchange(addr, "POST", &target, &body));
            }
            34..=57 => {
                report.actions.deltas += 1;
                let body = delta_json(&mut rng, 12);
                let target = format!("/delta?tenant={tenant}");
                tally_response(&mut report, exchange(addr, "POST", &target, &body));
            }
            58..=65 => {
                report.actions.delta_storms += 1;
                let clients: Vec<_> = (0..4)
                    .map(|_| {
                        let body = delta_json(&mut rng, 12);
                        let target = format!("/delta?tenant={tenant}");
                        std::thread::spawn(move || exchange(addr, "POST", &target, &body))
                    })
                    .collect();
                for client in clients {
                    match client.join() {
                        Ok(reply) => tally_response(&mut report, reply),
                        Err(_) => report
                            .violations
                            .push("storm client thread panicked".to_string()),
                    }
                }
            }
            66..=71 => {
                report.actions.starved_deltas += 1;
                let body = delta_json(&mut rng, 40);
                tally_response(
                    &mut report,
                    exchange(addr, "POST", "/delta?tenant=starved&deadline_ms=1", &body),
                );
            }
            72..=77 => {
                report.actions.slow_loris += 1;
                if let Ok(mut stream) = TcpStream::connect(addr) {
                    let _ = stream.write_all(b"POST /snapshot?tena");
                    std::thread::sleep(read_timeout + Duration::from_millis(100));
                    let _ = stream.write_all(b"nt=slow HTTP/1.1\r\n");
                    let mut raw = String::new();
                    let _ = stream
                        .set_read_timeout(Some(Duration::from_secs(5)))
                        .and_then(|_| stream.read_to_string(&mut raw).map(|_| ()));
                    if raw.contains(" 408 ") {
                        report.responses.request_timeout += 1;
                    } else {
                        report.responses.no_response += 1;
                    }
                }
            }
            78..=83 => {
                report.actions.disconnects += 1;
                if let Ok(mut stream) = TcpStream::connect(addr) {
                    let head = format!(
                        "POST /snapshot?tenant={tenant} HTTP/1.1\r\nContent-Length: 4096\r\n\r\n{{\"serv"
                    );
                    let _ = stream.write_all(head.as_bytes());
                    drop(stream);
                    report.responses.no_response += 1;
                }
            }
            84..=87 => {
                report.actions.oversized += 1;
                if let Ok(mut stream) = TcpStream::connect(addr) {
                    let head = format!(
                        "POST /snapshot?tenant={tenant} HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"
                    );
                    let _ = stream.write_all(head.as_bytes());
                    let mut raw = String::new();
                    let _ = stream
                        .set_read_timeout(Some(Duration::from_secs(5)))
                        .and_then(|_| stream.read_to_string(&mut raw).map(|_| ()));
                    if raw.contains(" 413 ") {
                        report.responses.payload_too_large += 1;
                    } else {
                        report.responses.no_response += 1;
                    }
                }
            }
            88..=93 => {
                report.actions.truncated += 1;
                let full = problem_json(8, rng.gen(), None);
                let cut = full.len() / 2;
                let target = format!("/snapshot?tenant={tenant}");
                tally_response(&mut report, exchange(addr, "POST", &target, &full[..cut]));
            }
            _ => {
                report.actions.removals += 1;
                let target = format!("/tenant?tenant={tenant}");
                tally_response(&mut report, exchange(addr, "DELETE", &target, ""));
            }
        }
    }

    // Deterministic breaker epilogue: starve the dedicated tenant until
    // its breaker opens and a request is served stale. The campaign must
    // *observe* the degraded-mode contract (stale-but-certified serving),
    // not just hope the churn schedule happens to hit the open window.
    for _ in 0..8 {
        if report.stale_served > 0 {
            break;
        }
        report.actions.starved_deltas += 1;
        let body = delta_json(&mut rng, 40);
        tally_response(
            &mut report,
            exchange(addr, "POST", "/delta?tenant=starved&deadline_ms=1", &body),
        );
    }
    if report.stale_served == 0 {
        report
            .violations
            .push("breaker epilogue never produced a stale-served response".to_string());
    }

    // /healthz must report degraded (503, naming the tenant) while a
    // breaker is open. Re-starve the dedicated tenant until the window is
    // observed; these extra requests stay out of the action tally so the
    // seeded schedule remains replay-identical.
    let mut healthz_degraded = false;
    for _ in 0..8 {
        if let Some(reply) = exchange(addr, "GET", "/healthz", "") {
            if reply.status == 503 && reply.body.contains("breaker_open") {
                healthz_degraded = true;
                break;
            }
        }
        let body = delta_json(&mut rng, 40);
        tally_response(
            &mut report,
            exchange(addr, "POST", "/delta?tenant=starved&deadline_ms=1", &body),
        );
    }
    if !healthz_degraded {
        report
            .violations
            .push("/healthz never reported degraded while a breaker was open".to_string());
    }

    // Hostile label churn: 10× the registry's label cap of distinct
    // tenants, each landing one labeled `serve.requests` increment (the
    // empty body fails parsing after the label is counted, so no tenant
    // slot or solve round is created). Cardinality must stay bounded by
    // LRU eviction into `other`, and eviction must conserve family totals.
    let obs = rasa_obs::global();
    let label_cap = config.serve.max_tenants;
    let churn_requests = label_cap as u64 * 10;
    let family_before = rasa_obs::global()
        .snapshot()
        .counter_family_total("serve.requests");
    for i in 0..churn_requests {
        tally_response(
            &mut report,
            exchange(addr, "POST", &format!("/delta?tenant=churn{i}"), ""),
        );
    }
    let family_after = rasa_obs::global()
        .snapshot()
        .counter_family_total("serve.requests");
    report.label_count_after_churn = obs.label_count() as u64;
    if report.label_count_after_churn > label_cap as u64 {
        report.violations.push(format!(
            "label cardinality unbounded: {} resident labels > cap {label_cap}",
            report.label_count_after_churn
        ));
    }
    if family_after - family_before != churn_requests {
        report.violations.push(format!(
            "label eviction lost counts: family grew {} over {churn_requests} churn requests",
            family_after - family_before
        ));
    }

    // Exercise the live scrape path before draining.
    match exchange(addr, "GET", "/metrics", "") {
        Some(reply) if reply.status == 200 && reply.body.contains("rasa_serve_requests") => {}
        Some(reply) => report
            .violations
            .push(format!("/metrics scrape failed with {}", reply.status)),
        None => report
            .violations
            .push("/metrics scrape got no response".to_string()),
    }

    // Capture the observability surfaces the CI job uploads on failure.
    if let Some(reply) = exchange(addr, "GET", "/tenants", "") {
        if reply.status == 200 {
            report.tenants_json = reply.body;
        } else {
            report
                .violations
                .push(format!("/tenants answered {}", reply.status));
        }
    } else {
        report
            .violations
            .push("/tenants got no response".to_string());
    }
    if let Some(reply) = exchange(addr, "GET", "/debug/log?tail=128", "") {
        if reply.status == 200 {
            report.log_tail_json = reply.body;
        } else {
            report
                .violations
                .push(format!("/debug/log answered {}", reply.status));
        }
    } else {
        report
            .violations
            .push("/debug/log got no response".to_string());
    }

    handle.shutdown();
    match daemon.join() {
        Ok(drain) => {
            report.drain = DrainSummary {
                drain_seconds: drain.drain_seconds,
                abandoned_jobs: drain.abandoned_jobs,
                inflight_completed: drain.inflight_completed,
                blackbox_dumps: drain.blackbox_dumps,
            };
        }
        Err(_) => report
            .violations
            .push("daemon thread panicked during run/drain".to_string()),
    }

    let after = rasa_obs::global().snapshot();
    report.serve_counters = after
        .counters_with_prefix("serve.")
        // saturating: a labeled series evicted and re-created mid-campaign
        // can legitimately end below its starting value
        .map(|(name, value)| (name.to_string(), value.saturating_sub(before.counter(name))))
        .collect();
    report.label_evictions =
        after.counter("obs.label_evictions") - before.counter("obs.label_evictions");
    if report.label_evictions == 0 {
        report.violations.push(format!(
            "churning {churn_requests} tenants past a {label_cap}-label cap must evict"
        ));
    }
    report.rss_growth_kib = match (rss_before, rss_kib()) {
        (Some(b), Some(a)) => Some(a - b),
        _ => None,
    };
    report.wall_seconds = started.elapsed().as_secs_f64();

    // Invariants.
    for name in ["serve.solve_panics", "serve.connection_panics"] {
        let value = report.counter(name);
        if value > 0 {
            report.violations.push(format!("{name} = {value} (must be 0)"));
        }
    }
    let live_tenants = report
        .counter("serve.tenants_created")
        .saturating_sub(report.counter("serve.tenants_removed"));
    if live_tenants > config.serve.max_tenants as u64 {
        report.violations.push(format!(
            "live tenants {live_tenants} exceed cap {}",
            config.serve.max_tenants
        ));
    }
    let trips = report.counter("serve.breaker_trips");
    if trips > config.max_breaker_trips {
        report.violations.push(format!(
            "breaker flapping: {trips} trips > budget {}",
            config.max_breaker_trips
        ));
    }
    if let Some(growth) = report.rss_growth_kib {
        if growth > config.max_rss_growth_kib {
            report.violations.push(format!(
                "resident memory grew {growth} KiB > budget {} KiB",
                config.max_rss_growth_kib
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn tiny_campaign_is_clean_and_deterministic_in_shape() {
        let config = SoakConfig {
            seed: 9,
            rounds: 25,
            ..SoakConfig::default()
        };
        let report = run_soak(&config);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.rounds_executed, 25);
        assert!(report.responses.ok > 0, "some traffic must succeed");
        assert_eq!(report.accepted_uncertified, 0);
        // the schedule itself is seed-deterministic
        let replay = run_soak(&config);
        assert_eq!(
            format!("{:?}", report.actions),
            format!("{:?}", replay.actions)
        );
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = SoakReport {
            seed: 3,
            rounds_executed: 5,
            serve_counters: vec![("serve.requests".to_string(), 7)],
            violations: vec!["example".to_string()],
            ..SoakReport::default()
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: SoakReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counter("serve.requests"), 7);
        assert!(!back.is_clean());
    }
}
