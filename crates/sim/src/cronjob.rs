//! The workflow-controlling CronJob (Section III-A): every tick it collects
//! the cluster state, runs the optimizer, dry-runs when the improvement is
//! under the threshold (Section III-B: 3%), otherwise computes a migration
//! path, verifies it, executes it — and rolls back on trouble.

use crate::collector::DataCollector;
use rand::Rng;
use rasa_lp::Deadline;
use rasa_migrate::{plan_migration, replay_plan, stabilize_placement, MigrateConfig};
use rasa_model::{
    normalized_gained_affinity, ContainerAssignment, MachineId, Placement, Problem, ServiceId,
};
use rasa_solver::Scheduler;
use std::time::Duration;

/// CronJob configuration.
#[derive(Clone, Debug)]
pub struct CronJobConfig {
    /// Minimum normalized-gained-affinity improvement to execute a
    /// reallocation (the paper dry-runs below 3%).
    pub improvement_threshold: f64,
    /// Optimizer budget per tick.
    pub optimizer_budget: Duration,
    /// Migration SLA relaxation.
    pub migrate: MigrateConfig,
    /// Roll back if any machine's dominant load exceeds this after the
    /// move (Section III-B's skew rollback). 1.0 effectively disables it
    /// since capacity constraints already cap loads.
    pub rollback_load_threshold: f64,
    /// Dry-run instead of executing when the plan would move more than
    /// this fraction of all containers (Section III-B observes <5% moved
    /// per execution in steady state; bounding churn is what makes the
    /// trade-off acceptable). Plans whose improvement exceeds
    /// `cold_start_grace` run regardless — the first optimization of a
    /// never-optimized cluster legitimately moves a lot.
    pub max_move_fraction: f64,
    /// Improvement above which the move cap is waived.
    pub cold_start_grace: f64,
    /// Traffic measurement noise for the data collector.
    pub collector: DataCollector,
}

impl Default for CronJobConfig {
    fn default() -> Self {
        CronJobConfig {
            improvement_threshold: 0.03,
            optimizer_budget: Duration::from_secs(2),
            migrate: MigrateConfig::default(),
            rollback_load_threshold: 1.0,
            max_move_fraction: 0.25,
            cold_start_grace: 0.30,
            collector: DataCollector::default(),
        }
    }
}

/// What a CronJob tick did.
#[derive(Clone, Debug, PartialEq)]
pub enum TickOutcome {
    /// Improvement below threshold — no containers touched.
    DryRun {
        /// Candidate improvement that fell short.
        improvement: f64,
    },
    /// A migration executed.
    Migrated {
        /// Containers moved.
        moves: usize,
        /// Migration-path steps (sequential command sets).
        steps: usize,
        /// Normalized gained affinity achieved after the move.
        gained_after: f64,
    },
    /// The plan failed verification or the load-skew check; the old
    /// placement was kept.
    RolledBack {
        /// Why, in human terms.
        reason: String,
    },
}

/// The periodic optimizer driver.
pub struct CronJob {
    /// Configuration.
    pub config: CronJobConfig,
}

impl CronJob {
    /// A CronJob with the given configuration.
    pub fn new(config: CronJobConfig) -> Self {
        CronJob { config }
    }

    /// Run one tick: maybe replace `placement` with an optimized one.
    /// Returns what happened; `placement` is updated in place on success.
    pub fn tick<R: Rng>(
        &self,
        truth: &Problem,
        placement: &mut Placement,
        scheduler: &dyn Scheduler,
        rng: &mut R,
    ) -> TickOutcome {
        // 1. collect (measured traffic)
        let state = self.config.collector.collect(truth, placement, rng);

        // 2. decide (the optimizer sees measurements; improvements are
        // judged on the same measured weights, like production would)
        let outcome = scheduler.schedule(
            &state.problem,
            Deadline::after(self.config.optimizer_budget),
        );
        let current_gain = normalized_gained_affinity(&state.problem, placement);
        let mut candidate = outcome.placement;
        let improvement = outcome.normalized_gained_affinity - current_gain;
        if improvement <= self.config.improvement_threshold {
            return TickOutcome::DryRun { improvement };
        }

        // 3. machine-group symmetry: rename candidate machines within their
        // groups to overlap the running placement, so steady-state
        // migrations stay small (Section III-B)
        candidate = stabilize_placement(truth, &candidate, placement);
        // reconcile per-service totals so a migration path exists
        reconcile_counts(truth, placement, &mut candidate);

        // 4. plan + verify + execute
        let from = ContainerAssignment::materialize(truth, placement);
        let plan = match plan_migration(truth, &from, &candidate, &self.config.migrate) {
            Ok(plan) => plan,
            Err(e) => {
                return TickOutcome::RolledBack {
                    reason: format!("planning failed: {e}"),
                }
            }
        };
        // churn cap: a steady-state migration should not shuffle the world
        let total_containers: f64 = truth
            .services
            .iter()
            .map(|s| f64::from(s.replicas))
            .sum::<f64>()
            .max(1.0);
        let move_fraction = plan.total_moves() as f64 / total_containers;
        if move_fraction > self.config.max_move_fraction
            && improvement < self.config.cold_start_grace
        {
            return TickOutcome::DryRun { improvement };
        }
        if let Err(e) = replay_plan(
            truth,
            &from,
            &candidate,
            &plan,
            self.config.migrate.min_alive_fraction,
        ) {
            return TickOutcome::RolledBack {
                reason: format!("verification failed: {e}"),
            };
        }
        // skew rollback
        let usage = candidate.machine_usage(truth);
        for (mi, used) in usage.iter().enumerate() {
            let load = used.dominant_share(&truth.machines[mi].capacity);
            if load > self.config.rollback_load_threshold + 1e-9 {
                return TickOutcome::RolledBack {
                    reason: format!("machine m{mi} load {load:.2} over threshold"),
                };
            }
        }

        let gained_after = normalized_gained_affinity(&state.problem, &candidate);
        let moves = plan.total_moves();
        let steps = plan.steps.len();
        *placement = candidate;
        TickOutcome::Migrated {
            moves,
            steps,
            gained_after,
        }
    }
}

/// Make `candidate` place exactly as many containers per service as
/// `current` does, so `plan_migration` accepts the pair: shortfalls are
/// topped up on the machines the service currently occupies (or any
/// feasible machine), surpluses trimmed from the fullest machines.
pub(crate) fn reconcile_counts(problem: &Problem, current: &Placement, candidate: &mut Placement) {
    for svc in &problem.services {
        let s = svc.id;
        let cur = current.placed_count(s);
        let mut cand = candidate.placed_count(s);
        // trim surplus
        while cand > cur {
            let Some((m, _)) = candidate.machines_of(s).max_by_key(|&(_, c)| c) else {
                break;
            };
            candidate.remove(s, m, 1);
            cand -= 1;
        }
        // top up shortfall: prefer machines the service already occupies in
        // the candidate, then machines from the current placement, then any
        if cand < cur {
            let usage = candidate.machine_usage(problem);
            let mut free: Vec<rasa_model::ResourceVec> = problem
                .machines
                .iter()
                .zip(usage)
                .map(|(m, u)| m.capacity - u)
                .collect();
            // per-machine occupancy of every anti-affinity rule containing
            // `s`: a top-up must never push a rule past its cap, or the
            // reconciled target hands the planner an infeasible goal
            let rules: Vec<usize> = problem
                .anti_affinity
                .iter()
                .enumerate()
                .filter(|(_, r)| r.services.contains(&s))
                .map(|(k, _)| k)
                .collect();
            let mut aa_used: Vec<Vec<u32>> = rules
                .iter()
                .map(|&k| {
                    problem
                        .machines
                        .iter()
                        .map(|m| {
                            problem.anti_affinity[k]
                                .services
                                .iter()
                                .map(|&rs| candidate.count(rs, m.id))
                                .sum()
                        })
                        .collect()
                })
                .collect();
            let aa_allows = |aa_used: &[Vec<u32>], m: MachineId| {
                rules
                    .iter()
                    .zip(aa_used)
                    .all(|(&k, used)| used[m.idx()] < problem.anti_affinity[k].max_per_machine)
            };
            let mut prefer: Vec<MachineId> = candidate.machines_of(s).map(|(m, _)| m).collect();
            prefer.extend(current.machines_of(s).map(|(m, _)| m));
            prefer.extend(problem.machines.iter().map(|m| m.id));
            'fill: while cand < cur {
                for &m in &prefer {
                    if problem.schedulable(s, m)
                        && svc.demand.fits_within(&free[m.idx()], 1e-6)
                        && aa_allows(&aa_used, m)
                    {
                        candidate.add(s, m, 1);
                        free[m.idx()] -= svc.demand;
                        for used in aa_used.iter_mut() {
                            used[m.idx()] += 1;
                        }
                        cand += 1;
                        continue 'fill;
                    }
                }
                break; // nowhere to put it; migration planning will reject
            }
        }
    }
}

/// Churn model: re-deploys a random subset of services affinity-blind
/// (application updates, scaling events), degrading the gained affinity —
/// the reason the paper's CronJob must keep re-optimizing.
pub fn apply_churn<R: Rng>(
    problem: &Problem,
    placement: &mut Placement,
    fraction: f64,
    rng: &mut R,
) -> usize {
    let n = problem.num_services();
    let count = ((n as f64) * fraction).round() as usize;
    let mut churned = 0usize;
    for _ in 0..count {
        let s = ServiceId(rng.gen_range(0..n as u32));
        let svc = &problem.services[s.idx()];
        // tear down
        let machines: Vec<(MachineId, u32)> = placement.machines_of(s).collect();
        for (m, c) in machines {
            placement.remove(s, m, c);
        }
        // redeploy first-fit from a random starting machine (ignores affinity)
        let usage = placement.machine_usage(problem);
        let mut free: Vec<rasa_model::ResourceVec> = problem
            .machines
            .iter()
            .zip(usage)
            .map(|(m, u)| m.capacity - u)
            .collect();
        let start = rng.gen_range(0..problem.num_machines());
        let mut placed = 0u32;
        for probe in 0..problem.num_machines() {
            if placed >= svc.replicas {
                break;
            }
            let mi = (start + probe) % problem.num_machines();
            let m = MachineId(mi as u32);
            if !problem.schedulable(s, m) {
                continue;
            }
            while placed < svc.replicas && svc.demand.fits_within(&free[mi], 1e-6) {
                placement.add(s, m, 1);
                free[mi] -= svc.demand;
                placed += 1;
            }
        }
        churned += 1;
    }
    churned
}

#[cfg(test)]
pub(crate) mod tests_support {
    use rasa_model::{MachineId, Placement, Problem};

    /// Worst-case starting placement: replicas rotated across machines so
    /// nothing is collocated. Shared by the cronjob and experiment tests.
    pub fn scattered_placement(problem: &Problem) -> Placement {
        let m = problem.num_machines() as u32;
        let mut p = Placement::empty_for(problem);
        for (i, svc) in problem.services.iter().enumerate() {
            for r in 0..svc.replicas {
                p.add(svc.id, MachineId((i as u32 + r) % m), 1);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rasa_model::{validate, FeatureMask, ProblemBuilder, ResourceVec};
    use rasa_solver::MipBased;

    fn problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s2 = b.add_service("c", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(3, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 10.0);
        b.add_affinity(s1, s2, 2.0);
        b.build().expect("test problem builds")
    }

    fn scattered(problem: &Problem) -> Placement {
        super::tests_support::scattered_placement(problem)
    }

    #[test]
    fn tick_improves_and_migrates() {
        let p = problem();
        let mut placement = scattered(&p);
        let before = normalized_gained_affinity(&p, &placement);
        let cron = CronJob::new(CronJobConfig {
            collector: DataCollector {
                measurement_noise: 0.0,
            },
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let outcome = cron.tick(&p, &mut placement, &MipBased::new(), &mut rng);
        match outcome {
            TickOutcome::Migrated {
                moves,
                gained_after,
                ..
            } => {
                assert!(moves > 0);
                assert!(gained_after > before + 0.03);
            }
            other => panic!("expected migration, got {other:?}"),
        }
        assert!(validate(&p, &placement, true).is_empty());
    }

    #[test]
    fn second_tick_dry_runs() {
        let p = problem();
        let mut placement = scattered(&p);
        let cron = CronJob::new(CronJobConfig {
            collector: DataCollector {
                measurement_noise: 0.0,
            },
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let _ = cron.tick(&p, &mut placement, &MipBased::new(), &mut rng);
        let second = cron.tick(&p, &mut placement, &MipBased::new(), &mut rng);
        assert!(
            matches!(second, TickOutcome::DryRun { .. }),
            "optimized cluster should dry-run, got {second:?}"
        );
    }

    #[test]
    fn churn_degrades_gained_affinity_eventually() {
        let p = problem();
        let mut placement = scattered(&p);
        let cron = CronJob::new(CronJobConfig {
            collector: DataCollector {
                measurement_noise: 0.0,
            },
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let _ = cron.tick(&p, &mut placement, &MipBased::new(), &mut rng);
        let optimized = normalized_gained_affinity(&p, &placement);
        let mut min_seen: f64 = optimized;
        for _ in 0..10 {
            apply_churn(&p, &mut placement, 1.0, &mut rng);
            min_seen = min_seen.min(normalized_gained_affinity(&p, &placement));
        }
        assert!(
            min_seen < optimized,
            "churn never degraded affinity ({min_seen} vs {optimized})"
        );
    }

    #[test]
    fn reconcile_fixes_count_mismatches() {
        let p = problem();
        let current = scattered(&p);
        // candidate missing one container of s0 and with an extra of s2
        let mut candidate = current.clone();
        let first_m = candidate
            .machines_of(ServiceId(0))
            .next()
            .expect("scattered placement places service 0")
            .0;
        candidate.remove(ServiceId(0), first_m, 1);
        candidate.add(ServiceId(2), MachineId(0), 1);
        reconcile_counts(&p, &current, &mut candidate);
        for svc in &p.services {
            assert_eq!(
                candidate.placed_count(svc.id),
                current.placed_count(svc.id),
                "{}",
                svc.id
            );
        }
        assert!(validate(&p, &candidate, true).is_empty());
    }
}
