//! Seeded chaos drill: generate a small cluster, execute a deterministic
//! fault schedule against the MIP scheduler, print the round-by-round
//! report, and exit non-zero if any invariant was violated.
//!
//! Usage:
//!   `chaos [SEED] [MAX_FAILURES]`        — machine-failure drill
//!                                          (defaults: seed 7, 2 failures)
//!   `chaos corruption [SEED] [ROUNDS]`   — data-corruption campaign
//!                                          (defaults: seed 42, 55 rounds);
//!                                          writes the round-by-round JSON
//!                                          report to
//!                                          `target/corruption_chaos/report.json`
//!   `chaos crash [SEED] [POINTS]`        — kill-9 crash/recovery campaign
//!                                          against the real `rasa-serve`
//!                                          binary (defaults: seed 11, 50
//!                                          crash points; binary located
//!                                          via `RASA_SERVE_BIN` or next to
//!                                          this executable); report lands
//!                                          in `target/crash_chaos/report.json`,
//!                                          failed rounds leave journals in
//!                                          `target/crash_chaos/work/`
//!
//! Every fault round is black-boxed by the flight recorder: dumps land in
//! `RASA_FLIGHT_DIR` (default `target/chaos_blackbox/`), one JSON file per
//! degraded recording, capped by `RASA_FLIGHT_MAX_DUMPS`.

use rasa_migrate::MigrateConfig;
use rasa_obs::FlightConfig;
use rasa_sim::chaos::{run_chaos, ChaosSchedule};
use rasa_sim::corruption::run_corruption_campaign;
use rasa_sim::crash::{locate_serve_bin, run_crash_campaign, CrashConfig};
use rasa_solver::MipBased;
use rasa_trace::{generate, tiny_cluster};

/// Run the data-corruption campaign and exit non-zero on any panic or
/// uncertified placement.
fn corruption_main(mut args: impl Iterator<Item = String>) -> ! {
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(55);
    println!("corruption campaign: seed={seed}, {rounds} rounds");
    let report = run_corruption_campaign(seed, rounds);
    for (i, r) in report.rounds.iter().enumerate() {
        let detail = r
            .detail
            .as_deref()
            .map(|d| format!("  detail: {d}"))
            .unwrap_or_default();
        println!(
            "  round {i}: {} panicked={} certified={} quarantined={}{detail}",
            r.kind, r.panicked, r.certified, r.quarantined
        );
    }
    println!(
        "panics: {}; uncertified placements: {}",
        report.panics, report.uncertified
    );
    let out_dir = std::path::Path::new("target/corruption_chaos");
    if std::fs::create_dir_all(out_dir).is_ok() {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                let path = out_dir.join("report.json");
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("could not write {}: {e}", path.display());
                } else {
                    println!("report written to {}", path.display());
                }
            }
            Err(e) => eprintln!("could not serialize report: {e}"),
        }
    }
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}

/// Run the kill-9 crash/recovery campaign and exit non-zero on any panic,
/// identity violation, or unbounded recovery.
fn crash_main(mut args: impl Iterator<Item = String>) -> ! {
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);
    let points: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);
    let Some(serve_bin) = locate_serve_bin() else {
        eprintln!(
            "rasa-serve binary not found: build it first \
             (`cargo build --release -p rasa-serve`) or set RASA_SERVE_BIN"
        );
        std::process::exit(2);
    };
    println!(
        "crash campaign: seed={seed}, {points} crash points, binary {}",
        serve_bin.display()
    );
    let config = CrashConfig {
        seed,
        crash_points: points,
        serve_bin,
        work_dir: "target/crash_chaos/work".into(),
    };
    let report = run_crash_campaign(&config);
    for (i, r) in report.rounds.iter().enumerate() {
        println!(
            "  round {i}: {} acked={} recovered={} recovery={:.2}s panicked={}{}",
            r.mode,
            r.acked_rounds,
            r.recovered,
            r.recovery_seconds,
            r.panicked,
            if r.violations.is_empty() {
                String::new()
            } else {
                format!("  VIOLATIONS: {}", r.violations.join("; "))
            }
        );
    }
    println!(
        "identical recoveries: {}; quarantines: {}; panics: {}; \
         recovery mean {:.2}s max {:.2}s",
        report.identical_recoveries,
        report.quarantines,
        report.panics,
        report.mean_recovery_seconds,
        report.max_recovery_seconds
    );
    for v in &report.violations {
        eprintln!("VIOLATION: {v}");
    }
    let out_dir = std::path::Path::new("target/crash_chaos");
    if std::fs::create_dir_all(out_dir).is_ok() {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                let path = out_dir.join("report.json");
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("could not write {}: {e}", path.display());
                } else {
                    println!("report written to {}", path.display());
                }
            }
            Err(e) => eprintln!("could not serialize report: {e}"),
        }
    }
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}

fn main() {
    let mut args = std::env::args().skip(1);
    let first = args.next();

    // black-box every fault round; RASA_FLIGHT_* overrides the default dir
    if !rasa_obs::recorder().configure_from_env() {
        rasa_obs::recorder().configure(FlightConfig {
            dump_dir: Some("target/chaos_blackbox".into()),
            ..FlightConfig::default()
        });
    }

    if first.as_deref() == Some("corruption") {
        corruption_main(args);
    }
    if first.as_deref() == Some("crash") {
        crash_main(args);
    }
    let seed: u64 = first.and_then(|a| a.parse().ok()).unwrap_or(7);
    let max_failures: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    let problem = generate(&tiny_cluster(seed));
    println!(
        "chaos drill: seed={seed}, {} services on {} machines, up to {max_failures} failures",
        problem.num_services(),
        problem.num_machines()
    );
    let schedule = ChaosSchedule::generate(&problem, seed, max_failures);
    for (i, e) in schedule.events.iter().enumerate() {
        println!("  event {i}: {}", e.describe());
    }

    let report = run_chaos(
        &problem,
        &MipBased::new(),
        &schedule,
        &MigrateConfig::default(),
    );
    for (i, r) in report.rounds.iter().enumerate() {
        let err = r
            .error
            .as_deref()
            .map(|e| format!("  planner-error: {e}"))
            .unwrap_or_default();
        println!(
            "  round {i}: lost={} recreated={} moves={} alive={:.3}{err}",
            r.lost_containers, r.recreated, r.moves, r.alive_fraction
        );
    }
    println!(
        "dead machines: {:?}; fully recovered: {}; violations: {}",
        report.dead_machines,
        report.fully_recovered,
        report.violations.len()
    );
    for v in &report.violations {
        eprintln!("VIOLATION: {v}");
    }
    if !report.is_clean() {
        std::process::exit(1);
    }
}
