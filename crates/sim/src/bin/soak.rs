//! `soak` — run the seeded churn campaign against an in-process
//! `rasa-serve` daemon and emit the report as JSON.
//!
//! ```text
//! soak [--seed 42] [--rounds 600] [--max-wall-s 60] [--max-breaker-trips N]
//!      [--report PATH] [--metrics-out PATH]
//! ```
//!
//! Exit codes: `0` campaign clean, `1` invariant violations (report still
//! written), `2` usage error. CI runs this with a fixed seed, uploads the
//! report and any flight-recorder black-box dumps, and fails the job on a
//! non-zero exit.

#![warn(clippy::unwrap_used)]

use rasa_sim::soak::{run_soak, SoakConfig};
use std::process::ExitCode;
use std::time::Duration;

fn write_creating_dirs(path: &str, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

fn usage() -> &'static str {
    "usage: soak [--seed N] [--rounds N] [--max-wall-s N] [--max-breaker-trips N]\n\
     \x20           [--report PATH] [--metrics-out PATH]"
}

fn main() -> ExitCode {
    let mut config = SoakConfig::default();
    let mut report_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let parsed = match flag.as_str() {
            "--seed" => value("--seed").and_then(|v| {
                v.parse().map(|n| config.seed = n).map_err(|_| "--seed: not a number".into())
            }),
            "--rounds" => value("--rounds").and_then(|v| {
                v.parse()
                    .map(|n| config.rounds = n)
                    .map_err(|_| "--rounds: not a number".into())
            }),
            "--max-wall-s" => value("--max-wall-s").and_then(|v| {
                v.parse::<u64>()
                    .map(|n| config.max_wall = Duration::from_secs(n))
                    .map_err(|_| "--max-wall-s: not a number".into())
            }),
            "--max-breaker-trips" => value("--max-breaker-trips").and_then(|v| {
                v.parse()
                    .map(|n| config.max_breaker_trips = n)
                    .map_err(|_| "--max-breaker-trips: not a number".into())
            }),
            "--report" => value("--report").map(|v| report_path = Some(v)),
            "--metrics-out" => value("--metrics-out").map(|v| metrics_path = Some(v)),
            "--help" | "-h" => Err(usage().to_string()),
            other => Err(format!("unknown flag {other}\n{}", usage())),
        };
        if let Err(message) = parsed {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    }

    rasa_obs::flight::recorder().configure_from_env();
    println!(
        "soak: seed={} rounds={} max_wall={:?}",
        config.seed, config.rounds, config.max_wall
    );
    let report = run_soak(&config);

    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("soak: report serialization failed: {e}");
            return ExitCode::from(1);
        }
    };
    match &report_path {
        Some(path) => {
            if let Err(e) = write_creating_dirs(path, &json) {
                eprintln!("soak: writing {path} failed: {e}");
                return ExitCode::from(1);
            }
            println!("soak: report written to {path}");
            // Sidecar artifacts CI uploads on failure: the tenant roster
            // and the structured-log tail captured just before drain.
            let dir = std::path::Path::new(path)
                .parent()
                .map(|p| p.to_path_buf())
                .unwrap_or_default();
            for (name, body) in [
                ("tenants.json", &report.tenants_json),
                ("log_tail.json", &report.log_tail_json),
            ] {
                if body.is_empty() {
                    continue;
                }
                let sidecar = dir.join(name);
                let sidecar = sidecar.to_string_lossy();
                if let Err(e) = write_creating_dirs(&sidecar, body) {
                    eprintln!("soak: writing {sidecar} failed: {e}");
                } else {
                    println!("soak: {name} written to {sidecar}");
                }
            }
        }
        None => println!("{json}"),
    }

    if let Some(path) = &metrics_path {
        let scrape = rasa_obs::write_prometheus(
            &rasa_obs::global().snapshot(),
            rasa_obs::MetricsGlossary::builtin(),
        );
        match scrape {
            Ok(text) => {
                if let Err(e) = write_creating_dirs(path, &text) {
                    eprintln!("soak: writing {path} failed: {e}");
                    return ExitCode::from(1);
                }
                println!("soak: metrics written to {path}");
            }
            Err(e) => {
                eprintln!("soak: prometheus exposition failed: {e}");
                return ExitCode::from(1);
            }
        }
    }

    println!(
        "soak: rounds={} ok={} 429={} stale={} trips={} panics={} drain={:.3}s abandoned={}",
        report.rounds_executed,
        report.responses.ok,
        report.responses.too_many_requests,
        report.stale_served,
        report.counter("serve.breaker_trips"),
        report.counter("serve.solve_panics") + report.counter("serve.connection_panics"),
        report.drain.drain_seconds,
        report.drain.abandoned_jobs,
    );
    if report.is_clean() {
        println!("soak: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("soak: FAIL — {} violations:", report.violations.len());
        for violation in &report.violations {
            eprintln!("  - {violation}");
        }
        ExitCode::from(1)
    }
}
