//! Data-corruption chaos: seeded injectors that mangle problem data the
//! way real operational accidents do — NaN/Inf flips from broken metric
//! exporters, sign flips from unit bugs, dangling references from racy
//! snapshots, truncated JSON from interrupted writes, and cache entries
//! mutated after being stored — then drive the full pipeline and assert
//! the two-gate trust boundary holds:
//!
//! 1. **no panic** anywhere in partition/solve/combine (Gate 1 quarantines
//!    the poison before it reaches a solver);
//! 2. **no uncertified placement** is emitted (Gate 2 re-validates every
//!    output, including cache replays, against constraints (3)–(6) and the
//!    recomputed objective).
//!
//! A campaign is fully deterministic from its seed: same seed + same round
//! count → the identical corruption sequence, so any failure is replayable
//! with `chaos corruption <seed> <rounds>`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasa_core::{certify_placement, Deadline, RasaPipeline, SolveCache};
use rasa_model::{
    AffinityEdge, AntiAffinityRule, MachineId, Problem, ProblemValidator, ResourceVec, ServiceId,
};
use rasa_trace::persist::{load_problem, save_problem, PersistError};
use rasa_trace::{generate, ClusterSpec};
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Wall-clock budget per pipeline solve inside a campaign round.
const SOLVE_BUDGET: Duration = Duration::from_secs(2);

/// One family of data corruption the campaign can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptionKind {
    /// A service demand component becomes NaN.
    NanDemand,
    /// A service demand component becomes +Inf.
    InfDemand,
    /// A machine capacity component's sign is flipped.
    CapacitySignFlip,
    /// A machine capacity component becomes NaN.
    NonFiniteCapacity,
    /// An affinity edge points at a service id past the service table.
    DanglingEdge,
    /// An affinity edge weight becomes NaN.
    NonFiniteEdgeWeight,
    /// An anti-affinity rule's `h_k` drops to 0 while its members still
    /// demand placement (unsatisfiable).
    ZeroAntiAffinity,
    /// A priority weight becomes NaN.
    CorruptPriority,
    /// The problem artifact on disk is truncated mid-JSON.
    TruncatedArtifact,
    /// A [`SolveCache`] entry's claimed objective is mutated between
    /// rounds (the entry itself still holds a feasible placement).
    PoisonedCacheObjective,
    /// A [`SolveCache`] entry's placement is mutated between rounds to
    /// reference a machine outside the subproblem.
    PoisonedCachePlacement,
}

impl CorruptionKind {
    /// Every injector, in the order the campaign cycles through them.
    pub const ALL: [CorruptionKind; 11] = [
        CorruptionKind::NanDemand,
        CorruptionKind::InfDemand,
        CorruptionKind::CapacitySignFlip,
        CorruptionKind::NonFiniteCapacity,
        CorruptionKind::DanglingEdge,
        CorruptionKind::NonFiniteEdgeWeight,
        CorruptionKind::ZeroAntiAffinity,
        CorruptionKind::CorruptPriority,
        CorruptionKind::TruncatedArtifact,
        CorruptionKind::PoisonedCacheObjective,
        CorruptionKind::PoisonedCachePlacement,
    ];

    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CorruptionKind::NanDemand => "nan_demand",
            CorruptionKind::InfDemand => "inf_demand",
            CorruptionKind::CapacitySignFlip => "capacity_sign_flip",
            CorruptionKind::NonFiniteCapacity => "non_finite_capacity",
            CorruptionKind::DanglingEdge => "dangling_edge",
            CorruptionKind::NonFiniteEdgeWeight => "non_finite_edge_weight",
            CorruptionKind::ZeroAntiAffinity => "zero_anti_affinity",
            CorruptionKind::CorruptPriority => "corrupt_priority",
            CorruptionKind::TruncatedArtifact => "truncated_artifact",
            CorruptionKind::PoisonedCacheObjective => "poisoned_cache_objective",
            CorruptionKind::PoisonedCachePlacement => "poisoned_cache_placement",
        }
    }
}

/// Mutate `problem` in place with one instance of `kind`, choosing the
/// target with `rng`. Only the in-memory corruption kinds apply here;
/// [`CorruptionKind::TruncatedArtifact`] and the cache poisonings are
/// staged by the campaign itself.
pub fn inject(problem: &mut Problem, kind: CorruptionKind, rng: &mut StdRng) {
    let ns = problem.num_services();
    let nm = problem.num_machines();
    match kind {
        CorruptionKind::NanDemand | CorruptionKind::InfDemand => {
            if ns == 0 {
                return;
            }
            let v = if kind == CorruptionKind::NanDemand {
                f64::NAN
            } else {
                f64::INFINITY
            };
            let s = rng.gen_range(0..ns);
            problem.services[s].demand = ResourceVec::new(v, 1.0, 0.0, 0.0);
        }
        CorruptionKind::CapacitySignFlip => {
            if nm == 0 {
                return;
            }
            let m = rng.gen_range(0..nm);
            let c = problem.machines[m].capacity;
            problem.machines[m].capacity =
                ResourceVec::new(-c.cpu(), c.memory(), c.network(), c.disk());
        }
        CorruptionKind::NonFiniteCapacity => {
            if nm == 0 {
                return;
            }
            let m = rng.gen_range(0..nm);
            let c = problem.machines[m].capacity;
            problem.machines[m].capacity =
                ResourceVec::new(f64::NAN, c.memory(), c.network(), c.disk());
        }
        CorruptionKind::DanglingEdge => {
            problem.affinity_edges.push(AffinityEdge {
                a: ServiceId(0),
                b: ServiceId(ns as u32 + 7),
                weight: 5.0,
            });
        }
        CorruptionKind::NonFiniteEdgeWeight => {
            if let Some(e) = problem.affinity_edges.first_mut() {
                e.weight = f64::NAN;
            } else if ns >= 2 {
                problem.affinity_edges.push(AffinityEdge {
                    a: ServiceId(0),
                    b: ServiceId(1),
                    weight: f64::NAN,
                });
            }
        }
        CorruptionKind::ZeroAntiAffinity => {
            if let Some(rule) = problem.anti_affinity.first_mut() {
                rule.max_per_machine = 0;
            } else if ns > 0 {
                problem.anti_affinity.push(AntiAffinityRule {
                    services: vec![ServiceId(0)],
                    max_per_machine: 0,
                });
            }
        }
        CorruptionKind::CorruptPriority => {
            if ns == 0 {
                return;
            }
            let s = rng.gen_range(0..ns);
            problem.services[s].priority_weight = f64::NAN;
        }
        CorruptionKind::TruncatedArtifact
        | CorruptionKind::PoisonedCacheObjective
        | CorruptionKind::PoisonedCachePlacement => {}
    }
}

/// What one campaign round observed.
#[derive(Clone, Debug, Serialize)]
pub struct CorruptionRound {
    /// Which injector ran.
    pub kind: &'static str,
    /// `true` when the pipeline (or loader) panicked — always a failure.
    pub panicked: bool,
    /// `true` when every placement the round emitted passed independent
    /// certification (vacuously true for rounds that emit none, e.g. a
    /// truncated artifact correctly rejected at load).
    pub certified: bool,
    /// Services + machines the admission gate quarantined this round.
    pub quarantined: usize,
    /// Free-form failure detail when the round was not clean.
    pub detail: Option<String>,
}

/// Aggregate result of [`run_corruption_campaign`].
#[derive(Clone, Debug, Serialize)]
pub struct CorruptionReport {
    /// One entry per round, in order.
    pub rounds: Vec<CorruptionRound>,
    /// Rounds that panicked (must be 0).
    pub panics: usize,
    /// Rounds that emitted a placement failing certification (must be 0).
    pub uncertified: usize,
}

impl CorruptionReport {
    /// `true` when no round panicked and every emitted placement certified.
    pub fn is_clean(&self) -> bool {
        self.panics == 0 && self.uncertified == 0
    }
}

/// Small, fast cluster spec for campaign rounds; all randomness still
/// derives from `seed`.
fn campaign_spec(seed: u64) -> ClusterSpec {
    ClusterSpec {
        name: "corruption".into(),
        services: 12,
        target_containers: 48,
        machines: 6,
        community_size: 4,
        group_rules: 1,
        seed,
        ..ClusterSpec::default()
    }
}

/// Certify `run`'s merged placement against the problem the pipeline
/// actually solved (post-admission). Returns an error string on failure.
fn certify_run(problem: &Problem, run: &rasa_core::RasaRun) -> Result<(), String> {
    let (repaired, _) = ProblemValidator::new().admit(problem);
    let effective = repaired.as_ref().unwrap_or(problem);
    certify_placement(
        effective,
        &run.outcome.placement,
        run.outcome.gained_affinity,
        false,
        "campaign",
    )
    .map(|_| ())
    .map_err(|e| e.to_string())
}

/// Run one corruption round; returns `(certified, quarantined, detail)`.
fn run_round(kind: CorruptionKind, seed: u64) -> (bool, usize, Option<String>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let problem = generate(&campaign_spec(seed));
    let pipeline = RasaPipeline::default();
    match kind {
        CorruptionKind::TruncatedArtifact => {
            // interrupted write: save, truncate at a random byte, reload —
            // the loader must fail with a typed, positioned error
            let dir = std::env::temp_dir().join("rasa_corruption_campaign");
            if let Err(e) = std::fs::create_dir_all(&dir) {
                return (false, 0, Some(format!("temp dir: {e}")));
            }
            let path = dir.join(format!("artifact_{seed}.json"));
            if let Err(e) = save_problem(&problem, &path) {
                return (false, 0, Some(format!("save: {e}")));
            }
            let json = match std::fs::read_to_string(&path) {
                Ok(j) => j,
                Err(e) => return (false, 0, Some(format!("read back: {e}"))),
            };
            let cut = rng.gen_range(1..json.len());
            if let Err(e) = std::fs::write(&path, &json[..cut]) {
                return (false, 0, Some(format!("truncate: {e}")));
            }
            let result = load_problem(&path);
            std::fs::remove_file(&path).ok();
            match result {
                Err(PersistError::Parse { .. }) => (true, 0, None),
                Err(other) => (false, 0, Some(format!("wrong error class: {other}"))),
                // a lucky cut can land exactly on a JSON boundary; the
                // loaded prefix must then still pass admission + certify
                Ok(p) => {
                    let run = pipeline.optimize(&p, None, Deadline::after(SOLVE_BUDGET));
                    match certify_run(&p, &run) {
                        Ok(()) => (true, 0, None),
                        Err(e) => (false, 0, Some(e)),
                    }
                }
            }
        }
        CorruptionKind::PoisonedCacheObjective | CorruptionKind::PoisonedCachePlacement => {
            // cold round populates the cache, then the entries are mutated
            // in place — Gate 2 must reject every poisoned replay
            let cache = SolveCache::new();
            let cold =
                pipeline.optimize_with_cache(&problem, None, Deadline::after(SOLVE_BUDGET), Some(&cache));
            if let Err(e) = certify_run(&problem, &cold) {
                return (false, 0, Some(format!("cold round: {e}")));
            }
            for fp in cache.fingerprints() {
                let mut entry = match cache.lookup(fp) {
                    Some(e) => e,
                    None => continue,
                };
                if kind == CorruptionKind::PoisonedCacheObjective {
                    entry.gained_affinity += 10.0 + rng.gen_range(0.0..90.0);
                } else {
                    entry.placement.add(ServiceId(0), MachineId(9999), 1);
                }
                cache.store(fp, entry);
            }
            let warm =
                pipeline.optimize_with_cache(&problem, None, Deadline::after(SOLVE_BUDGET), Some(&cache));
            if let Some(stats) = &warm.cache {
                if !cache.is_empty() && stats.hits > 0 && stats.misses == 0 {
                    // with every entry poisoned, at least one rejection
                    // (counted as a miss) must have happened
                    return (
                        false,
                        0,
                        Some("poisoned entries replayed as hits".to_string()),
                    );
                }
            }
            match certify_run(&problem, &warm) {
                Ok(()) => (true, 0, None),
                Err(e) => (false, 0, Some(format!("warm round: {e}"))),
            }
        }
        _ => {
            let mut corrupted = problem;
            inject(&mut corrupted, kind, &mut rng);
            let run = pipeline.optimize(&corrupted, None, Deadline::after(SOLVE_BUDGET));
            let quarantined = run
                .admission
                .as_ref()
                .map(|r| r.quarantined_services.len() + r.quarantined_machines.len())
                .unwrap_or(0);
            match certify_run(&corrupted, &run) {
                Ok(()) => (true, quarantined, None),
                Err(e) => (false, quarantined, Some(e)),
            }
        }
    }
}

/// Run `rounds` corruption rounds seeded from `seed`, cycling through
/// every [`CorruptionKind`]. Each round is wrapped in `catch_unwind`, so
/// a panic anywhere inside the trust boundary is recorded (and fails the
/// campaign) instead of aborting it.
pub fn run_corruption_campaign(seed: u64, rounds: usize) -> CorruptionReport {
    let mut out = Vec::with_capacity(rounds);
    let mut panics = 0usize;
    let mut uncertified = 0usize;
    for round in 0..rounds {
        let kind = CorruptionKind::ALL[round % CorruptionKind::ALL.len()];
        let round_seed = seed.wrapping_mul(1_000_003).wrapping_add(round as u64);
        let result = catch_unwind(AssertUnwindSafe(|| run_round(kind, round_seed)));
        let r = match result {
            Ok((certified, quarantined, detail)) => {
                if !certified {
                    uncertified += 1;
                }
                CorruptionRound {
                    kind: kind.label(),
                    panicked: false,
                    certified,
                    quarantined,
                    detail,
                }
            }
            Err(payload) => {
                panics += 1;
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                CorruptionRound {
                    kind: kind.label(),
                    panicked: true,
                    certified: false,
                    quarantined: 0,
                    detail: Some(format!("panicked: {msg}")),
                }
            }
        };
        out.push(r);
    }
    CorruptionReport {
        rounds: out,
        panics,
        uncertified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_injector_produces_an_inadmissible_problem() {
        // the in-memory kinds must actually corrupt: the validator sees a
        // dirty problem after injection
        let mut rng = StdRng::seed_from_u64(3);
        for kind in CorruptionKind::ALL {
            if matches!(
                kind,
                CorruptionKind::TruncatedArtifact
                    | CorruptionKind::PoisonedCacheObjective
                    | CorruptionKind::PoisonedCachePlacement
            ) {
                continue;
            }
            let mut p = generate(&campaign_spec(11));
            inject(&mut p, kind, &mut rng);
            let report = ProblemValidator::new().audit(&p);
            assert!(
                !report.is_clean(),
                "{}: injector left the problem admissible",
                kind.label()
            );
        }
    }

    #[test]
    fn short_campaign_is_clean() {
        // one full cycle through every injector
        let report = run_corruption_campaign(17, CorruptionKind::ALL.len());
        assert_eq!(report.rounds.len(), CorruptionKind::ALL.len());
        assert!(
            report.is_clean(),
            "dirty rounds: {:?}",
            report
                .rounds
                .iter()
                .filter(|r| r.panicked || !r.certified)
                .collect::<Vec<_>>()
        );
        // the demand/capacity injectors must have exercised quarantine
        assert!(
            report.rounds.iter().any(|r| r.quarantined > 0),
            "no round quarantined anything"
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_corruption_campaign(5, 4);
        let b = run_corruption_campaign(5, 4);
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.certified, y.certified);
            assert_eq!(x.quarantined, y.quarantined);
        }
    }
}
