//! The IPC-vs-RPC network model behind Figs 1 and 11–13.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Latency/error parameters for local (IPC) and remote (RPC) request paths.
///
/// Defaults are calibrated to typical datacenter numbers: intra-host IPC in
/// the tens of microseconds, cross-host RPC around a millisecond with
/// occasional congestion-related failures — the gap the paper's production
/// deployment exploits ("reduce network latency associated with network
/// I/O … lower request error rates related to network congestion, packet
/// loss, or connectivity issues").
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Application processing time included in every end-to-end request,
    /// milliseconds — collocation cannot remove this part, which is why the
    /// paper's best per-pair improvement tops out around 72%.
    pub base_latency_ms: f64,
    /// Application-level error probability independent of the network path.
    pub base_error_rate: f64,
    /// Mean latency of an IPC (same-machine) request, milliseconds.
    pub ipc_latency_ms: f64,
    /// Mean latency of an RPC (cross-machine) request, milliseconds.
    pub rpc_latency_ms: f64,
    /// Error probability of an IPC request.
    pub ipc_error_rate: f64,
    /// Error probability of an RPC request.
    pub rpc_error_rate: f64,
    /// Relative multiplicative jitter applied per observation (models load
    /// and congestion variation over time).
    pub jitter: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            base_latency_ms: 0.8,
            base_error_rate: 0.0012,
            ipc_latency_ms: 0.08,
            rpc_latency_ms: 1.4,
            ipc_error_rate: 0.0004,
            rpc_error_rate: 0.0050,
            jitter: 0.08,
        }
    }
}

impl NetworkModel {
    /// Expected end-to-end latency for a service pair whose traffic is
    /// `localized` ∈ [0, 1] on-machine (no noise).
    pub fn mean_latency(&self, localized: f64) -> f64 {
        let f = localized.clamp(0.0, 1.0);
        self.base_latency_ms + f * self.ipc_latency_ms + (1.0 - f) * self.rpc_latency_ms
    }

    /// Expected request error rate at localized fraction `localized`.
    pub fn mean_error_rate(&self, localized: f64) -> f64 {
        let f = localized.clamp(0.0, 1.0);
        (self.base_error_rate + f * self.ipc_error_rate + (1.0 - f) * self.rpc_error_rate)
            .clamp(0.0, 1.0)
    }

    /// One noisy latency observation.
    pub fn observe_latency<R: Rng>(&self, localized: f64, rng: &mut R) -> f64 {
        let noise = 1.0 + rng.gen_range(-self.jitter..self.jitter);
        self.mean_latency(localized) * noise.max(0.01)
    }

    /// One noisy error-rate observation.
    pub fn observe_error_rate<R: Rng>(&self, localized: f64, rng: &mut R) -> f64 {
        let noise = 1.0 + rng.gen_range(-self.jitter..self.jitter);
        (self.mean_error_rate(localized) * noise.max(0.01)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn latency_interpolates_between_paths() {
        let m = NetworkModel::default();
        assert_eq!(m.mean_latency(1.0), m.base_latency_ms + m.ipc_latency_ms);
        assert_eq!(m.mean_latency(0.0), m.base_latency_ms + m.rpc_latency_ms);
        let half = m.mean_latency(0.5);
        assert!(half > m.mean_latency(1.0) && half < m.mean_latency(0.0));
    }

    #[test]
    fn error_rate_interpolates() {
        let m = NetworkModel::default();
        assert_eq!(m.mean_error_rate(1.0), m.base_error_rate + m.ipc_error_rate);
        assert_eq!(m.mean_error_rate(0.0), m.base_error_rate + m.rpc_error_rate);
    }

    #[test]
    fn localized_fraction_is_clamped() {
        let m = NetworkModel::default();
        assert_eq!(m.mean_latency(2.0), m.mean_latency(1.0));
        assert_eq!(m.mean_latency(-1.0), m.mean_latency(0.0));
    }

    #[test]
    fn improvement_is_bounded_by_the_base_component() {
        // even full collocation cannot improve past the app-time share —
        // the reason the paper's best pair gains 72%, not ~100%
        let m = NetworkModel::default();
        let best = (m.mean_latency(0.0) - m.mean_latency(1.0)) / m.mean_latency(0.0);
        assert!(best > 0.3 && best < 0.8, "best possible improvement {best}");
    }

    #[test]
    fn observations_jitter_around_the_mean() {
        let m = NetworkModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..200).map(|_| m.observe_latency(0.3, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let expected = m.mean_latency(0.3);
        assert!(
            (mean / expected - 1.0).abs() < 0.05,
            "mean {mean} vs {expected}"
        );
        // and they are not all identical
        assert!(samples.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn more_localization_is_strictly_better() {
        let m = NetworkModel::default();
        assert!(m.mean_latency(0.8) < m.mean_latency(0.2));
        assert!(m.mean_error_rate(0.8) < m.mean_error_rate(0.2));
    }
}
