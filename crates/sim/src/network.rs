//! The IPC-vs-RPC network model behind Figs 1 and 11–13.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a [`NetworkModel`] was rejected by [`NetworkModel::validated`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetworkModelError {
    /// Name of the offending field.
    pub field: &'static str,
    /// What was wrong with it.
    pub reason: &'static str,
}

impl fmt::Display for NetworkModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid NetworkModel: {} {}", self.field, self.reason)
    }
}

impl std::error::Error for NetworkModelError {}

/// Latency/error parameters for local (IPC) and remote (RPC) request paths.
///
/// Defaults are calibrated to typical datacenter numbers: intra-host IPC in
/// the tens of microseconds, cross-host RPC around a millisecond with
/// occasional congestion-related failures — the gap the paper's production
/// deployment exploits ("reduce network latency associated with network
/// I/O … lower request error rates related to network congestion, packet
/// loss, or connectivity issues").
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Application processing time included in every end-to-end request,
    /// milliseconds — collocation cannot remove this part, which is why the
    /// paper's best per-pair improvement tops out around 72%.
    pub base_latency_ms: f64,
    /// Application-level error probability independent of the network path.
    pub base_error_rate: f64,
    /// Mean latency of an IPC (same-machine) request, milliseconds.
    pub ipc_latency_ms: f64,
    /// Mean latency of an RPC (cross-machine) request, milliseconds.
    pub rpc_latency_ms: f64,
    /// Error probability of an IPC request.
    pub ipc_error_rate: f64,
    /// Error probability of an RPC request.
    pub rpc_error_rate: f64,
    /// Relative multiplicative jitter applied per observation (models load
    /// and congestion variation over time).
    pub jitter: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            base_latency_ms: 0.8,
            base_error_rate: 0.0012,
            ipc_latency_ms: 0.08,
            rpc_latency_ms: 1.4,
            ipc_error_rate: 0.0004,
            rpc_error_rate: 0.0050,
            jitter: 0.08,
        }
    }
}

impl NetworkModel {
    /// Validate and normalize this model for use.
    ///
    /// Latencies and jitter must be finite and non-negative; error
    /// probabilities must be finite and are clamped into `[0, 1]` (a
    /// config expressing "always fails" as `1.3` is accepted as `1.0`,
    /// but NaN/Inf — the signature of a corrupted file — is rejected).
    /// This is the admission point for deserialized configs, which
    /// bypass every other check.
    pub fn validated(mut self) -> Result<Self, NetworkModelError> {
        let finite_non_negative = |v: f64| v.is_finite() && v >= 0.0;
        for (field, value) in [
            ("base_latency_ms", self.base_latency_ms),
            ("ipc_latency_ms", self.ipc_latency_ms),
            ("rpc_latency_ms", self.rpc_latency_ms),
            ("jitter", self.jitter),
        ] {
            if !finite_non_negative(value) {
                return Err(NetworkModelError {
                    field,
                    reason: "must be finite and non-negative",
                });
            }
        }
        for (field, value) in [
            ("base_error_rate", &mut self.base_error_rate),
            ("ipc_error_rate", &mut self.ipc_error_rate),
            ("rpc_error_rate", &mut self.rpc_error_rate),
        ] {
            if !value.is_finite() {
                return Err(NetworkModelError {
                    field,
                    reason: "must be a finite probability",
                });
            }
            *value = value.clamp(0.0, 1.0);
        }
        Ok(self)
    }

    /// Expected end-to-end latency for a service pair whose traffic is
    /// `localized` ∈ [0, 1] on-machine (no noise).
    pub fn mean_latency(&self, localized: f64) -> f64 {
        let f = localized.clamp(0.0, 1.0);
        self.base_latency_ms + f * self.ipc_latency_ms + (1.0 - f) * self.rpc_latency_ms
    }

    /// Expected request error rate at localized fraction `localized`.
    pub fn mean_error_rate(&self, localized: f64) -> f64 {
        let f = localized.clamp(0.0, 1.0);
        (self.base_error_rate + f * self.ipc_error_rate + (1.0 - f) * self.rpc_error_rate)
            .clamp(0.0, 1.0)
    }

    /// Multiplicative noise factor for one observation; `jitter == 0`
    /// means deterministic observations (`gen_range` panics on an empty
    /// range, so the zero case must not sample).
    fn noise<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.jitter <= 0.0 {
            return 1.0;
        }
        (1.0 + rng.gen_range(-self.jitter..self.jitter)).max(0.01)
    }

    /// One noisy latency observation.
    pub fn observe_latency<R: Rng>(&self, localized: f64, rng: &mut R) -> f64 {
        self.mean_latency(localized) * self.noise(rng)
    }

    /// One noisy error-rate observation.
    pub fn observe_error_rate<R: Rng>(&self, localized: f64, rng: &mut R) -> f64 {
        (self.mean_error_rate(localized) * self.noise(rng)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn latency_interpolates_between_paths() {
        let m = NetworkModel::default();
        assert_eq!(m.mean_latency(1.0), m.base_latency_ms + m.ipc_latency_ms);
        assert_eq!(m.mean_latency(0.0), m.base_latency_ms + m.rpc_latency_ms);
        let half = m.mean_latency(0.5);
        assert!(half > m.mean_latency(1.0) && half < m.mean_latency(0.0));
    }

    #[test]
    fn error_rate_interpolates() {
        let m = NetworkModel::default();
        assert_eq!(m.mean_error_rate(1.0), m.base_error_rate + m.ipc_error_rate);
        assert_eq!(m.mean_error_rate(0.0), m.base_error_rate + m.rpc_error_rate);
    }

    #[test]
    fn localized_fraction_is_clamped() {
        let m = NetworkModel::default();
        assert_eq!(m.mean_latency(2.0), m.mean_latency(1.0));
        assert_eq!(m.mean_latency(-1.0), m.mean_latency(0.0));
    }

    #[test]
    fn improvement_is_bounded_by_the_base_component() {
        // even full collocation cannot improve past the app-time share —
        // the reason the paper's best pair gains 72%, not ~100%
        let m = NetworkModel::default();
        let best = (m.mean_latency(0.0) - m.mean_latency(1.0)) / m.mean_latency(0.0);
        assert!(best > 0.3 && best < 0.8, "best possible improvement {best}");
    }

    #[test]
    fn observations_jitter_around_the_mean() {
        let m = NetworkModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..200).map(|_| m.observe_latency(0.3, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let expected = m.mean_latency(0.3);
        assert!(
            (mean / expected - 1.0).abs() < 0.05,
            "mean {mean} vs {expected}"
        );
        // and they are not all identical
        assert!(samples.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn more_localization_is_strictly_better() {
        let m = NetworkModel::default();
        assert!(m.mean_latency(0.8) < m.mean_latency(0.2));
        assert!(m.mean_error_rate(0.8) < m.mean_error_rate(0.2));
    }

    #[test]
    fn zero_jitter_observations_are_deterministic_and_do_not_panic() {
        // regression: `gen_range(-0.0..0.0)` is an empty range and panics
        let m = NetworkModel {
            jitter: 0.0,
            ..NetworkModel::default()
        }
        .validated()
        .expect("zero jitter is a valid model");
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(m.observe_latency(0.5, &mut rng), m.mean_latency(0.5));
        assert_eq!(m.observe_error_rate(0.5, &mut rng), m.mean_error_rate(0.5));
    }

    #[test]
    fn saturated_error_rate_stays_a_probability() {
        let m = NetworkModel {
            base_error_rate: 1.0,
            ..NetworkModel::default()
        }
        .validated()
        .expect("error rate 1.0 is valid");
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let e = m.observe_error_rate(0.0, &mut rng);
            assert!((0.0..=1.0).contains(&e), "observation {e} out of [0,1]");
        }
        assert_eq!(m.mean_error_rate(1.0), 1.0);
    }

    #[test]
    fn validated_rejects_non_finite_and_negative_fields() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let err = NetworkModel {
                rpc_latency_ms: bad,
                ..NetworkModel::default()
            }
            .validated()
            .expect_err("corrupt latency must be rejected");
            assert_eq!(err.field, "rpc_latency_ms");
        }
        let err = NetworkModel {
            jitter: f64::NAN,
            ..NetworkModel::default()
        }
        .validated()
        .expect_err("NaN jitter must be rejected");
        assert_eq!(err.field, "jitter");
        assert!(NetworkModel {
            base_error_rate: f64::INFINITY,
            ..NetworkModel::default()
        }
        .validated()
        .is_err());
    }

    #[test]
    fn validated_clamps_out_of_range_probabilities() {
        let m = NetworkModel {
            rpc_error_rate: 1.3,
            ipc_error_rate: -0.2,
            ..NetworkModel::default()
        }
        .validated()
        .expect("out-of-range probabilities are clamped, not rejected");
        assert_eq!(m.rpc_error_rate, 1.0);
        assert_eq!(m.ipc_error_rate, 0.0);
    }
}
