//! The production experiment (Section V-F, Figs 11–13): run a churning
//! cluster twice — WITH RASA (a scheduler drives the CronJob) and WITHOUT
//! RASA (containers stay where churn puts them) — and record per-pair
//! latency/error time series plus the ONLY-COLLOCATED bound.

use crate::cronjob::{apply_churn, CronJob, CronJobConfig};
use crate::network::NetworkModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa_model::{gained_affinity_of_edge, Placement, Problem, ServiceId};
use rasa_solver::Scheduler;
use serde::Serialize;

/// Experiment knobs.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Number of CronJob ticks to simulate (the paper's cadence is one per
    /// half hour; 48 ticks ≈ one day).
    pub ticks: usize,
    /// Fraction of services churned (redeployed affinity-blind) per tick.
    pub churn_fraction: f64,
    /// How many top-weight service pairs to track individually (the paper
    /// shows four critical pairs).
    pub tracked_pairs: usize,
    /// Network parameters.
    pub network: NetworkModel,
    /// CronJob configuration (threshold, optimizer budget, collector noise).
    pub cron: CronJobConfig,
    /// Seed for churn/noise.
    pub seed: u64,
    /// Amplitude of the diurnal traffic cycle in [0, 1): edge weights (and
    /// hence QPS weighting) swing sinusoidally over a 48-tick day. 0
    /// disables. Production traffic is strongly diurnal, and the CronJob
    /// must keep the placement good across the whole cycle.
    pub diurnal_amplitude: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            ticks: 48,
            churn_fraction: 0.03,
            tracked_pairs: 4,
            network: NetworkModel::default(),
            cron: CronJobConfig::default(),
            seed: 0,
            diurnal_amplitude: 0.25,
        }
    }
}

/// Time series for one tracked service pair.
#[derive(Clone, Debug, Serialize)]
pub struct PairSeries {
    /// The pair.
    pub pair: (ServiceId, ServiceId),
    /// Traffic weight (∝ QPS share).
    pub weight: f64,
    /// Per-tick latency WITH RASA (ms).
    pub latency_with: Vec<f64>,
    /// Per-tick latency WITHOUT RASA (ms).
    pub latency_without: Vec<f64>,
    /// Per-tick latency of the ONLY-COLLOCATED bound (ms).
    pub latency_collocated: Vec<f64>,
    /// Per-tick error rate WITH RASA.
    pub error_with: Vec<f64>,
    /// Per-tick error rate WITHOUT RASA.
    pub error_without: Vec<f64>,
    /// Per-tick error rate of the ONLY-COLLOCATED bound.
    pub error_collocated: Vec<f64>,
}

/// Full experiment output.
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentReport {
    /// Tracked pairs' series (Figs 11–12).
    pub pairs: Vec<PairSeries>,
    /// QPS-weighted mean latency per tick, WITH RASA (Fig 13 left).
    pub weighted_latency_with: Vec<f64>,
    /// QPS-weighted mean latency per tick, WITHOUT RASA.
    pub weighted_latency_without: Vec<f64>,
    /// QPS-weighted mean latency per tick at full collocation.
    pub weighted_latency_collocated: Vec<f64>,
    /// QPS-weighted error per tick, WITH RASA (Fig 13 right).
    pub weighted_error_with: Vec<f64>,
    /// QPS-weighted error per tick, WITHOUT RASA.
    pub weighted_error_without: Vec<f64>,
    /// QPS-weighted error per tick at full collocation.
    pub weighted_error_collocated: Vec<f64>,
    /// Total containers moved across all RASA migrations.
    pub total_moves: usize,
    /// Ticks on which the CronJob actually migrated (vs dry-run).
    pub migrations: usize,
    /// Fraction of total containers relocated per executed migration
    /// (Section III-B claims < 5%).
    pub moves_per_migration_fraction: Vec<f64>,
}

impl ExperimentReport {
    /// Mean relative improvement of WITH over WITHOUT for weighted latency
    /// (the paper's headline 23.75%).
    pub fn latency_improvement(&self) -> f64 {
        mean_improvement(&self.weighted_latency_with, &self.weighted_latency_without)
    }

    /// Mean relative improvement of WITH over WITHOUT for weighted error
    /// rate (the paper's 24.09%).
    pub fn error_improvement(&self) -> f64 {
        mean_improvement(&self.weighted_error_with, &self.weighted_error_without)
    }
}

fn mean_improvement(with: &[f64], without: &[f64]) -> f64 {
    let w: f64 = with.iter().sum::<f64>() / with.len().max(1) as f64;
    let wo: f64 = without.iter().sum::<f64>() / without.len().max(1) as f64;
    if wo <= 0.0 {
        0.0
    } else {
        (wo - w) / wo
    }
}

/// Run the experiment. `initial` is the starting placement (typically the
/// ORIGINAL baseline's output); `scheduler` drives the WITH-RASA arm.
pub fn run_production_experiment(
    problem: &Problem,
    initial: &Placement,
    scheduler: &dyn Scheduler,
    config: &ExperimentConfig,
) -> ExperimentReport {
    // tracked pairs: heaviest edges
    let mut edge_order: Vec<usize> = (0..problem.affinity_edges.len()).collect();
    edge_order.sort_by(|&a, &b| {
        // total_cmp: admission repairs non-finite weights, but a total
        // order keeps the sort panic-free even on un-admitted input
        problem.affinity_edges[b]
            .weight
            .total_cmp(&problem.affinity_edges[a].weight)
    });
    let tracked: Vec<usize> = edge_order
        .iter()
        .copied()
        .take(config.tracked_pairs)
        .collect();

    let mut pairs: Vec<PairSeries> = tracked
        .iter()
        .map(|&ei| {
            let e = &problem.affinity_edges[ei];
            PairSeries {
                pair: (e.a, e.b),
                weight: e.weight,
                latency_with: Vec::with_capacity(config.ticks),
                latency_without: Vec::with_capacity(config.ticks),
                latency_collocated: Vec::with_capacity(config.ticks),
                error_with: Vec::with_capacity(config.ticks),
                error_without: Vec::with_capacity(config.ticks),
                error_collocated: Vec::with_capacity(config.ticks),
            }
        })
        .collect();

    let cron = CronJob::new(config.cron.clone());
    // Both arms share churn randomness so the comparison is paired.
    let mut rng_with = StdRng::seed_from_u64(config.seed);
    let mut rng_without = StdRng::seed_from_u64(config.seed);
    let mut rng_obs = StdRng::seed_from_u64(config.seed.wrapping_add(1));

    let mut with_placement = initial.clone();
    let mut without_placement = initial.clone();
    let total_containers: f64 = problem
        .services
        .iter()
        .map(|s| f64::from(s.replicas))
        .sum::<f64>()
        .max(1.0);

    let report_weighted = |placement: &Placement, rng: &mut StdRng| -> (f64, f64) {
        // all edges weighted by traffic (∝ QPS)
        let mut total_w = 0.0;
        let mut lat = 0.0;
        let mut err = 0.0;
        for (ei, e) in problem.affinity_edges.iter().enumerate() {
            let localized = gained_affinity_of_edge(problem, placement, ei) / e.weight;
            lat += e.weight * config.network.observe_latency(localized, rng);
            err += e.weight * config.network.observe_error_rate(localized, rng);
            total_w += e.weight;
        }
        if total_w > 0.0 {
            (lat / total_w, err / total_w)
        } else {
            (0.0, 0.0)
        }
    };

    let mut weighted_latency_with = Vec::with_capacity(config.ticks);
    let mut weighted_latency_without = Vec::with_capacity(config.ticks);
    let mut weighted_latency_collocated = Vec::with_capacity(config.ticks);
    let mut weighted_error_with = Vec::with_capacity(config.ticks);
    let mut weighted_error_without = Vec::with_capacity(config.ticks);
    let mut weighted_error_collocated = Vec::with_capacity(config.ticks);
    let mut total_moves = 0usize;
    let mut migrations = 0usize;
    let mut moves_per_migration_fraction = Vec::new();

    for tick in 0..config.ticks {
        // diurnal cycle: all traffic swings together over a 48-tick day
        let phase = 2.0 * std::f64::consts::PI * (tick as f64) / 48.0;
        let diurnal = 1.0 + config.diurnal_amplitude * phase.sin();
        let mut problem_now = problem.clone();
        if config.diurnal_amplitude > 0.0 {
            for e in problem_now.affinity_edges.iter_mut() {
                e.weight *= diurnal;
            }
        }
        let problem = &problem_now;
        // churn hits both arms identically
        apply_churn(
            problem,
            &mut with_placement,
            config.churn_fraction,
            &mut rng_with,
        );
        apply_churn(
            problem,
            &mut without_placement,
            config.churn_fraction,
            &mut rng_without,
        );

        // WITH arm: the CronJob may re-optimize
        if let crate::cronjob::TickOutcome::Migrated { moves, .. } =
            cron.tick(problem, &mut with_placement, scheduler, &mut rng_with)
        {
            total_moves += moves;
            migrations += 1;
            moves_per_migration_fraction.push(moves as f64 / total_containers);
        }

        // observe tracked pairs
        for (k, &ei) in tracked.iter().enumerate() {
            let e = &problem.affinity_edges[ei];
            let f_with = gained_affinity_of_edge(problem, &with_placement, ei) / e.weight;
            let f_without = gained_affinity_of_edge(problem, &without_placement, ei) / e.weight;
            pairs[k]
                .latency_with
                .push(config.network.observe_latency(f_with, &mut rng_obs));
            pairs[k]
                .latency_without
                .push(config.network.observe_latency(f_without, &mut rng_obs));
            pairs[k]
                .latency_collocated
                .push(config.network.observe_latency(1.0, &mut rng_obs));
            pairs[k]
                .error_with
                .push(config.network.observe_error_rate(f_with, &mut rng_obs));
            pairs[k]
                .error_without
                .push(config.network.observe_error_rate(f_without, &mut rng_obs));
            pairs[k]
                .error_collocated
                .push(config.network.observe_error_rate(1.0, &mut rng_obs));
        }

        // weighted cluster-wide metrics
        let (lw, ew) = report_weighted(&with_placement, &mut rng_obs);
        let (lo, eo) = report_weighted(&without_placement, &mut rng_obs);
        weighted_latency_with.push(lw);
        weighted_error_with.push(ew);
        weighted_latency_without.push(lo);
        weighted_error_without.push(eo);
        weighted_latency_collocated.push(config.network.observe_latency(1.0, &mut rng_obs));
        weighted_error_collocated.push(config.network.observe_error_rate(1.0, &mut rng_obs));
    }

    ExperimentReport {
        pairs,
        weighted_latency_with,
        weighted_latency_without,
        weighted_latency_collocated,
        weighted_error_with,
        weighted_error_without,
        weighted_error_collocated,
        total_moves,
        migrations,
        moves_per_migration_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{FeatureMask, ProblemBuilder, ResourceVec};
    use rasa_solver::MipBased;

    fn problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let svcs: Vec<_> = (0..8)
            .map(|i| b.add_service(format!("s{i}"), 2, ResourceVec::cpu_mem(1.0, 1.0)))
            .collect();
        b.add_machines(6, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        for i in 0..4 {
            b.add_affinity(svcs[2 * i], svcs[2 * i + 1], 10.0 - i as f64);
        }
        b.build().unwrap()
    }

    #[test]
    fn with_rasa_beats_without_on_both_metrics() {
        let p = problem();
        let initial = crate::cronjob::tests_support::scattered_placement(&p);
        let cfg = ExperimentConfig {
            ticks: 12,
            churn_fraction: 0.1,
            cron: CronJobConfig {
                collector: crate::collector::DataCollector {
                    measurement_noise: 0.0,
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let report = run_production_experiment(&p, &initial, &MipBased::new(), &cfg);
        assert!(
            report.latency_improvement() > 0.05,
            "latency improvement {}",
            report.latency_improvement()
        );
        assert!(
            report.error_improvement() > 0.05,
            "error improvement {}",
            report.error_improvement()
        );
        assert!(report.migrations >= 1);
        assert_eq!(report.pairs.len(), 4);
        assert_eq!(report.weighted_latency_with.len(), 12);
    }

    #[test]
    fn collocated_bound_dominates_both_arms() {
        let p = problem();
        let initial = MipBased::new()
            .schedule(&p, rasa_lp::Deadline::none())
            .placement;
        let cfg = ExperimentConfig {
            ticks: 6,
            ..Default::default()
        };
        let report = run_production_experiment(&p, &initial, &MipBased::new(), &cfg);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&report.weighted_latency_collocated) <= mean(&report.weighted_latency_with) + 0.05,
            "collocated bound must be (near) the best"
        );
    }

    #[test]
    fn churn_fraction_zero_keeps_without_arm_static() {
        let p = problem();
        let initial = MipBased::new()
            .schedule(&p, rasa_lp::Deadline::none())
            .placement;
        let cfg = ExperimentConfig {
            ticks: 4,
            churn_fraction: 0.0,
            ..Default::default()
        };
        let report = run_production_experiment(&p, &initial, &MipBased::new(), &cfg);
        // starting from the optimum with no churn: both arms equal up to noise
        let w = report.latency_improvement().abs();
        assert!(w < 0.1, "improvement should be ~0, got {w}");
    }
}
