//! Seeded kill-9 crash campaign against the **real** `rasa-serve` binary.
//!
//! Unlike [`crate::soak`] (which drives an in-process server), this
//! harness spawns the daemon as a child process with write-ahead
//! journaling on, drives acked state into it, and then crashes it the way
//! production crashes: `SIGKILL` with zero warning, a seeded failpoint
//! (`RASA_WAL_CRASH_AT`) that aborts halfway through a journal append or
//! a compaction write, or a kill followed by deliberate journal damage
//! (torn tail, bit flip, truncated segment). It then restarts the daemon
//! on the same journal directory and asserts the recovery invariants:
//!
//! * **zero panics** — neither process lifetime may log `panicked at`;
//! * **zero uncertified publishes** — a recovered `GET /placement` must
//!   be byte-identical to a placement that was certified and acked
//!   before the crash (or belong to a round newer than the last ack —
//!   the ack-window race where a round published but its 200 never
//!   reached the client);
//! * **damage quarantines, never kills** — a corrupted journal may cost
//!   the tenant (503 / 404), but the restarted daemon must come up and
//!   answer health checks;
//! * **bounded recovery** — the restarted daemon must be listening
//!   within [`RECOVERY_BOUND_SECS`].
//!
//! The campaign is deterministic per seed: crash modes cycle, failpoint
//! indices and delta payloads derive from the seeded RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasa_trace::{generate, tiny_cluster};
use serde::Serialize;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A restarted daemon must be accepting connections within this bound.
pub const RECOVERY_BOUND_SECS: f64 = 30.0;

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CrashConfig {
    /// Master seed; every round derives from it.
    pub seed: u64,
    /// Crash points to execute (each round is one crash + one recovery).
    pub crash_points: usize,
    /// The `rasa-serve` binary to spawn.
    pub serve_bin: PathBuf,
    /// Scratch directory for journals and captured stderr. Rounds that
    /// pass are cleaned up; rounds that violate an invariant leave their
    /// journal and stderr behind for forensics.
    pub work_dir: PathBuf,
}

/// Locate the `rasa-serve` binary: `RASA_SERVE_BIN` if set, else a
/// sibling of the current executable (both live in `target/<profile>/`).
pub fn locate_serve_bin() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("RASA_SERVE_BIN") {
        let path = PathBuf::from(path);
        return path.is_file().then_some(path);
    }
    let exe = std::env::current_exe().ok()?;
    let sibling = exe.parent()?.join("rasa-serve");
    sibling.is_file().then_some(sibling)
}

/// How one round crashes the daemon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CrashMode {
    /// Quiesce (all requests acked), then SIGKILL. The recovered
    /// placement must be byte-identical to the last acked one.
    KillQuiesced,
    /// `RASA_WAL_CRASH_AT=append:<n>`: abort halfway through the n-th
    /// journal append (a genuinely torn record mid-write).
    FailpointAppend,
    /// `RASA_WAL_CRASH_AT=compact:<n>`: abort halfway through writing a
    /// checkpoint, before its rename.
    FailpointCompact,
    /// SIGKILL, then tear the newest segment's tail off.
    TornTail,
    /// SIGKILL, then flip one payload byte mid-segment.
    BitFlip,
    /// SIGKILL, then truncate the newest segment to half its length.
    TruncateSegment,
}

impl CrashMode {
    fn label(self) -> &'static str {
        match self {
            CrashMode::KillQuiesced => "kill_quiesced",
            CrashMode::FailpointAppend => "failpoint_append",
            CrashMode::FailpointCompact => "failpoint_compact",
            CrashMode::TornTail => "torn_tail",
            CrashMode::BitFlip => "bit_flip",
            CrashMode::TruncateSegment => "truncate_segment",
        }
    }

    fn cycle(i: usize) -> CrashMode {
        match i % 6 {
            0 => CrashMode::KillQuiesced,
            1 => CrashMode::FailpointAppend,
            2 => CrashMode::FailpointCompact,
            3 => CrashMode::TornTail,
            4 => CrashMode::BitFlip,
            _ => CrashMode::TruncateSegment,
        }
    }
}

/// One crash round's outcome.
#[derive(Clone, Debug, Serialize)]
pub struct CrashRound {
    /// Crash mode label (`kill_quiesced`, `failpoint_append`, …).
    pub mode: String,
    /// Placements acked (certified 200s observed) before the crash.
    pub acked_rounds: u64,
    /// What `GET /placement` answered after recovery (`identical`,
    /// `newer_round`, `quarantined`, `no_placement`, `empty`, or a
    /// violation description).
    pub recovered: String,
    /// Wall-clock from respawn to `listening on`, seconds.
    pub recovery_seconds: f64,
    /// `panicked at` found in either process's stderr.
    pub panicked: bool,
    /// Invariant violations this round (empty = clean).
    pub violations: Vec<String>,
}

/// The whole campaign's outcome.
#[derive(Clone, Debug, Default, Serialize)]
pub struct CrashReport {
    /// Master seed the campaign ran under.
    pub seed: u64,
    /// Per-round outcomes.
    pub rounds: Vec<CrashRound>,
    /// Rounds whose recovered placement was byte-identical to an acked
    /// certified placement.
    pub identical_recoveries: u64,
    /// Rounds that ended quarantined (expected under journal damage).
    pub quarantines: u64,
    /// Total `panicked at` sightings (must be 0).
    pub panics: u64,
    /// Campaign-level violations (must be empty).
    pub violations: Vec<String>,
    /// Mean recovery wall-clock across rounds, seconds.
    pub mean_recovery_seconds: f64,
    /// Worst recovery wall-clock across rounds, seconds.
    pub max_recovery_seconds: f64,
}

impl CrashReport {
    /// `true` when every invariant held in every round.
    pub fn is_clean(&self) -> bool {
        self.panics == 0 && self.violations.is_empty() && self.rounds.iter().all(|r| r.violations.is_empty())
    }
}

struct Daemon {
    child: Child,
    addr: SocketAddr,
    stderr_path: PathBuf,
    startup_seconds: f64,
}

/// Spawn the daemon and wait for `listening on <addr>` on stdout.
fn spawn_daemon(
    config: &CrashConfig,
    wal_dir: &Path,
    stderr_path: &Path,
    seed: u64,
    crash_at: Option<&str>,
) -> Result<Daemon, String> {
    let stderr_file = std::fs::File::create(stderr_path)
        .map_err(|e| format!("stderr capture {}: {e}", stderr_path.display()))?;
    let mut cmd = Command::new(&config.serve_bin);
    cmd.args([
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "1",
        "--deadline-ms",
        "500",
        "--drain-grace-ms",
        "500",
        "--wal-compact-every",
        "3",
        "--wal-segment-bytes",
        "8192",
    ])
    .arg("--seed")
    .arg(seed.to_string())
    .arg("--wal-dir")
    .arg(wal_dir)
    .stdout(Stdio::piped())
    .stderr(Stdio::from(stderr_file))
    .env_remove("RASA_WAL_CRASH_AT");
    if let Some(spec) = crash_at {
        cmd.env("RASA_WAL_CRASH_AT", spec);
    }
    let started = Instant::now();
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", config.serve_bin.display()))?;
    let stdout = child.stdout.take().ok_or("no stdout pipe")?;
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        while let Ok(n) = reader.read_line(&mut line) {
            if n == 0 {
                break;
            }
            if let Some(rest) = line.trim().strip_prefix("listening on ") {
                let _ = tx.send(rest.to_string());
            }
            line.clear();
        }
        // keep draining so the daemon never blocks on a full pipe
    });
    let addr_line = rx
        .recv_timeout(Duration::from_secs_f64(RECOVERY_BOUND_SECS))
        .map_err(|_| {
            let _ = child.kill();
            "daemon did not print `listening on` within the recovery bound".to_string()
        })?;
    let addr: SocketAddr = addr_line
        .parse()
        .map_err(|e| format!("unparseable listen address {addr_line:?}: {e}"))?;
    Ok(Daemon {
        child,
        addr,
        stderr_path: stderr_path.to_path_buf(),
        startup_seconds: started.elapsed().as_secs_f64(),
    })
}

struct Reply {
    status: u16,
    body: String,
}

fn exchange(addr: SocketAddr, method: &str, target: &str, body: &str) -> Option<Reply> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: crash\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).ok()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).ok()?;
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let status: u16 = head.split_whitespace().nth(1).and_then(|s| s.parse().ok())?;
    Some(Reply {
        status,
        body: body.to_string(),
    })
}

/// Round number and placement JSON out of a `GET /placement` body — the
/// identity key for byte-comparison across a crash (request-scoped fields
/// like `request_id` and `breaker` are excluded).
fn placement_key(body: &str) -> Option<(u64, String)> {
    let round: u64 = body
        .split("\"round\":")
        .nth(1)?
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .ok()?;
    let placement = body.split("\"placement\":").nth(1)?;
    let placement = placement.strip_suffix('}').unwrap_or(placement);
    Some((round, placement.to_string()))
}

fn problem_json(services: usize, seed: u64) -> String {
    let mut spec = tiny_cluster(seed);
    spec.services = services;
    spec.target_containers = services as u64 * 3;
    spec.machines = (services / 2).max(3);
    let problem = generate(&spec);
    serde_json::to_string(&problem).unwrap_or_else(|_| "{}".to_string())
}

fn delta_json(rng: &mut StdRng, service_span: u32) -> String {
    let a = rng.gen_range(0..service_span);
    let mut b = rng.gen_range(0..service_span);
    if b == a {
        b = (b + 1) % service_span.max(2);
    }
    let weight = 1.0 + rng.gen_range(0.0..1.0) * 40.0;
    format!(
        "{{\"edge_updates\":[{{\"a\":{a},\"b\":{b},\"weight\":{weight:.3}}}],\"replica_updates\":[]}}"
    )
}

/// The newest (highest-sequence) segment file of the tenant's journal.
fn newest_segment(wal_dir: &Path, tenant: &str) -> Option<PathBuf> {
    let dir = wal_dir.join(tenant);
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .ok()?
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".wal"))
        })
        .collect();
    segs.sort();
    segs.pop()
}

/// Damage the newest segment according to `mode`. Returns a description
/// of what was done (None when there was nothing to damage).
fn injure_journal(wal_dir: &Path, tenant: &str, mode: CrashMode, rng: &mut StdRng) -> Option<String> {
    // the newest non-trivial segment (an empty fresh segment is only the
    // 8-byte magic — nothing to damage)
    let seg = newest_segment(wal_dir, tenant)?;
    let bytes = std::fs::read(&seg).ok()?;
    if bytes.len() <= 8 {
        return None;
    }
    let name = seg.file_name()?.to_str()?.to_string();
    let (damaged, what) = match mode {
        CrashMode::TornTail => {
            let cut = bytes.len() - rng.gen_range(1..8.min(bytes.len() - 8)).max(1);
            (bytes[..cut].to_vec(), format!("tore {} to {cut} bytes", name))
        }
        CrashMode::BitFlip => {
            let mut bytes = bytes;
            let i = rng.gen_range(8..bytes.len());
            bytes[i] ^= 1 << rng.gen_range(0..8);
            (bytes, format!("flipped a bit at offset {i} of {name}"))
        }
        CrashMode::TruncateSegment => {
            let cut = (bytes.len() / 2).max(8);
            (bytes[..cut].to_vec(), format!("truncated {} to {cut} bytes", name))
        }
        _ => return None,
    };
    std::fs::write(&seg, damaged).ok()?;
    Some(what)
}

fn stderr_panicked(path: &Path) -> bool {
    std::fs::read_to_string(path)
        .map(|s| s.contains("panicked at"))
        .unwrap_or(false)
}

/// Execute one crash round. `violations` collects invariant breaches.
fn run_round(config: &CrashConfig, i: usize, rng: &mut StdRng) -> CrashRound {
    let mode = CrashMode::cycle(i);
    let round_dir = config.work_dir.join(format!("round_{i:03}"));
    let wal_dir = round_dir.join("wal");
    let _ = std::fs::remove_dir_all(&round_dir);
    let _ = std::fs::create_dir_all(&wal_dir);
    let mut violations = Vec::new();
    let tenant = "t0";
    let services = 6;

    // failpoint index: somewhere in the first handful of journal writes
    let crash_at = match mode {
        CrashMode::FailpointAppend => Some(format!("append:{}", rng.gen_range(1..=6))),
        CrashMode::FailpointCompact => Some(format!("compact:{}", rng.gen_range(1..=2))),
        _ => None,
    };

    let daemon = match spawn_daemon(
        config,
        &wal_dir,
        &round_dir.join("serve_before.stderr"),
        config.seed ^ i as u64,
        crash_at.as_deref(),
    ) {
        Ok(daemon) => daemon,
        Err(e) => {
            return CrashRound {
                mode: mode.label().to_string(),
                acked_rounds: 0,
                recovered: String::new(),
                recovery_seconds: 0.0,
                panicked: false,
                violations: vec![format!("round {i}: daemon failed to boot: {e}")],
            };
        }
    };
    let mut child = daemon.child;
    let addr = daemon.addr;
    let stderr_before = daemon.stderr_path;

    // drive acked state in: one snapshot, then seeded deltas. Every 200
    // is followed by a GET /placement so the acked set holds only
    // certified, client-visible placements.
    let mut acked: std::collections::BTreeMap<u64, String> = std::collections::BTreeMap::new();
    let requests = 1 + rng.gen_range(3..7);
    for r in 0..requests {
        if child.try_wait().ok().flatten().is_some() {
            break; // the failpoint fired
        }
        let (target, body) = if r == 0 {
            (
                format!("/snapshot?tenant={tenant}"),
                problem_json(services, config.seed ^ (i as u64) << 8),
            )
        } else {
            (format!("/delta?tenant={tenant}"), delta_json(rng, services as u32))
        };
        let reply = exchange(addr, "POST", &target, &body);
        let acked_ok = reply.as_ref().is_some_and(|r| r.status == 200);
        if acked_ok {
            if let Some(view) = exchange(addr, "GET", &format!("/placement?tenant={tenant}"), "") {
                if view.status == 200 {
                    if let Some((round, placement)) = placement_key(&view.body) {
                        acked.insert(round, placement);
                    }
                }
            }
        }
    }

    // crash it
    match mode {
        CrashMode::FailpointAppend | CrashMode::FailpointCompact => {
            // the daemon aborts itself at the failpoint; give it a moment,
            // then force the issue if the failpoint index was never reached
            let waited = Instant::now();
            while child.try_wait().ok().flatten().is_none()
                && waited.elapsed() < Duration::from_secs(5)
            {
                std::thread::sleep(Duration::from_millis(20));
            }
            if child.try_wait().ok().flatten().is_none() {
                let _ = child.kill();
            }
        }
        _ => {
            let _ = child.kill(); // SIGKILL — no drain, no flush
        }
    }
    let _ = child.wait();

    // post-mortem damage for the corruption modes
    let mut injected = None;
    if matches!(
        mode,
        CrashMode::TornTail | CrashMode::BitFlip | CrashMode::TruncateSegment
    ) {
        injected = injure_journal(&wal_dir, tenant, mode, rng);
    }

    // restart on the same journals and interrogate the recovered state
    let stderr_after = round_dir.join("serve_after.stderr");
    let daemon2 = match spawn_daemon(config, &wal_dir, &stderr_after, config.seed ^ i as u64, None)
    {
        Ok(daemon) => daemon,
        Err(e) => {
            return CrashRound {
                mode: mode.label().to_string(),
                acked_rounds: acked.len() as u64,
                recovered: String::new(),
                recovery_seconds: RECOVERY_BOUND_SECS,
                panicked: stderr_panicked(&stderr_before),
                violations: vec![format!(
                    "round {i} ({}): daemon failed to restart after crash: {e}",
                    mode.label()
                )],
            };
        }
    };
    let mut child2 = daemon2.child;
    let recovery_seconds = daemon2.startup_seconds;
    if recovery_seconds > RECOVERY_BOUND_SECS {
        violations.push(format!(
            "round {i} ({}): recovery took {recovery_seconds:.1}s (bound {RECOVERY_BOUND_SECS}s)",
            mode.label()
        ));
    }

    // the daemon must be serving, whatever the journal looked like
    if exchange(daemon2.addr, "GET", "/healthz", "").is_none() {
        violations.push(format!(
            "round {i} ({}): restarted daemon did not answer /healthz",
            mode.label()
        ));
    }

    let last_acked = acked.keys().next_back().copied().unwrap_or(0);
    let view = exchange(daemon2.addr, "GET", &format!("/placement?tenant={tenant}"), "");
    let recovered = match view {
        Some(reply) if reply.status == 200 => match placement_key(&reply.body) {
            Some((round, placement)) => {
                if acked.get(&round) == Some(&placement) {
                    "identical".to_string()
                } else if round > last_acked {
                    // published-but-unacked round: certified pre-crash,
                    // journaled, its 200 just never reached the client
                    "newer_round".to_string()
                } else {
                    violations.push(format!(
                        "round {i} ({}): recovered placement for round {round} is not \
                         byte-identical to the acked certified one",
                        mode.label()
                    ));
                    "identity_violation".to_string()
                }
            }
            None => {
                violations.push(format!(
                    "round {i} ({}): unparseable /placement body: {}",
                    mode.label(),
                    reply.body
                ));
                "unparseable".to_string()
            }
        },
        Some(reply) if reply.status == 503 && reply.body.contains("quarantined") => {
            "quarantined".to_string()
        }
        Some(reply) if reply.status == 404 => {
            // tenant empty or placement record lost to damage — state was
            // lost, but nothing uncertified was served
            if mode == CrashMode::KillQuiesced && !acked.is_empty() {
                violations.push(format!(
                    "round {i} ({}): acked placement lost over a clean kill (fsync-always)",
                    mode.label()
                ));
            }
            if reply.body.contains("no placement") {
                "no_placement".to_string()
            } else {
                "empty".to_string()
            }
        }
        Some(reply) => {
            violations.push(format!(
                "round {i} ({}): unexpected /placement status {}: {}",
                mode.label(),
                reply.status,
                reply.body
            ));
            format!("status_{}", reply.status)
        }
        None => {
            violations.push(format!(
                "round {i} ({}): restarted daemon did not answer /placement",
                mode.label()
            ));
            "no_response".to_string()
        }
    };
    // quiesced clean kill: byte identity is mandatory, not just allowed
    if mode == CrashMode::KillQuiesced && !acked.is_empty() && recovered != "identical" {
        violations.push(format!(
            "round {i} (kill_quiesced): expected byte-identical recovery, got {recovered}"
        ));
    }

    let _ = child2.kill();
    let _ = child2.wait();

    let panicked = stderr_panicked(&stderr_before) || stderr_panicked(&stderr_after);
    if panicked {
        violations.push(format!(
            "round {i} ({}): `panicked at` in daemon stderr",
            mode.label()
        ));
    }
    let _ = injected; // descriptive only; damage is asserted via recovery
    if violations.is_empty() {
        let _ = std::fs::remove_dir_all(&round_dir);
    }
    CrashRound {
        mode: mode.label().to_string(),
        acked_rounds: acked.len() as u64,
        recovered,
        recovery_seconds,
        panicked,
        violations,
    }
}

/// Run the whole campaign: `crash_points` rounds cycling through the
/// crash modes, deterministic per seed.
pub fn run_crash_campaign(config: &CrashConfig) -> CrashReport {
    let mut report = CrashReport {
        seed: config.seed,
        ..CrashReport::default()
    };
    let _ = std::fs::create_dir_all(&config.work_dir);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut total_recovery = 0.0;
    for i in 0..config.crash_points {
        let round = run_round(config, i, &mut rng);
        if round.panicked {
            report.panics += 1;
        }
        match round.recovered.as_str() {
            "identical" => report.identical_recoveries += 1,
            "quarantined" => report.quarantines += 1,
            _ => {}
        }
        total_recovery += round.recovery_seconds;
        report.max_recovery_seconds = report.max_recovery_seconds.max(round.recovery_seconds);
        report.rounds.push(round);
    }
    if !report.rounds.is_empty() {
        report.mean_recovery_seconds = total_recovery / report.rounds.len() as f64;
    }
    // campaign-level sanity: the schedule must actually have exercised
    // identity-checkable recoveries, or the harness is vacuous
    if report.identical_recoveries == 0 && config.crash_points >= 6 {
        report
            .violations
            .push("no round recovered byte-identical state — harness or daemon broken".to_string());
    }
    report
}
