//! The data-collection component (Section III-A): snapshots the service
//! list, machine list, current deployments and traffic metrics.

use rand::Rng;
use rasa_model::{Placement, Problem};

/// A point-in-time snapshot of the cluster — the input to the RASA
/// algorithm.
#[derive(Clone, Debug)]
pub struct ClusterState {
    /// Services, machines, constraints, and the *measured* affinity edges.
    pub problem: Problem,
    /// Current container deployments.
    pub placement: Placement,
}

/// Collects cluster snapshots, re-measuring traffic each time.
///
/// Production traffic fluctuates; the metrics monitoring system observes
/// each pair's volume with noise. The collector models this by applying
/// multiplicative noise (`measurement_noise`) to the ground-truth edge
/// weights — so the optimizer plans against measurements, not the truth,
/// like the deployed system.
#[derive(Clone, Debug)]
pub struct DataCollector {
    /// Relative multiplicative measurement noise (0 = perfect metrics).
    pub measurement_noise: f64,
}

impl Default for DataCollector {
    fn default() -> Self {
        DataCollector {
            measurement_noise: 0.01,
        }
    }
}

impl DataCollector {
    /// Snapshot the cluster: clone the problem with re-measured traffic.
    pub fn collect<R: Rng>(
        &self,
        truth: &Problem,
        placement: &Placement,
        rng: &mut R,
    ) -> ClusterState {
        let mut problem = truth.clone();
        if self.measurement_noise > 0.0 {
            for e in problem.affinity_edges.iter_mut() {
                let noise = 1.0 + rng.gen_range(-self.measurement_noise..self.measurement_noise);
                e.weight = (e.weight * noise).max(f64::MIN_POSITIVE);
            }
        }
        ClusterState {
            problem,
            placement: placement.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rasa_model::{FeatureMask, ProblemBuilder, ResourceVec};

    fn problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 1, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 10.0);
        b.build().expect("test problem builds")
    }

    #[test]
    fn noiseless_collection_is_exact() {
        let p = problem();
        let placement = Placement::empty_for(&p);
        let mut rng = StdRng::seed_from_u64(0);
        let state = DataCollector {
            measurement_noise: 0.0,
        }
        .collect(&p, &placement, &mut rng);
        assert_eq!(state.problem.affinity_edges[0].weight, 10.0);
    }

    #[test]
    fn noisy_collection_stays_near_truth_and_positive() {
        let p = problem();
        let placement = Placement::empty_for(&p);
        let mut rng = StdRng::seed_from_u64(1);
        let collector = DataCollector {
            measurement_noise: 0.1,
        };
        for _ in 0..50 {
            let state = collector.collect(&p, &placement, &mut rng);
            let w = state.problem.affinity_edges[0].weight;
            assert!(w > 0.0);
            assert!((w / 10.0 - 1.0).abs() <= 0.1 + 1e-9, "w = {w}");
        }
    }

    #[test]
    fn snapshot_carries_the_placement() {
        let p = problem();
        let mut placement = Placement::empty_for(&p);
        placement.add(rasa_model::ServiceId(0), rasa_model::MachineId(0), 1);
        let mut rng = StdRng::seed_from_u64(2);
        let state = DataCollector::default().collect(&p, &placement, &mut rng);
        assert_eq!(state.placement, placement);
    }
}
