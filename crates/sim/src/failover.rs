//! Failure injection for migration execution: a machine dies mid-path, its
//! containers are lost, and the controller must replan from the degraded
//! state (DESIGN.md §7 extension; the paper's rollback machinery, III-B,
//! handles the milder version of this).

use rasa_migrate::{plan_migration, MigrateConfig, MigrateError, MigrationPlan};
use rasa_model::{ContainerAssignment, ContainerId, MachineId, Placement, Problem};
use rasa_solver::complete_placement;

/// Outcome of executing a plan under failure injection.
#[derive(Clone, Debug)]
pub struct FailoverReport {
    /// Steps executed from the original plan before (or without) a failure.
    pub executed_steps: usize,
    /// Containers lost when the machine died (0 without a failure).
    pub lost_containers: usize,
    /// Steps in the recovery plan (0 without a failure).
    pub recovery_steps: usize,
    /// Containers moved by the recovery plan.
    pub recovery_moves: usize,
}

/// Execute `plan` step by step over `state`. If `fail` is set, the given
/// machine dies right after that step index: every container on it is lost
/// and the machine becomes unschedulable. The executor then rebuilds a
/// degraded problem (failed machine capacity zeroed), re-places the lost
/// containers, and computes a recovery migration plan toward the repaired
/// target. Returns the report; `state` ends at the final (recovered)
/// assignment.
///
/// Single-failure convenience wrapper around [`execute_with_failures`].
pub fn execute_with_failure(
    problem: &Problem,
    state: &mut ContainerAssignment,
    plan: &MigrationPlan,
    target: &Placement,
    fail: Option<(usize, MachineId)>,
    migrate: &MigrateConfig,
) -> Result<FailoverReport, MigrateError> {
    match fail {
        Some((step, machine)) => {
            execute_with_failures(problem, state, plan, target, Some((step, &[machine])), migrate)
        }
        None => execute_with_failures(problem, state, plan, target, None, migrate),
    }
}

/// Generalization of [`execute_with_failure`] to a *correlated* failure
/// burst: all machines in `fail.1` die together right after step `fail.0`
/// (think a rack or power-domain loss). Every container on any dead
/// machine is lost and the machines become unschedulable; recovery
/// re-places the lost containers on the surviving capacity and migrates to
/// the repaired target.
pub fn execute_with_failures(
    problem: &Problem,
    state: &mut ContainerAssignment,
    plan: &MigrationPlan,
    target: &Placement,
    fail: Option<(usize, &[MachineId])>,
    migrate: &MigrateConfig,
) -> Result<FailoverReport, MigrateError> {
    let mut executed_steps = 0usize;
    for (i, step) in plan.steps.iter().enumerate() {
        for &(c, _m) in &step.deletes {
            state.unassign(c);
        }
        for &(c, m) in &step.creates {
            state.assign(c, m);
        }
        executed_steps += 1;
        if let Some((fail_step, dead)) = fail {
            if i == fail_step {
                return recover(problem, state, dead, migrate, executed_steps);
            }
        }
    }
    // no failure: verify we reached the target
    if &state.to_placement() != target {
        // plan/target mismatch is a caller bug; surface as Stuck
        return Err(MigrateError::Stuck { remaining: 0 });
    }
    Ok(FailoverReport {
        executed_steps,
        lost_containers: 0,
        recovery_steps: 0,
        recovery_moves: 0,
    })
}

fn recover(
    problem: &Problem,
    state: &mut ContainerAssignment,
    dead: &[MachineId],
    migrate: &MigrateConfig,
    executed_steps: usize,
) -> Result<FailoverReport, MigrateError> {
    // 1. the machines die together: lose their containers
    let lost: Vec<_> = state
        .iter_assigned()
        .filter(|&(_, m)| dead.contains(&m))
        .map(|(c, _)| c)
        .collect();
    for &c in &lost {
        state.unassign(c);
    }

    // 2. degraded problem: no dead machine has capacity
    let mut degraded = problem.clone();
    for &d in dead {
        degraded.machines[d.idx()].capacity = rasa_model::ResourceVec::ZERO;
    }

    // 3. repaired target: current placement + lost containers re-placed by
    // the default scheduler on the degraded cluster
    let current = state.to_placement();
    let mut repaired = current.clone();
    complete_placement(&degraded, &mut repaired);

    // 4. the lost containers are already offline, so they can be recreated
    // immediately into the repaired target's new slots — no SLA risk, no
    // resource wait
    let recreated = recreate_lost(state, &current, &repaired, &lost);

    // 5. any residual difference (none in the common case) goes through the
    // normal migration planner
    let after = state.to_placement();
    let recovery = if after == repaired {
        MigrationPlan::default()
    } else {
        plan_migration(&degraded, state, &repaired, migrate)?
    };
    for step in &recovery.steps {
        for &(c, _m) in &step.deletes {
            state.unassign(c);
        }
        for &(c, m) in &step.creates {
            state.assign(c, m);
        }
    }
    Ok(FailoverReport {
        executed_steps,
        lost_containers: lost.len(),
        recovery_steps: recovery.steps.len(),
        recovery_moves: recovery.total_moves() + recreated,
    })
}

/// Recreate already-offline `lost` containers directly into the slots that
/// `repaired` added relative to `current`. Completion capacity-checked those
/// slots against the current usage, and offline containers carry no SLA
/// wait, so the assignments are immediate. Returns how many were recreated
/// (fewer than `lost.len()` when surviving capacity cannot hold them all).
pub(crate) fn recreate_lost(
    state: &mut ContainerAssignment,
    current: &Placement,
    repaired: &Placement,
    lost: &[ContainerId],
) -> usize {
    let mut recreated = 0usize;
    let mut lost_by_service: std::collections::HashMap<rasa_model::ServiceId, Vec<_>> =
        Default::default();
    for &c in lost {
        lost_by_service.entry(c.service).or_default().push(c);
    }
    for (s, replicas) in lost_by_service {
        let mut deficit: Vec<(MachineId, u32)> = repaired
            .machines_of(s)
            .map(|(m, tc)| (m, tc.saturating_sub(current.count(s, m))))
            .filter(|&(_, d)| d > 0)
            .collect();
        let mut di = 0usize;
        for c in replicas {
            while di < deficit.len() && deficit[di].1 == 0 {
                di += 1;
            }
            let Some(&mut (m, ref mut left)) = deficit.get_mut(di) else {
                break;
            };
            state.assign(c, m);
            *left -= 1;
            recreated += 1;
        }
    }
    recreated
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{validate, FeatureMask, ProblemBuilder, ResourceVec, ServiceId};

    fn setup() -> (Problem, ContainerAssignment, Placement, MigrationPlan) {
        let mut b = ProblemBuilder::new();
        b.add_service("svc", 6, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(3, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        let p = b.build().expect("setup problem builds");
        let mut start = Placement::empty_for(&p);
        start.add(ServiceId(0), MachineId(0), 6);
        let from = ContainerAssignment::materialize(&p, &start);
        let mut target = Placement::empty_for(&p);
        target.add(ServiceId(0), MachineId(0), 2);
        target.add(ServiceId(0), MachineId(1), 2);
        target.add(ServiceId(0), MachineId(2), 2);
        let plan = plan_migration(&p, &from, &target, &MigrateConfig::default())
            .expect("setup migration plans");
        (p, from, target, plan)
    }

    #[test]
    fn clean_execution_reaches_target() {
        let (p, from, target, plan) = setup();
        let mut state = from.clone();
        let report = execute_with_failure(
            &p,
            &mut state,
            &plan,
            &target,
            None,
            &MigrateConfig::default(),
        )
        .expect("clean execution succeeds");
        assert_eq!(report.lost_containers, 0);
        assert_eq!(state.to_placement(), target);
    }

    #[test]
    fn machine_failure_triggers_recovery() {
        let (p, from, target, plan) = setup();
        let mut state = from.clone();
        // kill machine 1 midway
        let fail_step = plan.steps.len() / 2;
        let report = execute_with_failure(
            &p,
            &mut state,
            &plan,
            &target,
            Some((fail_step, MachineId(1))),
            &MigrateConfig::default(),
        )
        .expect("recovery from a single machine failure succeeds");
        // SLA restored: all 6 containers alive, none on the dead machine
        let final_placement = state.to_placement();
        assert_eq!(final_placement.placed_count(ServiceId(0)), 6);
        assert_eq!(final_placement.count(ServiceId(0), MachineId(1)), 0);
        // the degraded cluster (m1 dead) must still satisfy constraints
        let mut degraded = p.clone();
        degraded.machines[1].capacity = ResourceVec::ZERO;
        assert!(validate(&degraded, &final_placement, true).is_empty());
        assert_eq!(report.executed_steps, fail_step + 1);
    }

    #[test]
    fn correlated_two_machine_failure_recovers_to_feasible_state() {
        // 4 machines so two can die and capacity still covers the SLA
        let mut b = ProblemBuilder::new();
        b.add_service("svc", 6, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(4, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        let p = b.build().expect("four-machine problem builds");
        let mut start = Placement::empty_for(&p);
        start.add(ServiceId(0), MachineId(0), 6);
        let from = ContainerAssignment::materialize(&p, &start);
        let mut target = Placement::empty_for(&p);
        for m in 0..3 {
            target.add(ServiceId(0), MachineId(m), 2);
        }
        let plan = plan_migration(&p, &from, &target, &MigrateConfig::default())
            .expect("migration plans");
        let mut state = from.clone();
        let dead = [MachineId(1), MachineId(2)];
        let report = execute_with_failures(
            &p,
            &mut state,
            &plan,
            &target,
            Some((plan.steps.len() / 2, &dead)),
            &MigrateConfig::default(),
        )
        .expect("recovery from correlated failures succeeds");
        let final_placement = state.to_placement();
        assert_eq!(final_placement.placed_count(ServiceId(0)), 6);
        for d in dead {
            assert_eq!(final_placement.count(ServiceId(0), d), 0);
        }
        let mut degraded = p.clone();
        for d in dead {
            degraded.machines[d.idx()].capacity = ResourceVec::ZERO;
        }
        assert!(validate(&degraded, &final_placement, true).is_empty());
        assert!(report.lost_containers <= 6);
    }

    #[test]
    fn failure_on_an_empty_machine_is_benign() {
        let (p, from, target, plan) = setup();
        let mut state = from.clone();
        // machine 2 may be empty early in the plan; kill it at step 0
        let report = execute_with_failure(
            &p,
            &mut state,
            &plan,
            &target,
            Some((0, MachineId(2))),
            &MigrateConfig::default(),
        )
        .expect("failure on an empty machine is benign");
        let final_placement = state.to_placement();
        assert_eq!(final_placement.placed_count(ServiceId(0)), 6);
        assert_eq!(final_placement.count(ServiceId(0), MachineId(2)), 0);
        // lost containers only if m2 already hosted some at step 0
        assert!(report.lost_containers <= 1);
    }
}
