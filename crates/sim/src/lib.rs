#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! # rasa-sim
//!
//! The cluster/network simulator standing in for the paper's production
//! deployment (Sections III and V-F). It reproduces the mechanism behind
//! Figs 11–13: collocated containers talk over IPC, remote ones over RPC,
//! so the *localized traffic fraction* (per-pair gained affinity) converts
//! directly into end-to-end latency and request error rate.
//!
//! Components:
//!
//! * [`NetworkModel`] — IPC vs RPC latency/error parameters with jitter;
//! * [`DataCollector`] — produces [`ClusterState`] snapshots, re-measuring
//!   traffic with observation noise like the metrics monitoring system;
//! * [`CronJob`] — the half-hourly workflow controller: collect → optimize
//!   → dry-run below the 3% improvement threshold → otherwise migrate via
//!   `rasa-migrate`, with verification-and-rollback;
//! * [`experiment`] — the production experiment: a churning cluster run
//!   twice (WITH RASA and WITHOUT RASA) plus the ONLY-COLLOCATED bound,
//!   producing the normalized time series of Figs 11–13;
//! * [`chaos`] — seeded deterministic fault schedules (correlated machine
//!   deaths, mid-solve deaths, deadline starvation) with a per-step
//!   invariant checker, generalizing the single-failure [`failover`] drill;
//! * [`corruption`] — seeded *data*-corruption chaos (NaN/Inf flips,
//!   dangling references, truncated artifacts, poisoned cache entries)
//!   asserting the pipeline's two-gate trust boundary: no panics, no
//!   uncertified placement;
//! * [`soak`] — seeded churn campaign against a live `rasa-serve` daemon
//!   (tenant arrivals/departures, delta storms, slow-loris, disconnects,
//!   corrupted snapshots) asserting zero panics, zero uncertified
//!   publishes, and bounded state;
//! * [`crash`] — seeded kill-9 campaign against the **real** `rasa-serve`
//!   binary with write-ahead journaling on: SIGKILL at quiesce, aborts
//!   mid-append and mid-compaction via `RASA_WAL_CRASH_AT`, and post-kill
//!   journal damage (torn tail, bit flip, truncated segment), asserting
//!   recovered placements are byte-identical to acked certified ones and
//!   that damage quarantines instead of killing the daemon.

pub mod chaos;
pub mod crash;
pub mod collector;
pub mod corruption;
pub mod cronjob;
pub mod experiment;
pub mod failover;
pub mod network;
pub mod soak;

pub use chaos::{run_chaos, ChaosEvent, ChaosReport, ChaosSchedule, InvariantChecker};
pub use crash::{locate_serve_bin, run_crash_campaign, CrashConfig, CrashReport, CrashRound};
pub use corruption::{run_corruption_campaign, CorruptionKind, CorruptionReport, CorruptionRound};
pub use soak::{run_soak, SoakConfig, SoakReport};
pub use collector::{ClusterState, DataCollector};
pub use cronjob::{CronJob, CronJobConfig, TickOutcome};
pub use experiment::{run_production_experiment, ExperimentConfig, ExperimentReport, PairSeries};
pub use failover::{execute_with_failure, execute_with_failures, FailoverReport};
pub use network::{NetworkModel, NetworkModelError};
