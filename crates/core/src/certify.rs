//! Gate 2 of the pipeline's trust boundary: independent certification of
//! candidate placements.
//!
//! Every placement the pipeline is about to accept — from any rung of the
//! fallback ladder *or* replayed verbatim from the
//! [`SolveCache`](crate::SolveCache) — is re-verified here against the
//! paper's constraints (3)–(6) via [`fn@rasa_model::validate`], and the
//! producer's *claimed* objective is cross-checked against a recomputed
//! one. A failure is treated as a solver (or cache) fault: the caller
//! routes it down the fallback ladder or re-solves, never accepts it.
//!
//! Certification emits `certify.*` counters into the global metrics
//! registry and a [`EventKind::CertifyFailure`](rasa_obs::EventKind)
//! flight event on every rejection, so a poisoned cache entry or a
//! miscounting solver leaves a forensic trail (the pipeline marks the
//! round degraded, which makes the flight recorder dump a black box).

use rasa_model::{gained_affinity, validate, Placement, Problem, Violation};
use rasa_obs::flight::{self, TraceEvent};
use std::fmt;

/// Relative tolerance for the claimed-vs-recomputed objective
/// cross-check: `|claimed − recomputed| ≤ tol · max(1, |recomputed|)`.
pub const OBJECTIVE_REL_TOL: f64 = 1e-6;

/// Why a candidate placement was rejected by [`certify_placement`].
#[derive(Clone, Debug, PartialEq)]
pub struct CertificationFailure {
    /// Constraint violations found by the independent re-check (empty for
    /// a pure objective mismatch or a structural defect).
    pub violations: Vec<Violation>,
    /// A shape defect that made constraint validation impossible
    /// (placement sized for a different problem, unknown machine ids).
    pub structural: Option<String>,
    /// The objective the producer claimed.
    pub claimed_objective: f64,
    /// The objective recomputed from the placement (0 when a structural
    /// defect prevented recomputation).
    pub recomputed_objective: f64,
    /// Who produced the candidate (an algorithm name or `"solve_cache"`).
    pub source: String,
}

impl CertificationFailure {
    /// `true` when the placement satisfied all constraints but the
    /// claimed objective did not match the recomputed one.
    pub fn is_objective_mismatch(&self) -> bool {
        self.violations.is_empty() && self.structural.is_none()
    }

    /// Compact description suitable for
    /// [`RasaError::CertificationFailed`](rasa_model::RasaError::CertificationFailed).
    pub fn detail(&self) -> String {
        if let Some(s) = &self.structural {
            format!("structural defect from {}: {s}", self.source)
        } else if self.is_objective_mismatch() {
            format!(
                "objective mismatch from {}: claimed {} vs recomputed {}",
                self.source, self.claimed_objective, self.recomputed_objective
            )
        } else {
            format!(
                "{} constraint violation(s) from {} (first: {})",
                self.violations.len(),
                self.source,
                self.violations[0]
            )
        }
    }
}

/// A defect that makes the placement impossible to even validate against
/// `problem` — indexing it would panic, so it must be caught first.
fn structural_defect(problem: &Problem, placement: &Placement) -> Option<String> {
    if placement.num_services() != problem.num_services() {
        return Some(format!(
            "placement shaped for {} services, problem has {}",
            placement.num_services(),
            problem.num_services()
        ));
    }
    for (_, m, _) in placement.iter() {
        if m.idx() >= problem.num_machines() {
            return Some(format!("placement references unknown machine {m}"));
        }
    }
    None
}

impl fmt::Display for CertificationFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "certification failed: {}", self.detail())
    }
}

/// Independently certify a candidate placement.
///
/// Re-validates `placement` against every constraint of `problem`
/// (`check_sla = false` permits partial placements, matching the
/// fallback ladder's contract) and recomputes the gained-affinity
/// objective, rejecting when it differs from `claimed_objective` by more
/// than [`OBJECTIVE_REL_TOL`] (relative) — a NaN/infinite claim always
/// rejects. Returns the recomputed objective on success.
///
/// `source` names the producer in counters, flight events and error
/// details.
pub fn certify_placement(
    problem: &Problem,
    placement: &Placement,
    claimed_objective: f64,
    check_sla: bool,
    source: &str,
) -> Result<f64, CertificationFailure> {
    let obs = rasa_obs::global();
    if obs.enabled() {
        obs.inc("certify.checks");
    }
    // Structural defects first: validating a placement shaped for a
    // different problem would index out of bounds.
    if let Some(defect) = structural_defect(problem, placement) {
        if obs.enabled() {
            obs.inc("certify.structural_failures");
        }
        let failure = CertificationFailure {
            violations: Vec::new(),
            structural: Some(defect),
            claimed_objective,
            recomputed_objective: 0.0,
            source: source.to_string(),
        };
        flight::emit(|| TraceEvent::certify_failure(1, claimed_objective, 0.0, source));
        return Err(failure);
    }
    let violations = validate(problem, placement, check_sla);
    let recomputed = gained_affinity(problem, placement);
    if !violations.is_empty() {
        if obs.enabled() {
            obs.inc("certify.constraint_failures");
        }
        let failure = CertificationFailure {
            violations,
            structural: None,
            claimed_objective,
            recomputed_objective: recomputed,
            source: source.to_string(),
        };
        flight::emit(|| {
            TraceEvent::certify_failure(
                failure.violations.len() as u64,
                claimed_objective,
                recomputed,
                source,
            )
        });
        return Err(failure);
    }
    let diff = (claimed_objective - recomputed).abs();
    let tol = OBJECTIVE_REL_TOL * recomputed.abs().max(1.0);
    // non-finite diff (a NaN or infinite claim) must also reject
    if !diff.is_finite() || diff > tol {
        if obs.enabled() {
            obs.inc("certify.objective_failures");
        }
        let failure = CertificationFailure {
            violations: Vec::new(),
            structural: None,
            claimed_objective,
            recomputed_objective: recomputed,
            source: source.to_string(),
        };
        flight::emit(|| TraceEvent::certify_failure(0, claimed_objective, recomputed, source));
        return Err(failure);
    }
    if obs.enabled() {
        obs.inc("certify.ok");
    }
    Ok(recomputed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{FeatureMask, MachineId, ProblemBuilder, ServiceId, ResourceVec};

    fn problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(4.0, 4.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 10.0);
        b.build().expect("problem builds")
    }

    #[test]
    fn honest_placement_certifies() {
        let p = problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(0), 2);
        x.add(ServiceId(1), MachineId(0), 2);
        let obj = gained_affinity(&p, &x);
        let got = certify_placement(&p, &x, obj, true, "test").expect("certifies");
        assert_eq!(got, obj);
    }

    #[test]
    fn constraint_violation_rejected() {
        let p = problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(0), 2);
        x.add(ServiceId(1), MachineId(0), 3); // 5 x 1.0 cpu on a 4.0-cpu machine
        let claimed = gained_affinity(&p, &x);
        let err = certify_placement(&p, &x, claimed, false, "test").expect_err("rejected");
        assert!(!err.is_objective_mismatch());
        assert!(err.detail().contains("constraint violation"));
    }

    #[test]
    fn objective_mismatch_rejected() {
        let p = problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(0), 2);
        x.add(ServiceId(1), MachineId(0), 2);
        let obj = gained_affinity(&p, &x);
        let err = certify_placement(&p, &x, obj + 1.0, true, "liar").expect_err("rejected");
        assert!(err.is_objective_mismatch());
        assert_eq!(err.recomputed_objective, obj);
        assert!(err.to_string().contains("liar"));
    }

    #[test]
    fn nan_claim_rejected() {
        let p = problem();
        let x = Placement::empty_for(&p);
        let err = certify_placement(&p, &x, f64::NAN, false, "test").expect_err("rejected");
        assert!(err.is_objective_mismatch());
    }

    #[test]
    fn tolerance_absorbs_float_noise() {
        let p = problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(0), 2);
        x.add(ServiceId(1), MachineId(0), 2);
        let obj = gained_affinity(&p, &x);
        assert!(certify_placement(&p, &x, obj * (1.0 + 1e-12), true, "test").is_ok());
    }

    #[test]
    fn structurally_corrupt_placement_rejected_without_panic() {
        let p = problem();
        // Shaped for a different (larger) problem.
        let mut wrong_shape = Placement::empty(5);
        wrong_shape.add(ServiceId(4), MachineId(0), 1);
        let err = certify_placement(&p, &wrong_shape, 0.0, false, "cache").expect_err("rejected");
        assert!(err.structural.is_some());
        assert!(!err.is_objective_mismatch());
        assert!(err.detail().contains("structural defect"));

        // Right shape, but references a machine the problem doesn't have.
        let mut bad_machine = Placement::empty_for(&p);
        bad_machine.add(ServiceId(0), MachineId(99), 1);
        let err = certify_placement(&p, &bad_machine, 0.0, false, "cache").expect_err("rejected");
        assert!(err.structural.is_some());
        assert!(err.detail().contains("unknown machine"));
    }

    #[test]
    fn incomplete_placement_fails_sla_check_only() {
        let p = problem();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(0), 1);
        let obj = gained_affinity(&p, &x);
        assert!(certify_placement(&p, &x, obj, false, "test").is_ok());
        assert!(certify_placement(&p, &x, obj, true, "test").is_err());
    }
}
