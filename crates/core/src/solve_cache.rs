//! Cross-round solve cache: the pipeline's warm-start layer.
//!
//! RASA runs as a *periodic* re-allocation service; consecutive rounds see
//! nearly identical clusters. A [`SolveCache`] handed to
//! [`RasaPipeline::optimize_with_cache`](crate::RasaPipeline::optimize_with_cache)
//! carries three kinds of reuse across rounds:
//!
//! * **Subproblem solves** — keyed by the full partition fingerprint
//!   (`Subproblem::fingerprint`): a subproblem identical to one solved
//!   last round replays its cached sub-placement verbatim, skipping the
//!   solver entirely.
//! * **Column pools** — an embedded [`ColumnCache`] keyed by the
//!   service-set fingerprint seeds column generation's restricted master
//!   for *dirty* subproblems whose service set survived (machine-side
//!   perturbations don't invalidate the pool).
//! * **Simplex bases** — inside each CG run, the master LP warm-starts
//!   round-over-round from its previous basis (`rasa-lp`'s [`Basis`]
//!   support); this needs no cross-round state and comes for free once the
//!   two caches above route a re-solve into CG.
//!
//! Entries not touched in a round are evicted at the end of that round
//! (the partition changed shape), reported as *invalidations* in
//! [`CacheRoundStats`] and the `cache.invalidations` obs counter.
//!
//! The cache is `Sync`; one instance may serve concurrent pipelines, and
//! the pipeline's parallel solve path shares it across worker threads.
//!
//! [`Basis`]: rasa_lp::Basis

use parking_lot::Mutex;
use rasa_model::Placement;
use rasa_select::PoolAlgorithm;
use rasa_solver::ColumnCache;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A cached subproblem solve: everything needed to replay the result
/// without re-running a solver.
#[derive(Clone, Debug)]
pub struct CachedSubSolve {
    /// The sub-local placement the solver produced.
    pub placement: Placement,
    /// Which pool algorithm produced it.
    pub algorithm: PoolAlgorithm,
    /// Whether that solve ran to completion within its deadline.
    pub completed: bool,
    /// The gained-affinity objective the solver reported for this
    /// placement. Replays cross-check it against a recomputed value
    /// (Gate 2), so an entry mutated after being stored is caught
    /// instead of replayed.
    pub gained_affinity: f64,
}

/// Hit/miss/invalidation tallies for one pipeline round, reported on
/// [`RasaRun::cache`](crate::RasaRun::cache).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheRoundStats {
    /// Subproblems replayed from cache.
    pub hits: usize,
    /// Subproblems that had to be solved.
    pub misses: usize,
    /// Cache entries evicted because no current subproblem matched them.
    pub invalidations: usize,
}

/// Cross-round warm-start state for [`RasaPipeline`](crate::RasaPipeline).
///
/// Create one per logical problem stream and pass it to every
/// `optimize_with_cache` call; the pipeline fills and invalidates it.
#[derive(Debug, Default)]
pub struct SolveCache {
    subs: Mutex<HashMap<u64, CachedSubSolve>>,
    columns: Arc<ColumnCache>,
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The embedded cross-round column-pool cache (shared handle).
    pub fn columns(&self) -> Arc<ColumnCache> {
        Arc::clone(&self.columns)
    }

    /// The cached solve for a full subproblem fingerprint, if any.
    pub fn lookup(&self, fingerprint: u64) -> Option<CachedSubSolve> {
        self.subs.lock().get(&fingerprint).cloned()
    }

    /// Store (or replace) the solve cached under `fingerprint`.
    pub fn store(&self, fingerprint: u64, entry: CachedSubSolve) {
        self.subs.lock().insert(fingerprint, entry);
    }

    /// Evict every entry not referenced by the current round: subproblem
    /// solves whose full fingerprint is not in `live_subs`, and column
    /// pools whose service-set fingerprint is not in `live_columns`.
    /// Returns the total number of evictions.
    pub fn retain(&self, live_subs: &HashSet<u64>, live_columns: &HashSet<u64>) -> usize {
        let mut subs = self.subs.lock();
        let before = subs.len();
        subs.retain(|k, _| live_subs.contains(k));
        let evicted_subs = before - subs.len();
        drop(subs);
        evicted_subs + self.columns.retain_keys(live_columns)
    }

    /// Fingerprints of every cached subproblem solve, in no particular
    /// order. Introspection for tests and chaos campaigns that need to
    /// target (e.g. poison) specific entries through `lookup`/`store`.
    pub fn fingerprints(&self) -> Vec<u64> {
        self.subs.lock().keys().copied().collect()
    }

    /// Number of cached subproblem solves.
    pub fn len(&self) -> usize {
        self.subs.lock().len()
    }

    /// `true` when no subproblem solve is cached.
    pub fn is_empty(&self) -> bool {
        self.subs.lock().is_empty()
    }

    /// Drop all cached state (subproblem solves and column pools).
    pub fn clear(&self) {
        self.subs.lock().clear();
        self.columns.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> CachedSubSolve {
        CachedSubSolve {
            placement: Placement::empty(0),
            algorithm: PoolAlgorithm::Mip,
            completed: true,
            gained_affinity: 0.0,
        }
    }

    #[test]
    fn store_lookup_round_trip() {
        let cache = SolveCache::new();
        assert!(cache.is_empty());
        assert!(cache.lookup(5).is_none());
        cache.store(5, entry());
        let hit = cache.lookup(5).expect("hit");
        assert_eq!(hit.algorithm, PoolAlgorithm::Mip);
        assert!(hit.completed);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn retain_evicts_both_layers_and_counts() {
        let cache = SolveCache::new();
        cache.store(1, entry());
        cache.store(2, entry());
        cache.columns().put(10, vec![vec![(rasa_model::ServiceId(0), 1)]]);
        cache.columns().put(11, vec![vec![(rasa_model::ServiceId(1), 1)]]);

        let live_subs: HashSet<u64> = [1].into_iter().collect();
        let live_cols: HashSet<u64> = [11].into_iter().collect();
        assert_eq!(cache.retain(&live_subs, &live_cols), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(1).is_some());
        assert!(cache.columns().get(10).is_none());
        assert!(cache.columns().get(11).is_some());
    }

    #[test]
    fn fingerprints_lists_cached_keys() {
        let cache = SolveCache::new();
        cache.store(3, entry());
        cache.store(9, entry());
        let mut fps = cache.fingerprints();
        fps.sort_unstable();
        assert_eq!(fps, vec![3, 9]);
    }

    #[test]
    fn clear_drops_everything() {
        let cache = SolveCache::new();
        cache.store(1, entry());
        cache.columns().put(10, vec![vec![(rasa_model::ServiceId(0), 1)]]);
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.columns().is_empty());
    }
}
