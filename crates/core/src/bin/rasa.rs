//! `rasa` — command-line driver for the RASA pipeline.
//!
//! Subcommands:
//!
//! * `rasa generate <spec.json|preset> <out.json>` — generate a synthetic
//!   cluster (presets: `tiny`, `s1`..`s4`) and save it;
//! * `rasa optimize <problem.json> [--timeout <secs>] [--placement <out.json>]`
//!   — run the pipeline and print the schedule summary;
//! * `rasa migrate <problem.json> <from.json> <to.json>` — compute and
//!   print the migration path between two placements;
//! * `rasa stats <problem.json>` — print cluster statistics.
//!
//! All files are the serde-JSON forms of `rasa_model` types.

use rasa_core::{Deadline, MigrateConfig, RasaConfig, RasaPipeline};
use rasa_migrate::{plan_migration, replay_plan};
use rasa_model::{ContainerAssignment, Placement, Problem};
use rasa_trace::{generate, s_clusters, tiny_cluster, ClusterSpec};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("optimize") => cmd_optimize(&args[1..]),
        Some("migrate") => cmd_migrate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        _ => {
            eprintln!(
                "usage: rasa <generate|optimize|migrate|stats> …\n\
                 \n\
                 rasa generate <preset|spec.json> <out.json>   presets: tiny, s1..s4\n\
                 rasa optimize <problem.json> [--timeout <secs>] [--placement <out.json>]\n\
                 rasa migrate <problem.json> <from.json> <to.json>\n\
                 rasa stats <problem.json>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn load_problem(path: &str) -> Result<Problem, Box<dyn std::error::Error>> {
    Ok(serde_json::from_str(&std::fs::read_to_string(path)?)?)
}

fn cmd_generate(args: &[String]) -> CliResult {
    let [preset, out] = args else {
        return Err("usage: rasa generate <preset|spec.json> <out.json>".into());
    };
    let spec: ClusterSpec = match preset.as_str() {
        "tiny" => tiny_cluster(42),
        "s1" => s_clusters().remove(0),
        "s2" => s_clusters().remove(1),
        "s3" => s_clusters().remove(2),
        "s4" => s_clusters().remove(3),
        path => {
            // specs are not serde types (they hold defaults); accept a
            // problem JSON instead and copy it through
            let problem = load_problem(path)?;
            std::fs::write(out, serde_json::to_string(&problem)?)?;
            println!("copied problem with {} services", problem.num_services());
            return Ok(());
        }
    };
    let problem = generate(&spec);
    std::fs::write(out, serde_json::to_string(&problem)?)?;
    let st = problem.stats();
    println!(
        "generated {}: {} services / {} containers / {} machines / {} edges → {}",
        spec.name, st.services, st.containers, st.machines, st.edges, out
    );
    Ok(())
}

fn cmd_optimize(args: &[String]) -> CliResult {
    let Some(path) = args.first() else {
        return Err(
            "usage: rasa optimize <problem.json> [--timeout <secs>] [--placement <out.json>]"
                .into(),
        );
    };
    let mut timeout: Option<u64> = None;
    let mut placement_out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                timeout = Some(args.get(i + 1).ok_or("--timeout needs a value")?.parse()?);
                i += 2;
            }
            "--placement" => {
                placement_out = Some(args.get(i + 1).ok_or("--placement needs a path")?.clone());
                i += 2;
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let problem = load_problem(path)?;
    let deadline = match timeout {
        Some(secs) => Deadline::after(Duration::from_secs(secs)),
        None => Deadline::none(),
    };
    let pipeline = RasaPipeline::new(RasaConfig::default());
    let run = pipeline.optimize(&problem, None, deadline);
    println!(
        "gained affinity: {:.2} of {:.2} total ({:.1}% localized) in {:.2}s",
        run.outcome.gained_affinity,
        problem.total_affinity(),
        100.0 * run.outcome.normalized_gained_affinity,
        run.outcome.elapsed.as_secs_f64()
    );
    println!(
        "partition: {} subproblems ({} masters, α = {:.4}), loss {:.2}",
        run.subproblems.len(),
        run.partition.masters,
        run.partition.alpha,
        run.partition_loss
    );
    for (i, sub) in run.subproblems.iter().enumerate() {
        println!(
            "  #{i}: {} services / {} machines → {:?} (gained {:.2}{})",
            sub.services,
            sub.machines,
            sub.algorithm,
            sub.gained_affinity,
            if sub.completed { "" } else { ", timed out" }
        );
    }
    if let Some(out) = placement_out {
        std::fs::write(&out, serde_json::to_string(&run.outcome.placement)?)?;
        println!("placement written to {out}");
    }
    Ok(())
}

fn cmd_migrate(args: &[String]) -> CliResult {
    let [problem_path, from_path, to_path] = args else {
        return Err("usage: rasa migrate <problem.json> <from.json> <to.json>".into());
    };
    let problem = load_problem(problem_path)?;
    let from_placement: Placement = serde_json::from_str(&std::fs::read_to_string(from_path)?)?;
    let to_placement: Placement = serde_json::from_str(&std::fs::read_to_string(to_path)?)?;
    let from = ContainerAssignment::materialize(&problem, &from_placement);
    let config = MigrateConfig::default();
    let plan = plan_migration(&problem, &from, &to_placement, &config)?;
    replay_plan(
        &problem,
        &from,
        &to_placement,
        &plan,
        config.min_alive_fraction,
    )?;
    println!(
        "migration: {} moves across {} sequential command sets (verified)",
        plan.total_moves(),
        plan.steps.len()
    );
    for (i, step) in plan.steps.iter().enumerate() {
        println!("step {i}:");
        for (c, m) in &step.deletes {
            println!("  (delete, {c}, {m})");
        }
        for (c, m) in &step.creates {
            println!("  (create, {c}, {m})");
        }
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let Some(path) = args.first() else {
        return Err("usage: rasa stats <problem.json>".into());
    };
    let problem = load_problem(path)?;
    let st = problem.stats();
    println!("services:       {}", st.services);
    println!("containers:     {}", st.containers);
    println!("machines:       {}", st.machines);
    println!("machine SKUs:   {}", st.machine_groups);
    println!("affinity edges: {}", st.edges);
    println!("total affinity: {:.2}", st.total_affinity);
    let graph = rasa_graph::AffinityGraph::from_problem(&problem);
    let mut totals: Vec<f64> = graph
        .all_total_affinities()
        .into_iter()
        .filter(|&t| t > 0.0)
        .collect();
    totals.sort_by(|a, b| b.partial_cmp(a).unwrap());
    if totals.len() >= 10 {
        let head: f64 = totals.iter().take(totals.len() / 10).sum();
        let all: f64 = totals.iter().sum();
        println!(
            "affinity skew:  top 10% of services carry {:.1}% of affinity",
            100.0 * head / all
        );
    }
    Ok(())
}
