//! Delta-driven re-solve sessions: the reusable library entry points the
//! long-running allocation daemon (`rasa-serve`) is built on.
//!
//! A [`AllocationSession`] owns one tenant's view of the world: the current
//! (admitted) [`Problem`], a cross-round [`SolveCache`] for warm re-solves,
//! and the last *certified* placement. Clients feed it full snapshots
//! ([`AllocationSession::apply_snapshot`]) or incremental deltas
//! ([`AllocationSession::apply_delta`]), then ask for a re-solve
//! ([`AllocationSession::resolve`]). Every inbound problem passes the
//! `ProblemValidator` admission gate (Gate 1), and nothing is ever published
//! without passing [`certify_placement`] (Gate 2): a round whose merged
//! placement fails certification leaves the previously published placement
//! untouched and returns [`SessionError::Uncertified`].

use crate::certify::{certify_placement, CertificationFailure};
use crate::pipeline::{RasaConfig, RasaPipeline, RasaRun};
use crate::selector_choice::SelectorChoice;
use crate::solve_cache::SolveCache;
use rand::{rngs::StdRng, SeedableRng};
use rasa_select::{retrain_from_samples, RegretReport};
use rasa_lp::Deadline;
use rasa_model::{AdmissionReport, AffinityEdge, Placement, Problem, ProblemValidator, ServiceId};
use rasa_partition::{compute_delta, partition_with_strategy};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// One affinity-edge weight change: upsert the `a`–`b` edge to `weight`,
/// or remove it when `weight <= 0` (the paper's telemetry loop re-measures
/// pairwise traffic each round; weights dropping to zero mean the pair
/// stopped talking).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EdgeUpdate {
    /// One endpoint (dense service index).
    pub a: u32,
    /// The other endpoint (dense service index).
    pub b: u32,
    /// New traffic weight; `<= 0` removes the edge.
    pub weight: f64,
}

/// Replica-count change for one service (SLA scaling event).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ReplicaUpdate {
    /// Dense service index.
    pub service: u32,
    /// New required replica count `d_s`.
    pub replicas: u32,
}

/// An incremental change to a tenant's cluster snapshot. Deltas are the
/// normal steady-state input: re-measured affinity weights and replica
/// scaling, small against a large standing problem, which is exactly the
/// regime where fingerprint-based cache replay makes re-solves warm.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SnapshotDelta {
    /// Affinity-edge upserts/removals.
    pub edge_updates: Vec<EdgeUpdate>,
    /// Replica-count changes.
    pub replica_updates: Vec<ReplicaUpdate>,
}

impl SnapshotDelta {
    /// `true` when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.edge_updates.is_empty() && self.replica_updates.is_empty()
    }
}

/// Why a session operation was refused. Structural refusals
/// ([`SessionError::UnknownService`], …) are client errors — the session's
/// state is unchanged; [`SessionError::Uncertified`] means the solve ran
/// but its result was blocked at the publish gate.
#[derive(Debug)]
pub enum SessionError {
    /// No snapshot has been applied yet; deltas and re-solves need one.
    NoSnapshot,
    /// A delta referenced a service index outside the current snapshot.
    UnknownService {
        /// The out-of-range index.
        service: u32,
    },
    /// A delta tried to create a self-affinity edge (`a == b`).
    SelfEdge {
        /// The offending service index.
        service: u32,
    },
    /// A delta carried a NaN/infinite edge weight.
    NonFiniteWeight {
        /// One endpoint of the offending edge.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// The round's merged placement failed certification and was not
    /// published; the last certified placement is still in effect.
    Uncertified(CertificationFailure),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::NoSnapshot => write!(f, "no snapshot applied yet"),
            SessionError::UnknownService { service } => {
                write!(f, "delta references unknown service index {service}")
            }
            SessionError::SelfEdge { service } => {
                write!(f, "delta creates a self-affinity edge on service {service}")
            }
            SessionError::NonFiniteWeight { a, b } => {
                write!(f, "delta carries a non-finite weight on edge {a}-{b}")
            }
            SessionError::Uncertified(failure) => {
                write!(f, "round blocked at publish gate: {failure}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl SessionError {
    /// `true` for refusals caused by the request itself (the caller should
    /// fix the input), `false` for solve-side failures worth retrying.
    pub fn is_client_error(&self) -> bool {
        !matches!(self, SessionError::Uncertified(_))
    }
}

/// What an incoming delta implies for the next re-solve, computed by
/// partitioning the updated problem and diffing subproblem fingerprints
/// against the warm cache ([`compute_delta`]).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct DeltaPlan {
    /// Subproblems whose fingerprint matches a cached solve: replayed.
    pub unchanged: usize,
    /// Subproblems with no cached counterpart: must be re-solved.
    pub dirty: usize,
    /// Cached entries no current subproblem references: stale.
    pub invalidated: usize,
}

/// Apply `delta` to `base` without touching any session state: the pure
/// mutation step shared by [`AllocationSession::apply_delta`] and journal
/// replay (`rasa-serve`'s write-ahead log re-applies journaled deltas
/// through exactly this function on recovery). Structural errors reject
/// the whole delta atomically; the admission gate is the caller's job.
pub fn apply_delta_to_problem(
    base: &Problem,
    delta: &SnapshotDelta,
) -> Result<Problem, SessionError> {
    let num_services = base.num_services() as u32;
    for up in &delta.edge_updates {
        if up.a == up.b {
            return Err(SessionError::SelfEdge { service: up.a });
        }
        if !up.weight.is_finite() {
            return Err(SessionError::NonFiniteWeight { a: up.a, b: up.b });
        }
        for id in [up.a, up.b] {
            if id >= num_services {
                return Err(SessionError::UnknownService { service: id });
            }
        }
    }
    for up in &delta.replica_updates {
        if up.service >= num_services {
            return Err(SessionError::UnknownService { service: up.service });
        }
    }

    let mut next = base.clone();
    for up in &delta.edge_updates {
        let (a, b) = (ServiceId(up.a), ServiceId(up.b));
        let existing = next
            .affinity_edges
            .iter()
            .position(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a));
        match (existing, up.weight > 0.0) {
            (Some(i), true) => next.affinity_edges[i].weight = up.weight,
            (Some(i), false) => {
                next.affinity_edges.swap_remove(i);
            }
            (None, true) => next.affinity_edges.push(AffinityEdge {
                a,
                b,
                weight: up.weight,
            }),
            (None, false) => {}
        }
    }
    for up in &delta.replica_updates {
        next.services[up.service as usize].replicas = up.replicas;
    }
    Ok(next)
}

/// The last placement this session published, with provenance. Only
/// certified placements ever land here.
#[derive(Clone, Debug)]
pub struct PublishedPlacement {
    /// The certified container-to-machine mapping.
    pub placement: Placement,
    /// Independently recomputed gained affinity (Gate 2's value, not the
    /// solver's claim).
    pub objective: f64,
    /// Gained affinity normalized by the problem's total affinity.
    pub normalized: f64,
    /// 1-based publish sequence number within this session.
    pub round: u64,
    /// The snapshot generation this placement was solved against (see
    /// [`AllocationSession::generation`]); lagging behind the current
    /// generation means the placement is *stale*.
    pub generation: u64,
}

/// The outcome of one successful [`AllocationSession::resolve`] round.
#[derive(Debug)]
pub struct SessionRound {
    /// 1-based publish sequence number.
    pub round: u64,
    /// Certified (recomputed) gained affinity of the published placement.
    pub objective: f64,
    /// Normalized gained affinity.
    pub normalized: f64,
    /// `true` if any subproblem fell down the fallback ladder — the
    /// placement is still certified, but the primary algorithm did not
    /// finish everywhere.
    pub degraded: bool,
    /// The full pipeline run report (cache tallies, admission report,
    /// per-subproblem status).
    pub run: RasaRun,
    /// Request id ambient when the round was solved (`None` outside any
    /// request context — e.g. batch or bench callers).
    pub request_id: Option<String>,
}

/// Minimum accumulated [`SelectionSample`](rasa_select::SelectionSample)s
/// before [`AllocationSession::retrain_selector`] will refit — below this
/// a ridge fit is noise and the session keeps its current selector.
pub const MIN_RETRAIN_SAMPLES: usize = 16;

/// Session state reloaded from a durability journal, about to be pushed
/// back through both trust gates by [`AllocationSession::restore`].
/// Everything here is *untrusted* until restore succeeds — the journal
/// bytes survived a crash and possibly corruption.
#[derive(Clone, Debug)]
pub struct RestoredState {
    /// The admitted problem as of the last journaled snapshot/delta.
    pub problem: Problem,
    /// The last certified placement the journal recorded, if any.
    pub published: Option<RestoredPlacement>,
    /// Publish rounds completed before the crash.
    pub rounds: u64,
    /// Snapshot generation as of the last journaled mutation.
    pub generation: u64,
}

/// A journaled placement with the provenance needed to re-certify it.
#[derive(Clone, Debug)]
pub struct RestoredPlacement {
    /// The placement as journaled.
    pub placement: Placement,
    /// The objective the journal claims Gate 2 recomputed at publish time
    /// (re-checked against a fresh recomputation on restore).
    pub claimed_objective: f64,
    /// Normalized gained affinity as journaled.
    pub normalized: f64,
    /// Publish round number as journaled.
    pub round: u64,
    /// Snapshot generation this placement was solved against.
    pub generation: u64,
}

/// Why [`AllocationSession::restore`] refused journaled state. Every
/// variant means the journal cannot be trusted for this tenant — callers
/// quarantine instead of serving the state.
#[derive(Debug)]
pub enum RestoreError {
    /// The journaled problem did not pass the admission gate cleanly.
    /// Journaled problems were admitted (and repaired) before being
    /// written, so any dirt found on re-admission is corruption.
    AdmissionDirty {
        /// Human-readable summary of what admission flagged.
        detail: String,
    },
    /// The journaled placement failed independent re-certification
    /// against the problem generation it claims to have been solved for.
    Uncertified(CertificationFailure),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::AdmissionDirty { detail } => {
                write!(f, "journaled problem failed re-admission: {detail}")
            }
            RestoreError::Uncertified(failure) => {
                write!(f, "journaled placement failed re-certification: {failure}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// The result of a successful [`AllocationSession::restore`].
pub struct Restored {
    /// The rebuilt session (cold cache — warm subsolves are not
    /// journaled; the first post-restart round re-solves and re-warms).
    pub session: AllocationSession,
    /// The independently recomputed objective of the re-certified
    /// placement (`None` when the journal carried no placement or a stale
    /// one was dropped).
    pub recertified_objective: Option<f64>,
    /// `true` when a journaled placement that *predates* the journal's
    /// final problem generation failed re-certification against that
    /// newer problem and was dropped. Not corruption — the placement was
    /// already stale when the process died; the session restores without
    /// a published placement and the next round re-solves.
    pub stale_placement_dropped: bool,
}

/// One tenant's delta-driven re-solve state: admitted problem, warm-solve
/// cache, and last certified placement. See the module docs for the
/// trust-gate contract.
pub struct AllocationSession {
    pipeline: RasaPipeline,
    cache: SolveCache,
    problem: Option<Problem>,
    published: Option<PublishedPlacement>,
    rounds: u64,
    generation: u64,
}

impl AllocationSession {
    /// A fresh session (no snapshot, cold cache) for the given pipeline
    /// configuration.
    pub fn new(config: RasaConfig) -> Self {
        AllocationSession {
            pipeline: RasaPipeline::new(config),
            cache: SolveCache::new(),
            problem: None,
            published: None,
            rounds: 0,
            generation: 0,
        }
    }

    /// Rebuild a session from journaled state, re-running both trust
    /// gates: the problem re-passes Gate 1 admission (any dirt is
    /// corruption — journaled problems were admitted before being
    /// written) and the placement re-passes Gate 2
    /// [`certify_placement`] with its claimed objective cross-checked
    /// against a fresh recomputation. A placement older than the
    /// journal's final generation that no longer certifies is dropped as
    /// stale rather than treated as corruption (see
    /// [`Restored::stale_placement_dropped`]); a same-generation
    /// certification failure is corruption and refuses the whole restore.
    pub fn restore(config: RasaConfig, state: RestoredState) -> Result<Restored, RestoreError> {
        let (_, report) = ProblemValidator::new().admit(&state.problem);
        if !report.is_clean() {
            return Err(RestoreError::AdmissionDirty {
                detail: format!(
                    "{} issues, {} quarantined services, {} quarantined machines",
                    report.issues.len(),
                    report.quarantined_services.len(),
                    report.quarantined_machines.len(),
                ),
            });
        }

        let mut session = AllocationSession::new(config);
        session.rounds = state.rounds;
        session.generation = state.generation;
        let mut recertified_objective = None;
        let mut stale_placement_dropped = false;
        if let Some(restored) = state.published {
            match certify_placement(
                &state.problem,
                &restored.placement,
                restored.claimed_objective,
                false,
                "service.restore",
            ) {
                Ok(objective) => {
                    recertified_objective = Some(objective);
                    session.published = Some(PublishedPlacement {
                        placement: restored.placement,
                        objective,
                        normalized: restored.normalized,
                        round: restored.round,
                        generation: restored.generation,
                    });
                }
                Err(failure) if restored.generation < state.generation => {
                    // The placement predates the final journaled problem;
                    // deltas applied after the last publish may have
                    // legitimately invalidated it (replica scaling, edge
                    // churn). Losing a stale placement over a crash is
                    // the documented cost — losing *certified currency*
                    // never is.
                    let _ = failure;
                    stale_placement_dropped = true;
                }
                Err(failure) => return Err(RestoreError::Uncertified(failure)),
            }
        }
        session.problem = Some(state.problem);
        Ok(Restored {
            session,
            recertified_objective,
            stale_placement_dropped,
        })
    }

    /// The pipeline configuration this session solves with.
    pub fn config(&self) -> &RasaConfig {
        &self.pipeline.config
    }

    /// The current admitted problem, if a snapshot has been applied.
    pub fn problem(&self) -> Option<&Problem> {
        self.problem.as_ref()
    }

    /// The last certified placement published by this session.
    pub fn published(&self) -> Option<&PublishedPlacement> {
        self.published.as_ref()
    }

    /// Completed publish rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Monotone snapshot generation: bumped by every accepted snapshot or
    /// delta. A published placement whose `generation` lags this value was
    /// solved against an older world and should be marked stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// `true` when the published placement predates the current snapshot
    /// generation (or nothing is published at all).
    pub fn is_stale(&self) -> bool {
        match &self.published {
            Some(p) => p.generation < self.generation,
            None => true,
        }
    }

    /// Number of warm subproblem solves currently cached.
    pub fn cached_subsolves(&self) -> usize {
        self.cache.len()
    }

    /// Replace the session's world with a full snapshot. The problem runs
    /// through the admission gate here, at the trust boundary: the session
    /// stores the repaired copy, and the report says what was quarantined.
    pub fn apply_snapshot(&mut self, problem: &Problem) -> AdmissionReport {
        let (repaired, report) = ProblemValidator::new().admit(problem);
        self.problem = Some(repaired.unwrap_or_else(|| problem.clone()));
        self.generation += 1;
        report
    }

    /// Apply an incremental delta to the current snapshot. Structural
    /// errors (unknown service, self-edge, non-finite weight) reject the
    /// whole delta atomically — the session's problem is unchanged. An
    /// accepted delta re-runs the admission gate on the mutated problem.
    pub fn apply_delta(&mut self, delta: &SnapshotDelta) -> Result<AdmissionReport, SessionError> {
        let base = self.problem.as_ref().ok_or(SessionError::NoSnapshot)?;
        let next = apply_delta_to_problem(base, delta)?;
        let (repaired, report) = ProblemValidator::new().admit(&next);
        self.problem = Some(repaired.unwrap_or(next));
        self.generation += 1;
        Ok(report)
    }

    /// What the next re-solve will cost: partition the current problem and
    /// diff subproblem fingerprints against the warm cache. Pure planning —
    /// no solver runs and no session state changes.
    pub fn delta_plan(&self) -> Result<DeltaPlan, SessionError> {
        let problem = self.problem.as_ref().ok_or(SessionError::NoSnapshot)?;
        let config = &self.pipeline.config;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let outcome = partition_with_strategy(
            problem,
            // No incumbent, to mirror `resolve`: see the comment there.
            None,
            config.strategy,
            &config.partition,
            &mut rng,
        );
        let cached: HashSet<u64> = self.cache.fingerprints().into_iter().collect();
        let delta = compute_delta(&outcome.subproblems, &cached);
        Ok(DeltaPlan {
            unchanged: delta.unchanged.len(),
            dirty: delta.dirty.len(),
            invalidated: delta.invalidated.len(),
        })
    }

    /// Refit the selector from the session's accumulated online sample
    /// stream ([`RasaConfig::sample_log`], fed by every fresh subproblem
    /// solve). Returns `None` (selector unchanged) when fewer than
    /// [`MIN_RETRAIN_SAMPLES`] samples have accumulated; otherwise swaps
    /// the pipeline's selector for the freshly fitted
    /// [`SelectorChoice::Portfolio`] and returns the holdout
    /// [`RegretReport`].
    ///
    /// Retraining only changes *future routing decisions* — every placement
    /// still passes the `service.publish` certification gate in
    /// [`resolve`](Self::resolve), so a bad refit can cost quality, never
    /// correctness.
    pub fn retrain_selector(&mut self) -> Option<RegretReport> {
        let samples = self.pipeline.config.sample_log.snapshot();
        if samples.len() < MIN_RETRAIN_SAMPLES {
            return None;
        }
        // vary the holdout split with the round counter so repeated
        // retrains don't always withhold the same tail
        let seed = self.pipeline.config.seed.wrapping_add(self.rounds);
        let (selector, report) = retrain_from_samples(&samples, 0.25, 1e-3, seed);
        self.pipeline.config.selector = SelectorChoice::Portfolio(selector);
        rasa_obs::global().inc("select.retrains");
        Some(report)
    }

    /// Re-solve the current problem under `deadline` and publish the result
    /// if — and only if — it certifies. Warm-starts from the session
    /// [`SolveCache`], and on certification failure returns
    /// [`SessionError::Uncertified`] with the previously published placement
    /// left in effect.
    ///
    /// The round deliberately runs with *no* incumbent placement. Subproblem
    /// fingerprints hash the incumbent-shrunk capacities, so partitioning
    /// around the last publish would change every fingerprint on every
    /// round and defeat the delta-driven cache — and an incumbent surviving
    /// a full snapshot replacement could be indexed out of bounds against
    /// the new service/machine tables. Cross-round continuity comes from
    /// the cache, not the incumbent.
    pub fn resolve(&mut self, deadline: Deadline) -> Result<SessionRound, SessionError> {
        let (run, objective) = {
            let problem = self.problem.as_ref().ok_or(SessionError::NoSnapshot)?;
            let run = self
                .pipeline
                .optimize_with_cache(problem, None, deadline, Some(&self.cache));
            // Gate 2 at the publish boundary: the merged, completed
            // placement is re-certified as a whole before anyone sees it.
            let objective = certify_placement(
                problem,
                &run.outcome.placement,
                run.outcome.gained_affinity,
                false,
                "service.publish",
            )
            .map_err(SessionError::Uncertified)?;
            (run, objective)
        };
        self.rounds += 1;
        let round = SessionRound {
            round: self.rounds,
            objective,
            normalized: run.outcome.normalized_gained_affinity,
            degraded: run.is_degraded(),
            run,
            request_id: rasa_obs::flight::current_request_context().map(|c| c.request_id),
        };
        self.published = Some(PublishedPlacement {
            placement: round.run.outcome.placement.clone(),
            objective,
            normalized: round.normalized,
            round: self.rounds,
            generation: self.generation,
        });
        Ok(round)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rasa_trace::{generate, specs::tiny_cluster};
    use std::time::Duration;

    fn session() -> AllocationSession {
        let mut config = RasaConfig::default();
        config.parallel = false;
        AllocationSession::new(config)
    }

    #[test]
    fn snapshot_then_resolve_publishes_certified() {
        let mut s = session();
        assert!(matches!(
            s.resolve(Deadline::none()),
            Err(SessionError::NoSnapshot)
        ));
        let p = generate(&tiny_cluster(7));
        let report = s.apply_snapshot(&p);
        assert!(report.is_clean());
        let round = s.resolve(Deadline::after(Duration::from_secs(5))).unwrap();
        assert_eq!(round.round, 1);
        assert!(round.objective >= 0.0);
        assert!(s.published().is_some());
        assert!(!s.is_stale(), "fresh publish matches the generation");
    }

    #[test]
    fn delta_mutates_edges_and_marks_stale() {
        let mut s = session();
        let p = generate(&tiny_cluster(7));
        s.apply_snapshot(&p);
        s.resolve(Deadline::after(Duration::from_secs(5))).unwrap();
        let before = s.problem().unwrap().affinity_edges.len();

        // remove one existing edge, upsert a fresh pair
        let existing = s.problem().unwrap().affinity_edges[0];
        let delta = SnapshotDelta {
            edge_updates: vec![
                EdgeUpdate {
                    a: existing.a.0,
                    b: existing.b.0,
                    weight: 0.0,
                },
                EdgeUpdate {
                    a: 0,
                    b: (s.problem().unwrap().num_services() - 1) as u32,
                    weight: 3.5,
                },
            ],
            replica_updates: vec![],
        };
        s.apply_delta(&delta).unwrap();
        assert!(s.is_stale(), "delta bumped the generation past the publish");
        let edges = &s.problem().unwrap().affinity_edges;
        assert!(edges.len() <= before + 1);
        assert!(edges
            .iter()
            .any(|e| (e.weight - 3.5).abs() < 1e-12 || e.weight == 3.5));
        s.resolve(Deadline::after(Duration::from_secs(5))).unwrap();
        assert!(!s.is_stale());
    }

    #[test]
    fn snapshot_replacement_with_smaller_tables_resolves_cold_not_oob() {
        // Regression: the published incumbent is indexed by the *old*
        // problem's service/machine tables. Re-snapshotting with a smaller
        // cluster must drop it (cold re-solve), not read out of bounds.
        let mut s = session();
        let mut big = tiny_cluster(11);
        big.services = 12;
        big.target_containers = 48;
        big.machines = 6;
        s.apply_snapshot(&generate(&big));
        s.resolve(Deadline::after(Duration::from_secs(5))).unwrap();

        let mut small = tiny_cluster(13);
        small.services = 8;
        small.target_containers = 32;
        small.machines = 4;
        s.apply_snapshot(&generate(&small));
        let round = s.resolve(Deadline::after(Duration::from_secs(5))).unwrap();
        assert_eq!(round.round, 2);
        assert_eq!(
            s.published().unwrap().placement.num_services(),
            8,
            "publish reflects the replacement snapshot"
        );
    }

    #[test]
    fn structural_delta_errors_leave_state_untouched() {
        let mut s = session();
        let p = generate(&tiny_cluster(5));
        s.apply_snapshot(&p);
        let edges_before = s.problem().unwrap().affinity_edges.len();
        let gen_before = s.generation();

        let bad = SnapshotDelta {
            edge_updates: vec![EdgeUpdate {
                a: 0,
                b: 10_000,
                weight: 1.0,
            }],
            replica_updates: vec![],
        };
        assert!(matches!(
            s.apply_delta(&bad),
            Err(SessionError::UnknownService { service: 10_000 })
        ));
        let self_edge = SnapshotDelta {
            edge_updates: vec![EdgeUpdate {
                a: 2,
                b: 2,
                weight: 1.0,
            }],
            replica_updates: vec![],
        };
        assert!(matches!(
            s.apply_delta(&self_edge),
            Err(SessionError::SelfEdge { service: 2 })
        ));
        let nan = SnapshotDelta {
            edge_updates: vec![EdgeUpdate {
                a: 0,
                b: 1,
                weight: f64::NAN,
            }],
            replica_updates: vec![],
        };
        assert!(matches!(
            s.apply_delta(&nan),
            Err(SessionError::NonFiniteWeight { .. })
        ));
        assert_eq!(s.problem().unwrap().affinity_edges.len(), edges_before);
        assert_eq!(s.generation(), gen_before);
    }

    #[test]
    fn unchanged_world_replays_from_cache() {
        let mut s = session();
        let p = generate(&tiny_cluster(7));
        s.apply_snapshot(&p);
        let cold = s.resolve(Deadline::after(Duration::from_secs(5))).unwrap();
        let cold_stats = cold.run.cache.unwrap();
        assert_eq!(cold_stats.hits, 0);

        let plan = s.delta_plan().unwrap();
        assert_eq!(plan.dirty, 0, "identical world has no dirty subproblems");

        let warm = s.resolve(Deadline::after(Duration::from_secs(5))).unwrap();
        let warm_stats = warm.run.cache.unwrap();
        assert!(warm_stats.hits > 0, "identical re-solve replays the cache");
        assert_eq!(warm_stats.misses, 0);
    }

    #[test]
    fn corrupt_snapshot_is_repaired_at_the_gate() {
        let mut s = session();
        let mut p = generate(&tiny_cluster(6));
        p.affinity_edges[0].weight = f64::NAN;
        let report = s.apply_snapshot(&p);
        assert!(!report.is_clean());
        assert!(s
            .problem()
            .unwrap()
            .affinity_edges
            .iter()
            .all(|e| e.weight.is_finite()));
        s.resolve(Deadline::after(Duration::from_secs(5))).unwrap();
    }

    #[test]
    fn retrain_mid_session_never_publishes_uncertified() {
        use rasa_select::{portfolio_features, PoolAlgorithm, SelectionSample};
        let mut config = RasaConfig::default();
        config.parallel = false;
        let log = config.sample_log.clone();
        let mut s = AllocationSession::new(config);
        let p = generate(&tiny_cluster(7));
        s.apply_snapshot(&p);
        s.resolve(Deadline::after(Duration::from_secs(5))).unwrap();

        // below the sample floor the selector is left untouched
        assert!(log.len() < MIN_RETRAIN_SAMPLES || !log.is_empty());
        if log.len() < MIN_RETRAIN_SAMPLES {
            assert!(s.retrain_selector().is_none());
        }

        // top the shared stream up past the floor (full-feedback samples,
        // as the bootstrap labelling path would produce)
        let features = portfolio_features(&p);
        while log.len() < MIN_RETRAIN_SAMPLES {
            for &alg in &PoolAlgorithm::ALL {
                log.record(SelectionSample {
                    features: features.clone(),
                    choice: alg,
                    quality: match alg {
                        PoolAlgorithm::Mip => 0.9,
                        PoolAlgorithm::Cg => 0.8,
                        PoolAlgorithm::Pop => 0.5,
                        PoolAlgorithm::Greedy => 0.2,
                    },
                    latency_secs: 0.05,
                    degraded: false,
                });
            }
        }
        let report = s.retrain_selector().expect("enough samples to refit");
        assert!(report.train_samples > 0);
        assert_eq!(s.config().selector.label(), "PORTFOLIO");

        // the retrained session keeps publishing only certified placements:
        // every successful resolve passed the service.publish gate, and a
        // changed world after the retrain still certifies
        let delta = SnapshotDelta {
            edge_updates: vec![EdgeUpdate {
                a: 0,
                b: 1,
                weight: 42.0,
            }],
            replica_updates: vec![],
        };
        s.apply_delta(&delta).unwrap();
        let round = s.resolve(Deadline::after(Duration::from_secs(5))).unwrap();
        assert!(round.objective >= 0.0);
        assert!(!s.is_stale());
    }

    #[test]
    fn delta_plan_flags_dirty_after_mutation() {
        let mut s = session();
        let p = generate(&tiny_cluster(7));
        s.apply_snapshot(&p);
        s.resolve(Deadline::after(Duration::from_secs(5))).unwrap();
        let delta = SnapshotDelta {
            edge_updates: vec![EdgeUpdate {
                a: 0,
                b: 1,
                weight: 99.0,
            }],
            replica_updates: vec![],
        };
        s.apply_delta(&delta).unwrap();
        let plan = s.delta_plan().unwrap();
        assert!(
            plan.dirty > 0 || plan.invalidated > 0,
            "mutating an edge must dirty at least one subproblem: {plan:?}"
        );
    }
}
