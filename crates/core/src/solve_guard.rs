//! Fault-isolated solving: the layer between the pipeline and the
//! algorithm pool that guarantees one misbehaving subproblem solve —
//! a panic, an infeasible result, an exhausted deadline — degrades that
//! subproblem instead of aborting the whole optimization run.
//!
//! Every per-subproblem solve runs under [`std::panic::catch_unwind`] and
//! its result is checked against [`fn@rasa_model::validate`] before it is
//! accepted. On failure the guard walks a *fallback ladder*:
//!
//! 1. the selector's **primary** pool member (MIP-based or column
//!    generation),
//! 2. the **other** pool member(s), tried in order while budget remains,
//! 3. **greedy completion** — the affinity-aware first-fit pass standing
//!    in for the cluster's default scheduler, which always produces a
//!    feasible (possibly partial) placement.
//!
//! The rung that produced the final result is recorded in
//! [`SolveStatus`], which the pipeline copies into each
//! [`SubproblemReport`](crate::SubproblemReport) so callers can see
//! exactly how degraded a run was, and why.

use crate::certify::certify_placement;
use rasa_lp::Deadline;
use rasa_model::{validate, Placement, Problem, RasaError};
use rasa_obs::flight::{self, TraceEvent};
use rasa_select::PoolAlgorithm;
use rasa_solver::{complete_placement, ScheduleOutcome, Scheduler};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// How a guarded subproblem solve ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveStatus {
    /// The primary algorithm ran to completion and its result validated.
    Ok,
    /// The deadline expired: the result is the best feasible placement
    /// available when the budget ran out (possibly partial, possibly from
    /// greedy completion alone).
    DeadlineExpired,
    /// The primary algorithm panicked and no fallback pool member produced
    /// a valid result either; greedy completion supplied the placement.
    Panicked,
    /// The primary algorithm returned a constraint-violating placement
    /// (discarded) and no fallback produced a valid one; greedy completion
    /// supplied the placement.
    Infeasible,
    /// The primary algorithm failed but this pool member produced the
    /// result.
    FellBackTo(PoolAlgorithm),
}

impl SolveStatus {
    /// `true` for every status except [`SolveStatus::Ok`].
    pub fn is_degraded(&self) -> bool {
        !matches!(self, SolveStatus::Ok)
    }
}

/// A [`ScheduleOutcome`] annotated with how it was obtained.
#[derive(Clone, Debug)]
pub struct GuardedOutcome {
    /// The (always constraint-feasible) schedule.
    pub outcome: ScheduleOutcome,
    /// Which ladder rung produced it.
    pub status: SolveStatus,
    /// The primary failure that triggered the ladder, if any.
    pub error: Option<RasaError>,
}

impl GuardedOutcome {
    /// The outcome recorded for a subproblem whose parallel-solve slot was
    /// lost (its worker thread died before storing a result): an empty but
    /// feasible placement with `completed = false`, so the pipeline's
    /// global completion pass can still repair the schedule.
    pub fn lost_slot(index: usize, problem: &Problem) -> GuardedOutcome {
        GuardedOutcome {
            outcome: ScheduleOutcome::evaluate(
                problem,
                Placement::empty_for(problem),
                std::time::Duration::ZERO,
                false,
            ),
            status: SolveStatus::Panicked,
            error: Some(RasaError::SolvePanicked {
                subproblem: index,
                message: "worker thread died before storing a result".into(),
            }),
        }
    }
}

/// Deterministic fault injection for tests and chaos drills, threaded
/// through [`RasaConfig`](crate::RasaConfig). Faults replace the *primary*
/// solver only, so they exercise the fallback ladder rather than disabling
/// the run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum FaultInjection {
    /// No injected faults (the default).
    #[default]
    None,
    /// The primary solver panics for subproblems with these indices.
    PanicOnSubproblems(Vec<usize>),
    /// The primary solver panics for every subproblem.
    PanicAlways,
    /// These subproblems are handed an already-expired deadline
    /// (deadline starvation).
    StarveSubproblems(Vec<usize>),
}

impl FaultInjection {
    /// Should the primary solver of subproblem `index` panic?
    pub fn panics(&self, index: usize) -> bool {
        match self {
            FaultInjection::PanicAlways => true,
            FaultInjection::PanicOnSubproblems(set) => set.contains(&index),
            _ => false,
        }
    }

    /// Should subproblem `index` see an expired deadline?
    pub fn starves(&self, index: usize) -> bool {
        matches!(self, FaultInjection::StarveSubproblems(set) if set.contains(&index))
    }
}

/// A [`Scheduler`] that always panics — the fault the guard exists to
/// contain. Used by [`FaultInjection`] and exported for tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct PanickingScheduler;

impl Scheduler for PanickingScheduler {
    fn name(&self) -> &'static str {
        "PANIC"
    }

    fn schedule(&self, _problem: &Problem, _deadline: Deadline) -> ScheduleOutcome {
        panic!("injected solver fault");
    }
}

enum Rung {
    Valid(ScheduleOutcome),
    Panicked(String),
    Infeasible,
    /// The placement satisfied the constraints but the solver's claimed
    /// objective failed the independent cross-check.
    Miscertified(String),
}

fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run one scheduler under `catch_unwind` and certify its placement
/// (partial placements are fine; constraint violations and objective
/// mismatches are not — see [`certify_placement`]).
fn run_rung(scheduler: &dyn Scheduler, problem: &Problem, deadline: Deadline) -> Rung {
    let _rung_span = flight::span_with("solve.rung", &[("algorithm", scheduler.name().into())]);
    match catch_unwind(AssertUnwindSafe(|| scheduler.schedule(problem, deadline))) {
        Ok(outcome) => {
            match certify_placement(
                problem,
                &outcome.placement,
                outcome.gained_affinity,
                false,
                scheduler.name(),
            ) {
                Ok(_) => Rung::Valid(outcome),
                Err(failure) if failure.is_objective_mismatch() => {
                    Rung::Miscertified(failure.detail())
                }
                Err(_) => Rung::Infeasible,
            }
        }
        Err(payload) => Rung::Panicked(payload_to_string(payload)),
    }
}

/// Last ladder rung: the greedy completion pass on an empty placement.
/// Completion is capacity-checked container by container, so its result is
/// feasible by construction; the validate call is a belt-and-suspenders
/// guard that falls back to the (trivially feasible) empty placement.
fn completion_outcome(problem: &Problem, start: Instant) -> ScheduleOutcome {
    let mut placement = Placement::empty_for(problem);
    complete_placement(problem, &mut placement);
    if !validate(problem, &placement, false).is_empty() {
        placement = Placement::empty_for(problem);
    }
    ScheduleOutcome::evaluate(problem, placement, start.elapsed(), false)
}

/// Solve `problem` with `primary`, falling back down the ladder on panic
/// or infeasible output. `index` identifies the subproblem in error
/// reports. The returned placement always passes
/// [`validate`](fn@rasa_model::validate) (ignoring SLA completeness).
///
/// Each guarded solve flushes telemetry into the global [`rasa_obs`]
/// registry: a `guard.status.*` tally, the per-subproblem wall time
/// (`guard.subproblem_seconds`), and how far down the fallback ladder the
/// result came from (`guard.ladder_depth`: 0 = primary, `k` = k-th
/// fallback, `fallbacks.len() + 1` = greedy completion floor).
pub fn guarded_schedule(
    index: usize,
    primary: (PoolAlgorithm, &dyn Scheduler),
    fallbacks: &[(PoolAlgorithm, &dyn Scheduler)],
    problem: &Problem,
    deadline: Deadline,
) -> GuardedOutcome {
    let start = Instant::now();
    let mut scope = flight::begin_solve(
        "solve.subproblem",
        &[
            ("sub_id", index.to_string()),
            ("primary", primary.1.name().into()),
            ("services", problem.services.len().to_string()),
        ],
    );
    let g = guarded_schedule_impl(index, primary, fallbacks, problem, deadline);
    scope.set_verdict(
        match g.status {
            SolveStatus::Ok => "ok",
            SolveStatus::DeadlineExpired => "deadline_expired",
            SolveStatus::Panicked => "panicked",
            SolveStatus::Infeasible => "infeasible",
            SolveStatus::FellBackTo(_) => "fell_back",
        },
        g.status.is_degraded(),
    );
    drop(scope);
    let obs = rasa_obs::global();
    if obs.enabled() {
        obs.inc(match g.status {
            SolveStatus::Ok => "guard.status.ok",
            SolveStatus::DeadlineExpired => "guard.status.deadline_expired",
            SolveStatus::Panicked => "guard.status.panicked",
            SolveStatus::Infeasible => "guard.status.infeasible",
            SolveStatus::FellBackTo(_) => "guard.status.fell_back",
        });
        let depth = match g.status {
            // deadline exits keep the primary's (or completion's) result
            // without walking the ladder; count them at the primary rung
            SolveStatus::Ok | SolveStatus::DeadlineExpired => 0,
            SolveStatus::FellBackTo(alg) => fallbacks
                .iter()
                .position(|&(a, _)| a == alg)
                .map_or(1, |p| p + 1),
            SolveStatus::Panicked | SolveStatus::Infeasible => fallbacks.len() + 1,
        };
        obs.record("guard.ladder_depth", depth as f64);
        obs.record_duration("guard.subproblem_seconds", start.elapsed());
    }
    g
}

fn guarded_schedule_impl(
    index: usize,
    primary: (PoolAlgorithm, &dyn Scheduler),
    fallbacks: &[(PoolAlgorithm, &dyn Scheduler)],
    problem: &Problem,
    deadline: Deadline,
) -> GuardedOutcome {
    let start = Instant::now();
    if deadline.expired() {
        // no budget at all: skip the solvers, let completion place what the
        // default scheduler would
        flight::emit(|| {
            TraceEvent::fallback_transition(
                0,
                fallbacks.len() as u64 + 1,
                primary.1.name(),
                "completion",
            )
        });
        return GuardedOutcome {
            outcome: completion_outcome(problem, start),
            status: SolveStatus::DeadlineExpired,
            error: Some(RasaError::DeadlineExpired { subproblem: index }),
        };
    }

    let (status, error) = match run_rung(primary.1, problem, deadline) {
        Rung::Valid(outcome) => {
            // a valid partial result under a live budget means the solver
            // stopped on its deadline slice — keep its best incumbent
            let status = if outcome.completed {
                SolveStatus::Ok
            } else {
                SolveStatus::DeadlineExpired
            };
            let error = (!outcome.completed)
                .then_some(RasaError::DeadlineExpired { subproblem: index });
            return GuardedOutcome {
                outcome,
                status,
                error,
            };
        }
        Rung::Panicked(message) => (
            SolveStatus::Panicked,
            Some(RasaError::SolvePanicked {
                subproblem: index,
                message,
            }),
        ),
        Rung::Infeasible => (
            SolveStatus::Infeasible,
            Some(RasaError::InfeasibleResult { subproblem: index }),
        ),
        Rung::Miscertified(detail) => (
            SolveStatus::Infeasible,
            Some(RasaError::CertificationFailed {
                subproblem: index,
                detail,
            }),
        ),
    };

    // the primary failed: try the other pool members while budget remains
    let mut prev_rung: u64 = 0;
    let mut prev_name = primary.1.name();
    for (k, &(alg, fallback)) in fallbacks.iter().enumerate() {
        if deadline.expired() {
            break;
        }
        let to_rung = k as u64 + 1;
        flight::emit(|| {
            TraceEvent::fallback_transition(prev_rung, to_rung, prev_name, fallback.name())
        });
        prev_rung = to_rung;
        prev_name = fallback.name();
        if let Rung::Valid(mut outcome) = run_rung(fallback, problem, deadline) {
            // degraded run: even a fully-solved fallback is flagged so the
            // merged RasaRun reports completed = false
            outcome.completed = false;
            outcome.elapsed = start.elapsed();
            return GuardedOutcome {
                outcome,
                status: SolveStatus::FellBackTo(alg),
                error,
            };
        }
    }

    // every pool member failed: greedy completion is the floor
    flight::emit(|| {
        TraceEvent::fallback_transition(
            prev_rung,
            fallbacks.len() as u64 + 1,
            prev_name,
            "completion",
        )
    });
    GuardedOutcome {
        outcome: completion_outcome(problem, start),
        status,
        error,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rasa_model::{FeatureMask, MachineId, ProblemBuilder, ResourceVec, ServiceId};
    use rasa_solver::MipBased;
    use std::time::Duration;

    /// A scheduler that returns a placement overflowing machine 0.
    #[derive(Clone, Copy, Debug)]
    struct OverflowingScheduler;

    impl Scheduler for OverflowingScheduler {
        fn name(&self) -> &'static str {
            "OVERFLOW"
        }

        fn schedule(&self, problem: &Problem, _deadline: Deadline) -> ScheduleOutcome {
            let mut placement = Placement::empty_for(problem);
            for svc in &problem.services {
                placement.add(svc.id, MachineId(0), svc.replicas);
            }
            ScheduleOutcome::evaluate(problem, placement, Duration::ZERO, true)
        }
    }

    /// A scheduler whose placement is feasible but whose claimed
    /// objective is inflated — only Gate 2's cross-check can catch it.
    #[derive(Clone, Copy, Debug)]
    struct LyingScheduler;

    impl Scheduler for LyingScheduler {
        fn name(&self) -> &'static str {
            "LIAR"
        }

        fn schedule(&self, problem: &Problem, _deadline: Deadline) -> ScheduleOutcome {
            let mut outcome = ScheduleOutcome::evaluate(
                problem,
                Placement::empty_for(problem),
                Duration::ZERO,
                true,
            );
            outcome.gained_affinity += 100.0;
            outcome
        }
    }

    fn pair_problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(3.0, 3.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        b.build().unwrap()
    }

    fn mip() -> MipBased {
        MipBased::new()
    }

    #[test]
    fn healthy_primary_reports_ok() {
        let p = pair_problem();
        let m = mip();
        let g = guarded_schedule(0, (PoolAlgorithm::Mip, &m), &[], &p, Deadline::none());
        assert_eq!(g.status, SolveStatus::Ok);
        assert!(g.error.is_none());
        assert!(g.outcome.completed);
        assert!(validate(&p, &g.outcome.placement, false).is_empty());
    }

    #[test]
    fn panicking_primary_falls_back_to_pool_member() {
        let p = pair_problem();
        let m = mip();
        let g = guarded_schedule(
            3,
            (PoolAlgorithm::Cg, &PanickingScheduler),
            &[(PoolAlgorithm::Mip, &m)],
            &p,
            Deadline::none(),
        );
        assert_eq!(g.status, SolveStatus::FellBackTo(PoolAlgorithm::Mip));
        assert!(
            matches!(g.error, Some(RasaError::SolvePanicked { subproblem: 3, ref message })
                if message == "injected solver fault")
        );
        assert!(!g.outcome.completed, "fallback results are flagged degraded");
        assert!(validate(&p, &g.outcome.placement, false).is_empty());
        assert!(g.outcome.placement.total_placed() > 0);
    }

    #[test]
    fn all_pool_members_panicking_ends_at_greedy_completion() {
        let p = pair_problem();
        let g = guarded_schedule(
            0,
            (PoolAlgorithm::Mip, &PanickingScheduler),
            &[(PoolAlgorithm::Cg, &PanickingScheduler)],
            &p,
            Deadline::none(),
        );
        assert_eq!(g.status, SolveStatus::Panicked);
        assert!(validate(&p, &g.outcome.placement, true).is_empty(),
            "completion places the whole SLA when capacity permits");
        assert!(!g.outcome.completed);
    }

    #[test]
    fn infeasible_primary_is_discarded() {
        let p = pair_problem();
        let m = mip();
        let g = guarded_schedule(
            1,
            (PoolAlgorithm::Cg, &OverflowingScheduler),
            &[(PoolAlgorithm::Mip, &m)],
            &p,
            Deadline::none(),
        );
        assert_eq!(g.status, SolveStatus::FellBackTo(PoolAlgorithm::Mip));
        assert_eq!(g.error, Some(RasaError::InfeasibleResult { subproblem: 1 }));
        assert!(validate(&p, &g.outcome.placement, false).is_empty());
    }

    #[test]
    fn objective_mismatch_routes_down_the_ladder() {
        let p = pair_problem();
        let m = mip();
        let g = guarded_schedule(
            4,
            (PoolAlgorithm::Cg, &LyingScheduler),
            &[(PoolAlgorithm::Mip, &m)],
            &p,
            Deadline::none(),
        );
        assert_eq!(g.status, SolveStatus::FellBackTo(PoolAlgorithm::Mip));
        assert!(matches!(
            g.error,
            Some(RasaError::CertificationFailed { subproblem: 4, ref detail })
                if detail.contains("LIAR")
        ));
        assert!(validate(&p, &g.outcome.placement, false).is_empty());
    }

    #[test]
    fn infeasible_primary_without_fallback_uses_completion() {
        let p = pair_problem();
        let g = guarded_schedule(
            0,
            (PoolAlgorithm::Cg, &OverflowingScheduler),
            &[],
            &p,
            Deadline::none(),
        );
        assert_eq!(g.status, SolveStatus::Infeasible);
        assert!(validate(&p, &g.outcome.placement, false).is_empty());
    }

    #[test]
    fn expired_deadline_skips_solvers_entirely() {
        let p = pair_problem();
        let g = guarded_schedule(
            2,
            (PoolAlgorithm::Mip, &PanickingScheduler), // would panic if invoked
            &[],
            &p,
            Deadline::after(Duration::ZERO),
        );
        assert_eq!(g.status, SolveStatus::DeadlineExpired);
        assert_eq!(g.error, Some(RasaError::DeadlineExpired { subproblem: 2 }));
        assert!(!g.outcome.completed);
        assert!(validate(&p, &g.outcome.placement, false).is_empty());
    }

    #[test]
    fn lost_slot_outcome_is_empty_but_feasible() {
        let p = pair_problem();
        let g = GuardedOutcome::lost_slot(5, &p);
        assert_eq!(g.status, SolveStatus::Panicked);
        assert_eq!(g.outcome.placement.total_placed(), 0);
        assert!(!g.outcome.completed);
        assert!(validate(&p, &g.outcome.placement, false).is_empty());
        assert!(matches!(
            g.error,
            Some(RasaError::SolvePanicked { subproblem: 5, .. })
        ));
    }

    #[test]
    fn fault_injection_predicates() {
        assert!(!FaultInjection::None.panics(0));
        assert!(FaultInjection::PanicAlways.panics(7));
        assert!(FaultInjection::PanicOnSubproblems(vec![1, 3]).panics(3));
        assert!(!FaultInjection::PanicOnSubproblems(vec![1, 3]).panics(2));
        assert!(FaultInjection::StarveSubproblems(vec![0]).starves(0));
        assert!(!FaultInjection::StarveSubproblems(vec![0]).panics(0));
    }

    #[test]
    fn status_degradation_flags() {
        assert!(!SolveStatus::Ok.is_degraded());
        for s in [
            SolveStatus::DeadlineExpired,
            SolveStatus::Panicked,
            SolveStatus::Infeasible,
            SolveStatus::FellBackTo(PoolAlgorithm::Mip),
        ] {
            assert!(s.is_degraded());
        }
        // validate all services placed helper used by the suite compiles
        let _ = ServiceId(0);
    }
}
