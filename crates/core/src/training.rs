//! Training-set assembly for the learned selectors (Section IV-D1): the
//! paper samples subproblems from four training clusters (T1–T4) and
//! labels each by racing the two pool algorithms under a time limit.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa_model::Problem;
use rasa_partition::{multi_stage_partition, PartitionConfig};
use rasa_select::{label_subproblem, LabeledSubproblem};
use std::time::Duration;

/// Partition each training problem with the multi-stage pipeline (varying
/// the subproblem budget to diversify scales) and collect up to `limit`
/// labelable subproblems (edge-less subproblems are skipped — nothing to
/// learn from). Shared by the binary labelling pipeline
/// ([`generate_training_set`]) and the portfolio bootstrap
/// (`rasa_select::label_portfolio` over these subproblems).
pub fn training_subproblems(problems: &[Problem], limit: usize, seed: u64) -> Vec<Problem> {
    let mut out = Vec::new();
    let budgets = [12usize, 24, 48];
    'outer: for (pi, problem) in problems.iter().enumerate() {
        for (bi, &budget) in budgets.iter().enumerate() {
            let config = PartitionConfig {
                max_subproblem_services: budget,
                ..Default::default()
            };
            let mut rng =
                StdRng::seed_from_u64(seed.wrapping_add((pi * budgets.len() + bi) as u64));
            let partition = multi_stage_partition(problem, None, &config, &mut rng);
            for sub in partition.subproblems {
                if sub.problem.affinity_edges.is_empty() {
                    continue; // nothing to learn from
                }
                out.push(sub.problem);
                if out.len() >= limit {
                    break 'outer;
                }
            }
        }
    }
    out
}

/// Partition each training problem with the multi-stage pipeline (varying
/// the subproblem budget to diversify scales), then label up to `limit`
/// subproblems with a `label_budget` race each.
pub fn generate_training_set(
    problems: &[Problem],
    limit: usize,
    label_budget: Duration,
    seed: u64,
) -> Vec<LabeledSubproblem> {
    training_subproblems(problems, limit, seed)
        .iter()
        .map(|sub| label_subproblem(sub, label_budget))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_trace::{generate, tiny_cluster};

    #[test]
    fn subproblem_collection_is_deterministic_and_edgeful() {
        let problems: Vec<Problem> = (0..2).map(|i| generate(&tiny_cluster(i))).collect();
        let a = training_subproblems(&problems, 6, 1);
        let b = training_subproblems(&problems, 6, 1);
        assert!(!a.is_empty());
        assert!(a.len() <= 6);
        assert_eq!(a.len(), b.len(), "same seed, same collection");
        for sub in &a {
            assert!(!sub.affinity_edges.is_empty());
        }
    }

    #[test]
    fn produces_labeled_examples() {
        let problems: Vec<Problem> = (0..2).map(|i| generate(&tiny_cluster(i))).collect();
        let data = generate_training_set(&problems, 6, Duration::from_millis(300), 1);
        assert!(!data.is_empty());
        assert!(data.len() <= 6);
        for ex in &data {
            assert!(!ex.problem.affinity_edges.is_empty());
            // objectives recorded for both arms
            assert!(ex.cg_objective >= 0.0);
            assert!(ex.mip_objective >= 0.0);
        }
    }
}
