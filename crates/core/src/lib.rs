#![warn(missing_docs)]

//! # rasa-core
//!
//! The end-to-end **RASA algorithm** (Section IV of *"Resource Allocation
//! with Service Affinity in Large-Scale Cloud Environments"*, ICDE 2024)
//! and the crate downstream users depend on.
//!
//! The pipeline is the paper's three phases:
//!
//! 1. **Service partitioning** (`rasa-partition`) — multi-stage analysis of
//!    the affinity graph produces small *crucial* subproblems and a pile of
//!    *trivial* services;
//! 2. **Algorithm selection + solving** (`rasa-select`, `rasa-solver`) — a
//!    selector (GCN by default in the paper; pluggable here) routes each
//!    subproblem to the MIP-based or column-generation algorithm, solved
//!    independently (optionally on parallel threads) under the global
//!    deadline, and the solutions are merged;
//! 3. **Migration path** (`rasa-migrate`) — an executable delete/create
//!    plan transitions the running cluster to the new mapping under the
//!    relaxed 75%-alive SLA.
//!
//! ```
//! use rasa_core::{RasaConfig, RasaPipeline};
//! use rasa_core::Deadline;
//! use rasa_model::{ProblemBuilder, ResourceVec, FeatureMask};
//!
//! let mut b = ProblemBuilder::new();
//! let web = b.add_service("web", 2, ResourceVec::cpu_mem(500.0, 1024.0));
//! let cache = b.add_service("cache", 4, ResourceVec::cpu_mem(250.0, 2048.0));
//! b.add_machines(3, ResourceVec::cpu_mem(4000.0, 16384.0), FeatureMask::EMPTY);
//! b.add_affinity(web, cache, 100.0); // traffic volume
//! let problem = b.build().unwrap();
//!
//! let pipeline = RasaPipeline::new(RasaConfig::default());
//! let run = pipeline.optimize(&problem, None, Deadline::none());
//! assert!(run.outcome.normalized_gained_affinity > 0.99);
//! ```

pub mod certify;
pub mod pipeline;
pub mod selector_choice;
pub mod service;
pub mod solve_cache;
pub mod solve_guard;
pub mod training;

pub use certify::{certify_placement, CertificationFailure, OBJECTIVE_REL_TOL};
pub use pipeline::{RasaConfig, RasaPipeline, RasaRun, SubproblemReport};
pub use rasa_lp::Deadline;
pub use selector_choice::SelectorChoice;
pub use service::{
    apply_delta_to_problem, AllocationSession, DeltaPlan, EdgeUpdate, PublishedPlacement,
    ReplicaUpdate, Restored, RestoredPlacement, RestoredState, RestoreError, SessionError,
    SessionRound, SnapshotDelta, MIN_RETRAIN_SAMPLES,
};
pub use solve_cache::{CacheRoundStats, CachedSubSolve, SolveCache};
pub use solve_guard::{
    guarded_schedule, FaultInjection, GuardedOutcome, PanickingScheduler, SolveStatus,
};
pub use training::{generate_training_set, training_subproblems};

// Re-export the pieces users compose with.
pub use rasa_migrate::{plan_migration, MigrateConfig, MigrationPlan};
pub use rasa_model as model;
pub use rasa_model::{AdmissionReport, ProblemValidator, RasaError};
pub use rasa_partition::{PartitionConfig, PartitionStrategy};
pub use rasa_select::{
    portfolio_features, PoolAlgorithm, PortfolioSelector, RegretReport, SampleLog,
    SelectionSample,
};
pub use rasa_solver::{ScheduleOutcome, Scheduler};
