//! A concrete, clonable selector configuration for the pipeline (wrapping
//! the five strategies of Fig 8).

use rasa_model::Problem;
use rasa_select::{
    AlgorithmSelector, FixedSelector, GcnSelector, HeuristicSelector, MlpSelector, PoolAlgorithm,
    PortfolioSelector,
};

/// Which algorithm-selection strategy the pipeline uses (Section IV-D /
/// Fig 8, plus the portfolio extension). The paper deploys GCN-BASED;
/// HEURISTIC is the zero-setup default here because it needs no training
/// data.
#[derive(Clone, Debug, Default)]
pub enum SelectorChoice {
    /// The paper's empirical rule — no training required.
    #[default]
    Heuristic,
    /// Always column generation (ablation).
    AlwaysCg,
    /// Always the MIP-based algorithm (ablation).
    AlwaysMip,
    /// Always the POP shard rung (ablation for the portfolio bench).
    AlwaysPop,
    /// Always the greedy completion arm (ablation; the quality floor).
    AlwaysGreedy,
    /// A trained GCN classifier (the paper's proposal).
    Gcn(GcnSelector),
    /// A trained MLP over pooled features (topology-blind ablation).
    Mlp(MlpSelector),
    /// The learning multi-way portfolio selector (per-arm ridge models
    /// refitted online from the [`SampleLog`](rasa_select::SampleLog)
    /// stream).
    Portfolio(PortfolioSelector),
}

impl SelectorChoice {
    /// Route a subproblem to a pool algorithm.
    pub fn select(&self, problem: &Problem) -> PoolAlgorithm {
        match self {
            SelectorChoice::Heuristic => HeuristicSelector.select(problem),
            SelectorChoice::AlwaysCg => PoolAlgorithm::Cg,
            SelectorChoice::AlwaysMip => PoolAlgorithm::Mip,
            SelectorChoice::AlwaysPop => PoolAlgorithm::Pop,
            SelectorChoice::AlwaysGreedy => PoolAlgorithm::Greedy,
            SelectorChoice::Gcn(s) => s.select(problem),
            SelectorChoice::Mlp(s) => s.select(problem),
            SelectorChoice::Portfolio(s) => s.select(problem),
        }
    }

    /// Label for experiment tables (matches Fig 8's legend).
    pub fn label(&self) -> &'static str {
        match self {
            SelectorChoice::Heuristic => "HEURISTIC",
            SelectorChoice::AlwaysCg => FixedSelector(PoolAlgorithm::Cg).name(),
            SelectorChoice::AlwaysMip => FixedSelector(PoolAlgorithm::Mip).name(),
            SelectorChoice::AlwaysPop => FixedSelector(PoolAlgorithm::Pop).name(),
            SelectorChoice::AlwaysGreedy => FixedSelector(PoolAlgorithm::Greedy).name(),
            SelectorChoice::Gcn(_) => "GCN-BASED",
            SelectorChoice::Mlp(_) => "MLP-BASED",
            SelectorChoice::Portfolio(_) => "PORTFOLIO",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{ProblemBuilder, ResourceVec};

    #[test]
    fn fixed_choices_are_constant() {
        let mut b = ProblemBuilder::new();
        b.add_service("a", 1, ResourceVec::ZERO);
        let p = b.build().unwrap();
        assert_eq!(SelectorChoice::AlwaysCg.select(&p), PoolAlgorithm::Cg);
        assert_eq!(SelectorChoice::AlwaysMip.select(&p), PoolAlgorithm::Mip);
        assert_eq!(SelectorChoice::AlwaysPop.select(&p), PoolAlgorithm::Pop);
        assert_eq!(SelectorChoice::AlwaysGreedy.select(&p), PoolAlgorithm::Greedy);
        assert_eq!(SelectorChoice::AlwaysCg.label(), "CG");
        assert_eq!(SelectorChoice::AlwaysPop.label(), "POP");
        assert_eq!(SelectorChoice::AlwaysGreedy.label(), "GREEDY");
        assert_eq!(SelectorChoice::default().label(), "HEURISTIC");
    }

    #[test]
    fn untrained_portfolio_routes_to_mip() {
        let mut b = ProblemBuilder::new();
        b.add_service("a", 1, ResourceVec::ZERO);
        let p = b.build().unwrap();
        let choice = SelectorChoice::Portfolio(PortfolioSelector::default());
        assert_eq!(choice.select(&p), PoolAlgorithm::Mip);
        assert_eq!(choice.label(), "PORTFOLIO");
    }
}
