//! The RASA pipeline: partition → select → solve (in parallel) → combine →
//! complete → (optionally) plan the migration.
//!
//! Every per-subproblem solve goes through the fault-isolated layer in
//! [`crate::solve_guard`]: a panicking, infeasible-result-producing, or
//! deadline-starved pool member degrades its own subproblem (recorded in
//! [`SubproblemReport::status`]) and the run still completes with a
//! feasible merged placement.

use crate::certify::certify_placement;
use crate::selector_choice::SelectorChoice;
use crate::solve_cache::{CacheRoundStats, CachedSubSolve, SolveCache};
use crate::solve_guard::{
    guarded_schedule, FaultInjection, GuardedOutcome, PanickingScheduler, SolveStatus,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa_lp::Deadline;
use rasa_migrate::{plan_migration, MigrateConfig, MigrateError, MigrationPlan};
use rasa_model::{
    AdmissionReport, ContainerAssignment, Placement, Problem, ProblemValidator, RasaError,
};
use rasa_obs::flight::{self, TraceEvent};
use rasa_partition::{
    partition_with_strategy, PartitionConfig, PartitionOutcome, PartitionStrategy, Subproblem,
};
use rasa_select::{portfolio_features, PoolAlgorithm, SampleLog, SelectionSample};
use rasa_solver::{
    complete_placement, CgOptions, CgWarmStart, ColumnGeneration, GreedyScheduler, MipBased,
    MipBasedOptions, PopOptions, PopStrategy, ScheduleOutcome, Scheduler,
};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Full pipeline configuration.
#[derive(Clone, Debug)]
pub struct RasaConfig {
    /// Partitioning strategy (the paper's multi-stage by default; the
    /// others exist for the Fig 6 ablation).
    pub strategy: PartitionStrategy,
    /// Partitioning knobs.
    pub partition: PartitionConfig,
    /// Algorithm-selection strategy (Fig 8).
    pub selector: SelectorChoice,
    /// Options for the MIP-based pool member.
    pub mip: MipBasedOptions,
    /// Options for the column-generation pool member.
    pub cg: CgOptions,
    /// Options for the POP shard-rung pool member (parts, split seed).
    pub pop: PopOptions,
    /// Online-learning sample stream: every fresh (non-cached) subproblem
    /// solve appends a `(features, choice, quality, latency)` tuple here.
    /// Bounded (drop-oldest); `Clone` shares the underlying buffer, so a
    /// session's clones of this config all feed one stream the `retrain`
    /// path can refit from.
    pub sample_log: SampleLog,
    /// Solve subproblems on parallel threads (the paper solves each
    /// subproblem independently, which is embarrassingly parallel).
    pub parallel: bool,
    /// Place trivial/leftover containers with the completion pass so the
    /// final mapping satisfies the SLA.
    pub complete: bool,
    /// Seed for the partitioner's randomized stage.
    pub seed: u64,
    /// Deterministic fault injection (tests and chaos drills only; the
    /// default injects nothing).
    pub fault_injection: FaultInjection,
    /// Run the admission gate ([`ProblemValidator`]) before partitioning:
    /// corrupt inputs are quarantined/repaired and the healthy remainder
    /// solved, instead of panicking deep inside a solver. On by default;
    /// disable only when the input is known-validated (e.g. fresh from
    /// `ProblemBuilder::build`) and the audit pass must be skipped.
    pub admission: bool,
}

impl Default for RasaConfig {
    fn default() -> Self {
        // pool members skip their own completion pass; the pipeline runs
        // one global pass at the end
        let mip = MipBasedOptions {
            complete: false,
            ..Default::default()
        };
        let cg = CgOptions {
            complete: false,
            ..Default::default()
        };
        let pop = PopOptions {
            complete: false,
            sub_mip: MipBasedOptions {
                complete: false,
                ..Default::default()
            },
            ..Default::default()
        };
        RasaConfig {
            strategy: PartitionStrategy::MultiStage,
            partition: PartitionConfig::default(),
            selector: SelectorChoice::default(),
            mip,
            cg,
            pop,
            sample_log: SampleLog::default(),
            parallel: true,
            complete: true,
            seed: 0,
            fault_injection: FaultInjection::None,
            admission: true,
        }
    }
}

/// Per-subproblem report.
#[derive(Clone, Debug)]
pub struct SubproblemReport {
    /// Services in the subproblem.
    pub services: usize,
    /// Machines assigned to it.
    pub machines: usize,
    /// Which pool algorithm the selector chose.
    pub algorithm: PoolAlgorithm,
    /// Gained affinity achieved inside the subproblem (absolute units).
    pub gained_affinity: f64,
    /// Whether the algorithm ran to completion within its deadline.
    pub completed: bool,
    /// How the guarded solve ended ([`SolveStatus::Ok`] on the happy path;
    /// otherwise which fallback rung produced the result).
    pub status: SolveStatus,
    /// The primary failure that degraded this subproblem, if any.
    pub error: Option<RasaError>,
    /// `true` when the result was replayed from a [`SolveCache`] instead
    /// of being solved this round.
    pub cache_hit: bool,
}

/// Result of one pipeline run.
#[derive(Clone, Debug)]
pub struct RasaRun {
    /// The merged, completed schedule with objective values.
    pub outcome: ScheduleOutcome,
    /// Partitioning statistics (loss, stage counts, timing).
    pub partition: rasa_partition::stages::PartitionStats,
    /// Affinity weight lost to the partition boundaries.
    pub partition_loss: f64,
    /// One report per subproblem.
    pub subproblems: Vec<SubproblemReport>,
    /// Warm-start tallies for this round; `None` when the run was made
    /// without a [`SolveCache`].
    pub cache: Option<CacheRoundStats>,
    /// What the admission gate found (and repaired) in the input problem;
    /// `None` when [`RasaConfig::admission`] is off. Check
    /// [`AdmissionReport::is_clean`] and the quarantine lists to learn
    /// which services/machines were excluded from this round.
    pub admission: Option<AdmissionReport>,
}

impl RasaRun {
    /// Errors from degraded subproblems, in subproblem order. Empty on a
    /// fully healthy run.
    pub fn errors(&self) -> Vec<RasaError> {
        self.subproblems
            .iter()
            .filter_map(|r| r.error.clone())
            .collect()
    }

    /// `true` when any subproblem needed the fallback ladder (or ran out
    /// of deadline budget).
    pub fn is_degraded(&self) -> bool {
        self.subproblems.iter().any(|r| r.status.is_degraded())
    }
}

/// The RASA optimizer.
#[derive(Clone, Debug, Default)]
pub struct RasaPipeline {
    /// Configuration.
    pub config: RasaConfig,
}

impl RasaPipeline {
    /// A pipeline with the given configuration.
    pub fn new(config: RasaConfig) -> Self {
        RasaPipeline { config }
    }

    /// Run partition → select → solve → combine. `current` is the running
    /// placement (used to shrink machine capacities under trivial
    /// services); pass `None` when planning a cluster from scratch.
    pub fn optimize(
        &self,
        problem: &Problem,
        current: Option<&Placement>,
        deadline: Deadline,
    ) -> RasaRun {
        self.optimize_with_cache(problem, current, deadline, None)
    }

    /// [`Self::optimize`] with a cross-round [`SolveCache`]. On each call:
    ///
    /// 1. subproblems whose full fingerprint matches a cached solve are
    ///    replayed verbatim (a *hit* — no solver runs);
    /// 2. the remaining *misses* are solved with the whole deadline budget
    ///    sliced over misses only, and column generation seeds its master
    ///    from the cache's column pool for the subproblem's service set;
    /// 3. healthy results are stored back, and entries no current
    ///    subproblem references are evicted (*invalidations*).
    ///
    /// Tallies land in [`RasaRun::cache`] and the `cache.*` obs counters.
    /// Passing `None` is exactly [`Self::optimize`].
    pub fn optimize_with_cache(
        &self,
        problem: &Problem,
        current: Option<&Placement>,
        deadline: Deadline,
        cache: Option<&SolveCache>,
    ) -> RasaRun {
        let start = Instant::now();
        let obs = rasa_obs::global();
        obs.inc("pipeline.runs");
        let mut fscope = flight::begin_solve(
            "pipeline.run",
            &[
                ("services", problem.num_services().to_string()),
                ("machines", problem.num_machines().to_string()),
            ],
        );
        // Gate 1: admission control. Audit the input, quarantine/repair
        // corrupt entries, and solve the healthy remainder. `repaired`
        // owns the cleaned clone (only allocated when a repair was
        // needed); `problem` is rebound to whichever copy is admissible.
        let mut admission_report: Option<AdmissionReport> = None;
        let repaired: Option<Problem> = if self.config.admission {
            let _fs = flight::span("pipeline.admission");
            obs.inc("admission.audits");
            let (fixed, report) = ProblemValidator::new().admit(problem);
            if !report.is_clean() {
                obs.inc("admission.dirty");
                let services = report.quarantined_services.len() as u64;
                let machines = report.quarantined_machines.len() as u64;
                let edges = report.dropped_edges as u64;
                let rules = report.dropped_rules as u64;
                obs.add("admission.quarantined_services", services);
                obs.add("admission.quarantined_machines", machines);
                obs.add("admission.dropped_edges", edges);
                obs.add("admission.dropped_rules", rules);
                flight::emit(|| TraceEvent::admission_quarantine(services, machines, edges, rules));
            }
            admission_report = Some(report);
            fixed
        } else {
            None
        };
        let problem: &Problem = repaired.as_ref().unwrap_or(problem);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let partition: PartitionOutcome = {
            let _t = obs.span("pipeline.partition_seconds");
            let _fs = flight::span("pipeline.partition");
            partition_with_strategy(
                problem,
                current,
                self.config.strategy,
                &self.config.partition,
                &mut rng,
            )
        };
        obs.add("pipeline.subproblems", partition.subproblems.len() as u64);
        obs.record("pipeline.partition_loss", partition.affinity_loss);

        // decide the algorithm per subproblem up front (cheap)
        let choices: Vec<PoolAlgorithm> = partition
            .subproblems
            .iter()
            .map(|sub| self.config.selector.select(&sub.problem))
            .collect();
        for (i, &alg) in choices.iter().enumerate() {
            obs.inc(match alg {
                PoolAlgorithm::Mip => "pipeline.alg.mip",
                PoolAlgorithm::Cg => "pipeline.alg.cg",
                PoolAlgorithm::Pop => "pipeline.alg.pop",
                PoolAlgorithm::Greedy => "pipeline.alg.greedy",
            });
            flight::emit(|| TraceEvent::rung_selected(i as u64, alg.label()));
        }

        // replay cache hits, queue the misses
        let fingerprints: Option<Vec<u64>> = cache.map(|_| {
            partition
                .subproblems
                .iter()
                .map(|sub| sub.fingerprint())
                .collect()
        });
        let mut replayed: Vec<Option<GuardedOutcome>> = vec![None; partition.subproblems.len()];
        let mut hit_algorithms: Vec<Option<PoolAlgorithm>> =
            vec![None; partition.subproblems.len()];
        let mut cache_stats = cache.map(|_| CacheRoundStats::default());
        let mut cache_poisoned = false;
        if let (Some(c), Some(fps), Some(stats)) = (cache, &fingerprints, &mut cache_stats) {
            for (i, sub) in partition.subproblems.iter().enumerate() {
                if let Some(hit) = c.lookup(fps[i]) {
                    // Gate 2 on the replay path: a cached placement is
                    // re-certified before it is trusted, so an entry
                    // mutated after being stored is re-solved instead of
                    // replayed.
                    match certify_placement(
                        &sub.problem,
                        &hit.placement,
                        hit.gained_affinity,
                        false,
                        "solve_cache",
                    ) {
                        Ok(_) => {
                            let outcome = ScheduleOutcome::evaluate(
                                &sub.problem,
                                hit.placement,
                                Duration::ZERO,
                                hit.completed,
                            );
                            replayed[i] = Some(GuardedOutcome {
                                outcome,
                                status: SolveStatus::Ok,
                                error: None,
                            });
                            hit_algorithms[i] = Some(hit.algorithm);
                            stats.hits += 1;
                            obs.inc("cache.sub_hits");
                            flight::emit(|| TraceEvent::cache_lookup(true, "solve_cache", fps[i]));
                        }
                        Err(_) => {
                            // Poisoned entry: treat as a miss and
                            // re-solve; the healthy result overwrites it.
                            obs.inc("certify.cache_rejections");
                            cache_poisoned = true;
                            stats.misses += 1;
                            obs.inc("cache.sub_misses");
                            flight::emit(|| TraceEvent::cache_lookup(false, "solve_cache", fps[i]));
                        }
                    }
                } else {
                    stats.misses += 1;
                    obs.inc("cache.sub_misses");
                    flight::emit(|| TraceEvent::cache_lookup(false, "solve_cache", fps[i]));
                }
            }
        }
        let jobs: Vec<PendingJob<'_>> = partition
            .subproblems
            .iter()
            .zip(&choices)
            .enumerate()
            .filter(|(i, _)| replayed[*i].is_none())
            .map(|(i, (sub, &alg))| PendingJob {
                index: i,
                sub,
                alg,
                warm: cache.map(|c| CgWarmStart {
                    cache: c.columns(),
                    key: sub.service_set_fingerprint(),
                }),
            })
            .collect();

        // solve the misses (each behind the fault-isolation guard), with
        // the deadline budget sliced over misses only — replayed hits are
        // free and must not hold a share of the budget
        let solved: Vec<GuardedOutcome> = {
            let _t = obs.span("pipeline.solve_seconds");
            let _fs = flight::span_with("pipeline.solve", &[("jobs", jobs.len().to_string())]);
            if self.config.parallel {
                self.solve_parallel(&jobs, deadline)
            } else {
                self.solve_sequential(&jobs, deadline)
            }
        };

        // store healthy fresh solves back into the cache, then evict
        // whatever this round's partition no longer references
        if let (Some(c), Some(fps), Some(stats)) = (cache, &fingerprints, &mut cache_stats) {
            for (job, guarded) in jobs.iter().zip(&solved) {
                if guarded.status == SolveStatus::Ok {
                    c.store(
                        fps[job.index],
                        CachedSubSolve {
                            placement: guarded.outcome.placement.clone(),
                            algorithm: job.alg,
                            completed: guarded.outcome.completed,
                            gained_affinity: guarded.outcome.gained_affinity,
                        },
                    );
                }
            }
            let live_subs: HashSet<u64> = fps.iter().copied().collect();
            let live_columns: HashSet<u64> = partition
                .subproblems
                .iter()
                .map(|sub| sub.service_set_fingerprint())
                .collect();
            stats.invalidations = c.retain(&live_subs, &live_columns);
            obs.add("cache.invalidations", stats.invalidations as u64);
            if stats.invalidations > 0 {
                let n = stats.invalidations as u64;
                flight::emit(|| TraceEvent::cache_evict("solve_cache", n));
            }
        }

        // combine (merging hits and fresh solves back in subproblem order)
        let _t_combine = obs.span("pipeline.combine_seconds");
        let _fs_combine = flight::span("pipeline.combine");
        let mut fresh = solved.into_iter();
        let merged: Vec<(GuardedOutcome, bool)> = replayed
            .into_iter()
            .map(|slot| match slot {
                Some(hit) => (hit, true),
                None => (
                    fresh.next().expect("one solved outcome per pending job"),
                    false,
                ),
            })
            .collect();
        let mut placement = Placement::empty_for(problem);
        let mut reports = Vec::with_capacity(merged.len());
        for (i, (sub, (guarded, was_hit))) in
            partition.subproblems.iter().zip(&merged).enumerate()
        {
            placement.merge_subplacement(
                &guarded.outcome.placement,
                &sub.mapping.service_to_parent,
                &sub.mapping.machine_to_parent,
            );
            if !*was_hit {
                // feed the online-learning loop: realized quality/latency
                // of the selector's decision on this subproblem (replayed
                // cache hits cost nothing and would bias latency labels)
                obs.inc("select.samples");
                let dropped = self.config.sample_log.record(SelectionSample {
                    features: portfolio_features(&sub.problem),
                    choice: choices[i],
                    quality: guarded.outcome.normalized_gained_affinity,
                    latency_secs: guarded.outcome.elapsed.as_secs_f64(),
                    degraded: guarded.status.is_degraded(),
                });
                if dropped {
                    obs.inc("select.samples_dropped");
                }
            }
            reports.push(SubproblemReport {
                services: sub.problem.num_services(),
                machines: sub.problem.num_machines(),
                algorithm: hit_algorithms[i].unwrap_or(choices[i]),
                gained_affinity: guarded.outcome.gained_affinity,
                completed: guarded.outcome.completed,
                status: guarded.status,
                error: guarded.error.clone(),
                cache_hit: *was_hit,
            });
        }
        drop(_fs_combine);
        drop(_t_combine);

        if self.config.complete {
            let _t = obs.span("pipeline.complete_seconds");
            let _fs = flight::span("pipeline.complete");
            complete_placement(problem, &mut placement);
        }
        let degraded = reports.iter().any(|r| r.status.is_degraded());
        // A poisoned-cache round still produces a certified placement,
        // but the verdict is marked degraded so the flight recorder dumps
        // a black box for forensics.
        let verdict = if degraded {
            "degraded"
        } else if cache_poisoned {
            "certify_failed"
        } else {
            "ok"
        };
        fscope.set_verdict(verdict, degraded || cache_poisoned);
        drop(fscope);
        let completed = reports.iter().all(|r| r.completed);
        let outcome = ScheduleOutcome::evaluate(problem, placement, start.elapsed(), completed);
        RasaRun {
            outcome,
            partition: partition.stats,
            partition_loss: partition.affinity_loss,
            subproblems: reports,
            cache: cache_stats,
            admission: admission_report,
        }
    }

    /// The full Fig 3 workflow: optimize, then compute the executable
    /// migration path from the running assignment to the new mapping.
    pub fn optimize_and_plan(
        &self,
        problem: &Problem,
        current: &ContainerAssignment,
        deadline: Deadline,
        migrate: &MigrateConfig,
    ) -> Result<(RasaRun, MigrationPlan), MigrateError> {
        let run = self.optimize(problem, Some(&current.to_placement()), deadline);
        let plan = plan_migration(problem, current, &run.outcome.placement, migrate)?;
        Ok((run, plan))
    }

    /// Solve one pending subproblem behind the fault-isolation guard: the
    /// selector's choice is the primary, the exact pool members are the
    /// fallback rungs, greedy completion is the floor. POP never appears
    /// as a *rescue* rung — a failed exact solve should fall back to the
    /// other exact solver, not to a lossy shard split — and the GREEDY arm
    /// needs no rungs at all because the guard's floor *is* the greedy
    /// completion pass. Fault injection keys off the subproblem's
    /// *original* partition index, not its queue position, so chaos drills
    /// stay deterministic whether or not a cache filtered the job list.
    fn solve_one(&self, job: &PendingJob<'_>, deadline: Deadline) -> GuardedOutcome {
        let deadline = if self.config.fault_injection.starves(job.index) {
            Deadline::after(Duration::ZERO)
        } else {
            deadline
        };
        let mip = MipBased {
            options: self.config.mip.clone(),
        };
        let cg = ColumnGeneration {
            options: self.config.cg.clone(),
            warm: job.warm.clone(),
        };
        let pop = PopStrategy {
            options: self.config.pop.clone(),
        };
        let greedy = GreedyScheduler;
        let arm = |alg: PoolAlgorithm| -> &dyn Scheduler {
            match alg {
                PoolAlgorithm::Mip => &mip,
                PoolAlgorithm::Cg => &cg,
                PoolAlgorithm::Pop => &pop,
                PoolAlgorithm::Greedy => &greedy,
            }
        };
        let fallback_algs: &[PoolAlgorithm] = match job.alg {
            PoolAlgorithm::Mip => &[PoolAlgorithm::Cg],
            PoolAlgorithm::Cg => &[PoolAlgorithm::Mip],
            PoolAlgorithm::Pop => &[PoolAlgorithm::Mip, PoolAlgorithm::Cg],
            PoolAlgorithm::Greedy => &[],
        };
        let fallbacks: Vec<(PoolAlgorithm, &dyn Scheduler)> =
            fallback_algs.iter().map(|&a| (a, arm(a))).collect();
        let panicking = PanickingScheduler;
        let primary: &dyn Scheduler = if self.config.fault_injection.panics(job.index) {
            &panicking
        } else {
            arm(job.alg)
        };
        guarded_schedule(
            job.index,
            (job.alg, primary),
            &fallbacks,
            &job.sub.problem,
            deadline,
        )
    }

    /// A fair per-subproblem slice of the global budget, measured from the
    /// *live* remaining budget at call time. Re-measuring per subproblem
    /// (instead of slicing a snapshot taken before the loop) means an
    /// overrunning early solve shrinks the later slices, so the global
    /// deadline holds even when individual solvers overshoot their slice.
    fn slice_deadline(deadline: Deadline, remaining_subs: usize) -> Deadline {
        match deadline.remaining() {
            Some(rem) => deadline.min_with(rem / remaining_subs.max(1) as u32),
            None => Deadline::none(),
        }
    }

    /// The parallel counterpart of [`Self::slice_deadline`], giving both
    /// paths the same fairness guarantee: no subproblem may consume budget
    /// that later queue entries still need. Workers pull indices from a
    /// shared queue, so when subproblem `index` starts, the `total - index`
    /// entries not yet started will run in about
    /// `ceil((total - index) / threads)` more waves across the pool; this
    /// slot's slice is the live remaining budget divided by that wave
    /// count. With one thread this reduces exactly to the sequential
    /// formula, and like it, re-measuring the live remaining budget means
    /// an overrunning early wave shrinks the later slices instead of
    /// pushing the run past the global deadline.
    fn parallel_slice_deadline(
        deadline: Deadline,
        index: usize,
        total: usize,
        threads: usize,
    ) -> Deadline {
        let waves = total
            .saturating_sub(index)
            .div_ceil(threads.max(1))
            .max(1);
        match deadline.remaining() {
            Some(rem) => deadline.min_with(rem / waves as u32),
            None => Deadline::none(),
        }
    }

    fn solve_sequential(&self, jobs: &[PendingJob<'_>], deadline: Deadline) -> Vec<GuardedOutcome> {
        let mut out = Vec::with_capacity(jobs.len());
        for (pos, job) in jobs.iter().enumerate() {
            // slice by queue position: the deadline budget is split over
            // the jobs actually being solved, not the full partition
            let slice = Self::slice_deadline(deadline, jobs.len() - pos);
            out.push(self.solve_one(job, slice));
        }
        out
    }

    fn solve_parallel(&self, jobs: &[PendingJob<'_>], deadline: Deadline) -> Vec<GuardedOutcome> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(jobs.len());
        if threads <= 1 {
            // one worker means serial execution anyway; sequential slicing
            // splits the budget fairly instead of letting the first
            // subproblem starve the rest
            return self.solve_sequential(jobs, deadline);
        }
        let slots: Vec<slot::Slot<GuardedOutcome>> =
            (0..jobs.len()).map(|_| slot::Slot::new()).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        // request identity is thread-ambient; hand each pool worker a
        // clone so their recordings join the same request as the caller's
        let request_ctx = rasa_obs::flight::current_request_context();
        // `solve_one` catches panics internally, so a worker dying here is
        // already a second-order failure; ignore the scope error and let
        // the per-slot fallback below fill in whatever was lost.
        let _ = crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                let next = &next;
                let slots = &slots;
                let request_ctx = request_ctx.clone();
                scope.spawn(move |_| {
                    let _ctx = request_ctx.map(rasa_obs::flight::with_request_context);
                    loop {
                        let pos = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if pos >= jobs.len() {
                            break;
                        }
                        // slice the global budget by queue position, exactly
                        // as the sequential path does — handing every worker
                        // the full deadline let one slow subproblem starve
                        // the rest of the queue
                        let slice =
                            Self::parallel_slice_deadline(deadline, pos, jobs.len(), threads);
                        slots[pos].set(self.solve_one(&jobs[pos], slice));
                    }
                });
            }
        });
        slots
            .into_iter()
            .zip(jobs)
            .map(|(s, job)| {
                s.take().unwrap_or_else(|| {
                    rasa_obs::global().inc("pipeline.lost_slots");
                    GuardedOutcome::lost_slot(job.index, &job.sub.problem)
                })
            })
            .collect()
    }
}

/// A subproblem still waiting to be solved this round (i.e. not replayed
/// from the [`SolveCache`]), with everything `solve_one` needs.
struct PendingJob<'a> {
    /// Index in the partition's subproblem list (drives fault injection
    /// and the merge-back order).
    index: usize,
    /// The subproblem itself.
    sub: &'a Subproblem,
    /// The selector's algorithm choice.
    alg: PoolAlgorithm,
    /// Cross-round column-pool handle for column generation, when a
    /// [`SolveCache`] is in play.
    warm: Option<CgWarmStart>,
}

/// Tiny one-shot cell used to collect results from scoped worker threads.
mod slot {
    use parking_lot::Mutex;

    pub struct Slot<T>(Mutex<Option<T>>);

    impl<T> Slot<T> {
        pub fn new() -> Self {
            Slot(Mutex::new(None))
        }

        pub fn set(&self, value: T) {
            *self.0.lock() = Some(value);
        }

        pub fn take(&self) -> Option<T> {
            self.0.lock().take()
        }
    }
}

impl Scheduler for RasaPipeline {
    fn name(&self) -> &'static str {
        "RASA"
    }

    fn schedule(&self, problem: &Problem, deadline: Deadline) -> ScheduleOutcome {
        self.optimize(problem, None, deadline).outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{validate, FeatureMask, ProblemBuilder, ResourceVec};

    fn pair_problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 4.0);
        b.build().unwrap()
    }

    #[test]
    fn optimize_reports_one_subproblem_for_a_pair() {
        let p = pair_problem();
        let run = RasaPipeline::default().optimize(&p, None, Deadline::none());
        assert_eq!(run.subproblems.len(), 1);
        assert_eq!(run.subproblems[0].services, 2);
        assert!(run.subproblems[0].completed);
        assert!((run.outcome.normalized_gained_affinity - 1.0).abs() < 1e-6);
        assert!(validate(&p, &run.outcome.placement, true).is_empty());
    }

    #[test]
    fn empty_problem_is_handled() {
        let p = ProblemBuilder::new().build().unwrap();
        let run = RasaPipeline::default().optimize(&p, None, Deadline::none());
        assert!(run.subproblems.is_empty());
        assert_eq!(run.outcome.gained_affinity, 0.0);
    }

    #[test]
    fn problem_without_edges_goes_entirely_to_completion() {
        let mut b = ProblemBuilder::new();
        b.add_service("solo", 3, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let run = RasaPipeline::default().optimize(&p, None, Deadline::none());
        assert!(
            run.subproblems.is_empty(),
            "no affinity → no crucial subproblems"
        );
        assert!(
            validate(&p, &run.outcome.placement, true).is_empty(),
            "SLA via completion"
        );
    }

    #[test]
    fn scheduler_trait_matches_optimize() {
        let p = pair_problem();
        let pipeline = RasaPipeline::default();
        let via_trait = pipeline.schedule(&p, Deadline::none());
        let via_optimize = pipeline.optimize(&p, None, Deadline::none()).outcome;
        assert!((via_trait.gained_affinity - via_optimize.gained_affinity).abs() < 1e-9);
        assert_eq!(pipeline.name(), "RASA");
    }

    #[test]
    fn panicking_pool_member_degrades_without_aborting() {
        // the acceptance scenario: every primary solve panics, yet the run
        // completes, reports the fallback, and the merged placement is valid
        let p = pair_problem();
        for parallel in [false, true] {
            let run = RasaPipeline::new(RasaConfig {
                fault_injection: FaultInjection::PanicAlways,
                parallel,
                ..Default::default()
            })
            .optimize(&p, None, Deadline::none());
            assert_eq!(run.subproblems.len(), 1);
            let report = &run.subproblems[0];
            assert!(
                matches!(report.status, SolveStatus::FellBackTo(_)),
                "parallel={parallel}: status {:?}",
                report.status
            );
            assert!(!report.completed);
            assert!(matches!(
                report.error,
                Some(RasaError::SolvePanicked { subproblem: 0, .. })
            ));
            assert!(run.is_degraded());
            assert_eq!(run.errors().len(), 1);
            assert!(
                validate(&p, &run.outcome.placement, true).is_empty(),
                "parallel={parallel}: merged placement must stay feasible and complete"
            );
            assert!(!run.outcome.completed);
        }
    }

    #[test]
    fn starved_subproblem_reports_deadline_expired() {
        let p = pair_problem();
        let run = RasaPipeline::new(RasaConfig {
            fault_injection: FaultInjection::StarveSubproblems(vec![0]),
            ..Default::default()
        })
        .optimize(&p, None, Deadline::none());
        assert_eq!(run.subproblems[0].status, SolveStatus::DeadlineExpired);
        assert!(run.is_degraded());
        assert!(validate(&p, &run.outcome.placement, true).is_empty());
    }

    #[test]
    fn healthy_run_reports_no_errors() {
        let p = pair_problem();
        let run = RasaPipeline::default().optimize(&p, None, Deadline::none());
        assert!(!run.is_degraded());
        assert!(run.errors().is_empty());
        assert_eq!(run.subproblems[0].status, SolveStatus::Ok);
    }

    #[test]
    fn slice_deadline_remeasures_live_budget() {
        use std::time::Duration;
        // unlimited budget stays unlimited
        assert!(RasaPipeline::slice_deadline(Deadline::none(), 4)
            .remaining()
            .is_none());
        // a finite budget split over 2 remaining subs gives about half
        let d = Deadline::after(Duration::from_millis(200));
        let slice = RasaPipeline::slice_deadline(d, 2);
        let rem = slice.remaining().expect("finite slice");
        assert!(rem <= Duration::from_millis(101), "slice {rem:?}");
        // after the budget is consumed, later slices are already expired
        // instead of re-granting the original share
        let spent = Deadline::after(Duration::ZERO);
        assert!(RasaPipeline::slice_deadline(spent, 3).expired());
        // zero remaining subproblems must not divide by zero
        assert!(!RasaPipeline::slice_deadline(Deadline::none(), 0).expired());
    }

    #[test]
    fn parallel_slice_gives_the_sequential_fairness_guarantee() {
        use std::time::Duration;
        let tol = Duration::from_millis(5);
        // unlimited budget stays unlimited
        assert!(
            RasaPipeline::parallel_slice_deadline(Deadline::none(), 0, 8, 4)
                .remaining()
                .is_none()
        );
        let budget = Duration::from_millis(400);
        // with one worker the parallel formula reduces exactly to the
        // sequential one: index i of n gets remaining / (n - i)
        for (i, n) in [(0usize, 4usize), (1, 4), (3, 4)] {
            let par = RasaPipeline::parallel_slice_deadline(Deadline::after(budget), i, n, 1)
                .remaining()
                .expect("finite");
            let seq = RasaPipeline::slice_deadline(Deadline::after(budget), n - i)
                .remaining()
                .expect("finite");
            let diff = if par > seq { par - seq } else { seq - par };
            assert!(diff <= tol, "i={i}: par={par:?} seq={seq:?}");
        }
        // a first-wave slot must NOT receive the full global budget while
        // later waves still need it (the historical bug handed every worker
        // the whole deadline): 8 subs on 2 threads = 4 waves → 1/4 each
        let first = RasaPipeline::parallel_slice_deadline(Deadline::after(budget), 0, 8, 2)
            .remaining()
            .expect("finite");
        assert!(first <= budget / 4 + tol, "first-wave slice {first:?}");
        // the final wave gets the whole live remainder, not 1/8 of it
        let last = RasaPipeline::parallel_slice_deadline(Deadline::after(budget), 7, 8, 2)
            .remaining()
            .expect("finite");
        assert!(last > budget / 2, "last-wave slice {last:?}");
        // consumed budget stays consumed for later slots
        assert!(
            RasaPipeline::parallel_slice_deadline(Deadline::after(Duration::ZERO), 0, 3, 2)
                .expired()
        );
    }

    #[test]
    fn expired_global_deadline_degrades_all_subproblems_on_both_paths() {
        use std::time::Duration;
        // two disjoint affinity pairs → two subproblems; with the budget
        // already gone, BOTH paths must report every subproblem starved
        // (before the fix the parallel path handed workers the unexpired
        // remainder of whatever deadline state they observed)
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let s2 = b.add_service("c", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let s3 = b.add_service("d", 1, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(4, ResourceVec::cpu_mem(4.0, 4.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 2.0);
        b.add_affinity(s2, s3, 2.0);
        let p = b.build().unwrap();
        for parallel in [false, true] {
            let run = RasaPipeline::new(RasaConfig {
                parallel,
                ..Default::default()
            })
            .optimize(&p, None, Deadline::after(Duration::ZERO));
            assert!(!run.subproblems.is_empty());
            for (i, r) in run.subproblems.iter().enumerate() {
                assert_eq!(
                    r.status,
                    SolveStatus::DeadlineExpired,
                    "parallel={parallel} subproblem={i}"
                );
            }
            assert!(validate(&p, &run.outcome.placement, true).is_empty());
        }
    }

    #[test]
    fn identical_round_replays_entirely_from_cache() {
        let p = pair_problem();
        let pipeline = RasaPipeline::default();
        let cache = SolveCache::new();
        let cold = pipeline.optimize_with_cache(&p, None, Deadline::none(), Some(&cache));
        let cold_stats = cold.cache.expect("stats with cache");
        assert_eq!(cold_stats.hits, 0);
        assert_eq!(cold_stats.misses, 1);
        assert!(!cold.subproblems[0].cache_hit);
        assert_eq!(cache.len(), 1);

        let warm = pipeline.optimize_with_cache(&p, None, Deadline::none(), Some(&cache));
        let warm_stats = warm.cache.expect("stats with cache");
        assert_eq!(warm_stats.hits, 1);
        assert_eq!(warm_stats.misses, 0);
        assert_eq!(warm_stats.invalidations, 0);
        assert!(warm.subproblems[0].cache_hit);
        assert_eq!(warm.subproblems[0].algorithm, cold.subproblems[0].algorithm);
        assert!(
            (warm.outcome.gained_affinity - cold.outcome.gained_affinity).abs() < 1e-12,
            "replayed round must reproduce the cold objective"
        );
        assert!(validate(&p, &warm.outcome.placement, true).is_empty());
    }

    #[test]
    fn cacheless_runs_report_no_cache_stats() {
        let p = pair_problem();
        let run = RasaPipeline::default().optimize(&p, None, Deadline::none());
        assert!(run.cache.is_none());
        assert!(run.subproblems.iter().all(|r| !r.cache_hit));
    }

    #[test]
    fn degraded_solves_are_not_cached() {
        // a starved subproblem must not poison the cache with its fallback
        // placement: the next round should re-solve it for real
        let p = pair_problem();
        let cache = SolveCache::new();
        let starved = RasaPipeline::new(RasaConfig {
            fault_injection: FaultInjection::StarveSubproblems(vec![0]),
            ..Default::default()
        });
        let run = starved.optimize_with_cache(&p, None, Deadline::none(), Some(&cache));
        assert!(run.is_degraded());
        assert!(cache.is_empty(), "degraded result must not be stored");

        let healthy = RasaPipeline::default();
        let rerun = healthy.optimize_with_cache(&p, None, Deadline::none(), Some(&cache));
        let stats = rerun.cache.expect("stats with cache");
        assert_eq!(stats.hits, 0, "nothing cached → nothing replayed");
        assert!(!rerun.is_degraded());
    }

    #[test]
    fn changed_problem_invalidates_stale_entries() {
        // doubling an affinity weight changes every subproblem fingerprint,
        // so round two must miss and evict the round-one entry
        let p = pair_problem();
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 8.0);
        let p2 = b.build().unwrap();

        let pipeline = RasaPipeline::default();
        let cache = SolveCache::new();
        pipeline.optimize_with_cache(&p, None, Deadline::none(), Some(&cache));
        let run2 = pipeline.optimize_with_cache(&p2, None, Deadline::none(), Some(&cache));
        let stats = run2.cache.expect("stats with cache");
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 1);
        assert!(
            stats.invalidations >= 1,
            "round-one entry keyed by the old fingerprint must be evicted"
        );
    }

    #[test]
    fn disabled_completion_leaves_trivial_services_out() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 1, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_service("trivial", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        let p = b.build().unwrap();
        let run = RasaPipeline::new(RasaConfig {
            complete: false,
            ..Default::default()
        })
        .optimize(&p, None, Deadline::none());
        assert_eq!(
            run.outcome.placement.placed_count(rasa_model::ServiceId(2)),
            0,
            "trivial service untouched without completion"
        );
    }

    #[test]
    fn admission_gate_quarantines_poisoned_service_and_solves_the_rest() {
        // one poisoned service must not take the round down: the gate
        // quarantines it, the healthy remainder is solved, and the report
        // names the quarantined id (satellite: quarantine semantics)
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_service("poisoned", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 4.0);
        let mut p = b.build().unwrap();
        // corruption that bypasses the builder (e.g. a deserialized file)
        p.services[2].demand = rasa_model::ResourceVec::new(f64::NAN, 1.0, 0.0, 0.0);

        let run = RasaPipeline::default().optimize(&p, None, Deadline::none());
        let report = run.admission.as_ref().expect("admission on by default");
        assert!(!report.is_clean());
        assert_eq!(
            report.quarantined_services,
            vec![rasa_model::ServiceId(2)],
            "the poisoned service is named in the report"
        );
        assert!(!run.is_degraded(), "healthy remainder solves normally");
        assert_eq!(
            run.outcome.placement.placed_count(rasa_model::ServiceId(2)),
            0,
            "quarantined service gets no replicas"
        );
        assert!(
            run.outcome.gained_affinity > 0.0,
            "healthy pair still gains affinity"
        );
        // the merged placement certifies against the repaired problem
        let (repaired, _) = ProblemValidator::new().admit(&p);
        let repaired = repaired.expect("repair happened");
        assert!(validate(&repaired, &run.outcome.placement, true).is_empty());
    }

    #[test]
    fn admission_gate_can_be_disabled() {
        let p = pair_problem();
        let run = RasaPipeline::new(RasaConfig {
            admission: false,
            ..Default::default()
        })
        .optimize(&p, None, Deadline::none());
        assert!(run.admission.is_none());
        let on = RasaPipeline::default().optimize(&p, None, Deadline::none());
        assert!(on.admission.expect("report").is_clean());
    }

    #[test]
    fn poisoned_cache_entry_is_rejected_and_resolved() {
        // Gate 2 on the replay path: mutate the cached entry between
        // rounds; the warm round must re-solve instead of replaying it
        let p = pair_problem();
        let pipeline = RasaPipeline::default();
        let cache = SolveCache::new();
        let cold = pipeline.optimize_with_cache(&p, None, Deadline::none(), Some(&cache));
        let fps = cache.fingerprints();
        assert_eq!(fps.len(), 1);
        let mut entry = cache.lookup(fps[0]).expect("cached");
        entry.gained_affinity += 100.0; // claimed objective no longer matches
        cache.store(fps[0], entry);

        let warm = pipeline.optimize_with_cache(&p, None, Deadline::none(), Some(&cache));
        let stats = warm.cache.expect("stats with cache");
        assert_eq!(stats.hits, 0, "poisoned entry must not replay");
        assert_eq!(stats.misses, 1);
        assert!(!warm.subproblems[0].cache_hit);
        assert!(
            (warm.outcome.gained_affinity - cold.outcome.gained_affinity).abs() < 1e-9,
            "re-solve reproduces the honest objective"
        );
        // the fresh solve overwrote the poisoned entry, so round 3 replays
        let round3 = pipeline.optimize_with_cache(&p, None, Deadline::none(), Some(&cache));
        assert_eq!(round3.cache.expect("stats").hits, 1);
    }
}
