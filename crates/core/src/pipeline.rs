//! The RASA pipeline: partition → select → solve (in parallel) → combine →
//! complete → (optionally) plan the migration.

use crate::selector_choice::SelectorChoice;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa_lp::Deadline;
use rasa_migrate::{plan_migration, MigrateConfig, MigrateError, MigrationPlan};
use rasa_model::{ContainerAssignment, Placement, Problem};
use rasa_partition::{
    partition_with_strategy, PartitionConfig, PartitionOutcome, PartitionStrategy, Subproblem,
};
use rasa_select::PoolAlgorithm;
use rasa_solver::{
    complete_placement, CgOptions, ColumnGeneration, MipBased, MipBasedOptions, ScheduleOutcome,
    Scheduler,
};
use std::time::Instant;

/// Full pipeline configuration.
#[derive(Clone, Debug)]
pub struct RasaConfig {
    /// Partitioning strategy (the paper's multi-stage by default; the
    /// others exist for the Fig 6 ablation).
    pub strategy: PartitionStrategy,
    /// Partitioning knobs.
    pub partition: PartitionConfig,
    /// Algorithm-selection strategy (Fig 8).
    pub selector: SelectorChoice,
    /// Options for the MIP-based pool member.
    pub mip: MipBasedOptions,
    /// Options for the column-generation pool member.
    pub cg: CgOptions,
    /// Solve subproblems on parallel threads (the paper solves each
    /// subproblem independently, which is embarrassingly parallel).
    pub parallel: bool,
    /// Place trivial/leftover containers with the completion pass so the
    /// final mapping satisfies the SLA.
    pub complete: bool,
    /// Seed for the partitioner's randomized stage.
    pub seed: u64,
}

impl Default for RasaConfig {
    fn default() -> Self {
        // pool members skip their own completion pass; the pipeline runs
        // one global pass at the end
        let mut mip = MipBasedOptions::default();
        mip.complete = false;
        let mut cg = CgOptions::default();
        cg.complete = false;
        RasaConfig {
            strategy: PartitionStrategy::MultiStage,
            partition: PartitionConfig::default(),
            selector: SelectorChoice::default(),
            mip,
            cg,
            parallel: true,
            complete: true,
            seed: 0,
        }
    }
}

/// Per-subproblem report.
#[derive(Clone, Debug)]
pub struct SubproblemReport {
    /// Services in the subproblem.
    pub services: usize,
    /// Machines assigned to it.
    pub machines: usize,
    /// Which pool algorithm the selector chose.
    pub algorithm: PoolAlgorithm,
    /// Gained affinity achieved inside the subproblem (absolute units).
    pub gained_affinity: f64,
    /// Whether the algorithm ran to completion within its deadline.
    pub completed: bool,
}

/// Result of one pipeline run.
#[derive(Clone, Debug)]
pub struct RasaRun {
    /// The merged, completed schedule with objective values.
    pub outcome: ScheduleOutcome,
    /// Partitioning statistics (loss, stage counts, timing).
    pub partition: rasa_partition::stages::PartitionStats,
    /// Affinity weight lost to the partition boundaries.
    pub partition_loss: f64,
    /// One report per subproblem.
    pub subproblems: Vec<SubproblemReport>,
}

/// The RASA optimizer.
#[derive(Clone, Debug, Default)]
pub struct RasaPipeline {
    /// Configuration.
    pub config: RasaConfig,
}

impl RasaPipeline {
    /// A pipeline with the given configuration.
    pub fn new(config: RasaConfig) -> Self {
        RasaPipeline { config }
    }

    /// Run partition → select → solve → combine. `current` is the running
    /// placement (used to shrink machine capacities under trivial
    /// services); pass `None` when planning a cluster from scratch.
    pub fn optimize(
        &self,
        problem: &Problem,
        current: Option<&Placement>,
        deadline: Deadline,
    ) -> RasaRun {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let partition: PartitionOutcome = partition_with_strategy(
            problem,
            current,
            self.config.strategy,
            &self.config.partition,
            &mut rng,
        );

        // decide the algorithm per subproblem up front (cheap)
        let choices: Vec<PoolAlgorithm> = partition
            .subproblems
            .iter()
            .map(|sub| self.config.selector.select(&sub.problem))
            .collect();

        // solve
        let solved: Vec<ScheduleOutcome> = if self.config.parallel {
            self.solve_parallel(&partition.subproblems, &choices, deadline)
        } else {
            self.solve_sequential(&partition.subproblems, &choices, deadline)
        };

        // combine
        let mut placement = Placement::empty_for(problem);
        let mut reports = Vec::with_capacity(solved.len());
        for ((sub, outcome), &alg) in partition.subproblems.iter().zip(&solved).zip(&choices) {
            placement.merge_subplacement(
                &outcome.placement,
                &sub.mapping.service_to_parent,
                &sub.mapping.machine_to_parent,
            );
            reports.push(SubproblemReport {
                services: sub.problem.num_services(),
                machines: sub.problem.num_machines(),
                algorithm: alg,
                gained_affinity: outcome.gained_affinity,
                completed: outcome.completed,
            });
        }

        if self.config.complete {
            complete_placement(problem, &mut placement);
        }
        let completed = reports.iter().all(|r| r.completed);
        let outcome = ScheduleOutcome::evaluate(problem, placement, start.elapsed(), completed);
        RasaRun {
            outcome,
            partition: partition.stats,
            partition_loss: partition.affinity_loss,
            subproblems: reports,
        }
    }

    /// The full Fig 3 workflow: optimize, then compute the executable
    /// migration path from the running assignment to the new mapping.
    pub fn optimize_and_plan(
        &self,
        problem: &Problem,
        current: &ContainerAssignment,
        deadline: Deadline,
        migrate: &MigrateConfig,
    ) -> Result<(RasaRun, MigrationPlan), MigrateError> {
        let run = self.optimize(problem, Some(&current.to_placement()), deadline);
        let plan = plan_migration(problem, current, &run.outcome.placement, migrate)?;
        Ok((run, plan))
    }

    fn solve_one(
        &self,
        sub: &Subproblem,
        alg: PoolAlgorithm,
        deadline: Deadline,
    ) -> ScheduleOutcome {
        match alg {
            PoolAlgorithm::Mip => MipBased {
                options: self.config.mip.clone(),
            }
            .schedule(&sub.problem, deadline),
            PoolAlgorithm::Cg => ColumnGeneration {
                options: self.config.cg.clone(),
            }
            .schedule(&sub.problem, deadline),
        }
    }

    fn solve_sequential(
        &self,
        subs: &[Subproblem],
        choices: &[PoolAlgorithm],
        deadline: Deadline,
    ) -> Vec<ScheduleOutcome> {
        let mut out = Vec::with_capacity(subs.len());
        for (i, (sub, &alg)) in subs.iter().zip(choices).enumerate() {
            // split the remaining budget evenly over the remaining subproblems
            let slice = match deadline.remaining() {
                Some(rem) => deadline.min_with(rem / (subs.len() - i).max(1) as u32),
                None => Deadline::none(),
            };
            out.push(self.solve_one(sub, alg, slice));
        }
        out
    }

    fn solve_parallel(
        &self,
        subs: &[Subproblem],
        choices: &[PoolAlgorithm],
        deadline: Deadline,
    ) -> Vec<ScheduleOutcome> {
        if subs.is_empty() {
            return Vec::new();
        }
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(subs.len());
        if threads <= 1 {
            // one worker means serial execution anyway; sequential slicing
            // splits the budget fairly instead of letting the first
            // subproblem starve the rest
            return self.solve_sequential(subs, choices, deadline);
        }
        let slots: Vec<slot::Slot<ScheduleOutcome>> =
            (0..subs.len()).map(|_| slot::Slot::new()).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                let next = &next;
                let slots = &slots;
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= subs.len() {
                        break;
                    }
                    slots[i].set(self.solve_one(&subs[i], choices[i], deadline));
                });
            }
        })
        .expect("worker threads do not panic");
        slots
            .into_iter()
            .map(|s| s.take().expect("every subproblem was solved"))
            .collect()
    }
}

/// Tiny one-shot cell used to collect results from scoped worker threads.
mod slot {
    use parking_lot::Mutex;

    pub struct Slot<T>(Mutex<Option<T>>);

    impl<T> Slot<T> {
        pub fn new() -> Self {
            Slot(Mutex::new(None))
        }

        pub fn set(&self, value: T) {
            *self.0.lock() = Some(value);
        }

        pub fn take(&self) -> Option<T> {
            self.0.lock().take()
        }
    }
}

impl Scheduler for RasaPipeline {
    fn name(&self) -> &'static str {
        "RASA"
    }

    fn schedule(&self, problem: &Problem, deadline: Deadline) -> ScheduleOutcome {
        self.optimize(problem, None, deadline).outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{validate, FeatureMask, ProblemBuilder, ResourceVec};

    fn pair_problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 4.0);
        b.build().unwrap()
    }

    #[test]
    fn optimize_reports_one_subproblem_for_a_pair() {
        let p = pair_problem();
        let run = RasaPipeline::default().optimize(&p, None, Deadline::none());
        assert_eq!(run.subproblems.len(), 1);
        assert_eq!(run.subproblems[0].services, 2);
        assert!(run.subproblems[0].completed);
        assert!((run.outcome.normalized_gained_affinity - 1.0).abs() < 1e-6);
        assert!(validate(&p, &run.outcome.placement, true).is_empty());
    }

    #[test]
    fn empty_problem_is_handled() {
        let p = ProblemBuilder::new().build().unwrap();
        let run = RasaPipeline::default().optimize(&p, None, Deadline::none());
        assert!(run.subproblems.is_empty());
        assert_eq!(run.outcome.gained_affinity, 0.0);
    }

    #[test]
    fn problem_without_edges_goes_entirely_to_completion() {
        let mut b = ProblemBuilder::new();
        b.add_service("solo", 3, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let run = RasaPipeline::default().optimize(&p, None, Deadline::none());
        assert!(
            run.subproblems.is_empty(),
            "no affinity → no crucial subproblems"
        );
        assert!(
            validate(&p, &run.outcome.placement, true).is_empty(),
            "SLA via completion"
        );
    }

    #[test]
    fn scheduler_trait_matches_optimize() {
        let p = pair_problem();
        let pipeline = RasaPipeline::default();
        let via_trait = pipeline.schedule(&p, Deadline::none());
        let via_optimize = pipeline.optimize(&p, None, Deadline::none()).outcome;
        assert!((via_trait.gained_affinity - via_optimize.gained_affinity).abs() < 1e-9);
        assert_eq!(pipeline.name(), "RASA");
    }

    #[test]
    fn disabled_completion_leaves_trivial_services_out() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 1, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_service("trivial", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        let p = b.build().unwrap();
        let run = RasaPipeline::new(RasaConfig {
            complete: false,
            ..Default::default()
        })
        .optimize(&p, None, Deadline::none());
        assert_eq!(
            run.outcome.placement.placed_count(rasa_model::ServiceId(2)),
            0,
            "trivial service untouched without completion"
        );
    }
}
