//! Correctness tests for the bounded-variable simplex against textbook
//! LPs with known optima, plus degenerate / infeasible / unbounded cases.

use rasa_lp::{Deadline, LpModel, LpStatus, SimplexOptions};
use std::time::Duration;

const TOL: f64 = 1e-6;

fn assert_close(a: f64, b: f64) {
    assert!((a - b).abs() < TOL, "expected {b}, got {a}");
}

#[test]
fn basic_two_var_lp() {
    // max 3x + 2y ; x + y <= 4 ; x <= 2 ; x,y >= 0  →  x=2, y=2, obj=10
    let mut m = LpModel::new();
    let x = m.add_var(0.0, f64::INFINITY, 3.0);
    let y = m.add_var(0.0, f64::INFINITY, 2.0);
    m.add_row_le(vec![(x, 1.0), (y, 1.0)], 4.0);
    m.add_row_le(vec![(x, 1.0)], 2.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 10.0);
    assert_close(sol.x[0], 2.0);
    assert_close(sol.x[1], 2.0);
    assert!(sol.feasible);
}

#[test]
fn classic_production_lp() {
    // max 5x + 4y ; 6x + 4y <= 24 ; x + 2y <= 6 → x=3, y=1.5, obj=21
    let mut m = LpModel::new();
    let x = m.add_var(0.0, f64::INFINITY, 5.0);
    let y = m.add_var(0.0, f64::INFINITY, 4.0);
    m.add_row_le(vec![(x, 6.0), (y, 4.0)], 24.0);
    m.add_row_le(vec![(x, 1.0), (y, 2.0)], 6.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 21.0);
    assert_close(sol.x[0], 3.0);
    assert_close(sol.x[1], 1.5);
}

#[test]
fn equality_constraints_need_phase1() {
    // max x + y ; x + y == 3 ; x - y == 1 → x=2, y=1, obj=3
    let mut m = LpModel::new();
    let x = m.add_var(0.0, f64::INFINITY, 1.0);
    let y = m.add_var(0.0, f64::INFINITY, 1.0);
    m.add_row_eq(vec![(x, 1.0), (y, 1.0)], 3.0);
    m.add_row_eq(vec![(x, 1.0), (y, -1.0)], 1.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 3.0);
    assert_close(sol.x[0], 2.0);
    assert_close(sol.x[1], 1.0);
}

#[test]
fn ge_rows() {
    // max -x - y (i.e. min x + y); x + 2y >= 4; 3x + y >= 6 → x=1.6, y=1.2
    let mut m = LpModel::new();
    let x = m.add_var(0.0, f64::INFINITY, -1.0);
    let y = m.add_var(0.0, f64::INFINITY, -1.0);
    m.add_row_ge(vec![(x, 1.0), (y, 2.0)], 4.0);
    m.add_row_ge(vec![(x, 3.0), (y, 1.0)], 6.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, -2.8);
    assert_close(sol.x[0], 1.6);
    assert_close(sol.x[1], 1.2);
}

#[test]
fn upper_bounded_variables_flip() {
    // max x + y with x,y in [0, 1]; x + y <= 1.5 → obj 1.5
    let mut m = LpModel::new();
    let x = m.add_var(0.0, 1.0, 1.0);
    let y = m.add_var(0.0, 1.0, 1.0);
    m.add_row_le(vec![(x, 1.0), (y, 1.0)], 1.5);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 1.5);
}

#[test]
fn negative_lower_bounds() {
    // max x ; x in [-5, -1] → x = -1
    let mut m = LpModel::new();
    let x = m.add_var(-5.0, -1.0, 1.0);
    m.add_row_le(vec![(x, 1.0)], 10.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.x[0], -1.0);
}

#[test]
fn free_variable() {
    // max -|x| style: max -y ; y >= x ; y >= -x ; x free → x=0, y=0
    let mut m = LpModel::new();
    let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 0.0);
    let y = m.add_var(0.0, f64::INFINITY, -1.0);
    m.add_row_le(vec![(x, 1.0), (y, -1.0)], 0.0);
    m.add_row_le(vec![(x, -1.0), (y, -1.0)], 0.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 0.0);
}

#[test]
fn free_variable_with_negative_optimum() {
    // max -x, x free, x >= -7 → x = -7, obj = 7
    let mut m = LpModel::new();
    let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, -1.0);
    m.add_row_ge(vec![(x, 1.0)], -7.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 7.0);
    assert_close(sol.x[0], -7.0);
}

#[test]
fn infeasible_system_detected() {
    // x <= 1 and x >= 2
    let mut m = LpModel::new();
    let x = m.add_var(0.0, f64::INFINITY, 1.0);
    m.add_row_le(vec![(x, 1.0)], 1.0);
    m.add_row_ge(vec![(x, 1.0)], 2.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Infeasible);
    assert!(!sol.feasible);
}

#[test]
fn infeasible_equalities_detected() {
    let mut m = LpModel::new();
    let x = m.add_var(0.0, f64::INFINITY, 1.0);
    let y = m.add_var(0.0, f64::INFINITY, 1.0);
    m.add_row_eq(vec![(x, 1.0), (y, 1.0)], 1.0);
    m.add_row_eq(vec![(x, 1.0), (y, 1.0)], 2.0);
    assert_eq!(m.solve().status, LpStatus::Infeasible);
}

#[test]
fn unbounded_detected() {
    // max x ; x - y <= 1 ; both >= 0 → ray (t+1, t)
    let mut m = LpModel::new();
    let x = m.add_var(0.0, f64::INFINITY, 1.0);
    let y = m.add_var(0.0, f64::INFINITY, 0.0);
    m.add_row_le(vec![(x, 1.0), (y, -1.0)], 1.0);
    assert_eq!(m.solve().status, LpStatus::Unbounded);
}

#[test]
fn no_rows_bound_optimization() {
    let mut m = LpModel::new();
    m.add_var(0.0, 3.0, 2.0);
    m.add_var(-1.0, 5.0, -1.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 7.0);
    assert_close(sol.x[0], 3.0);
    assert_close(sol.x[1], -1.0);
}

#[test]
fn no_rows_unbounded() {
    let mut m = LpModel::new();
    m.add_var(0.0, f64::INFINITY, 1.0);
    assert_eq!(m.solve().status, LpStatus::Unbounded);
}

#[test]
fn degenerate_lp_terminates() {
    // Beale's classic cycling example (min form, negated to max).
    // min -0.75x4 + 150x5 - 0.02x6 + 6x7
    let mut m = LpModel::new();
    let x4 = m.add_var(0.0, f64::INFINITY, 0.75);
    let x5 = m.add_var(0.0, f64::INFINITY, -150.0);
    let x6 = m.add_var(0.0, f64::INFINITY, 0.02);
    let x7 = m.add_var(0.0, f64::INFINITY, -6.0);
    m.add_row_le(vec![(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)], 0.0);
    m.add_row_le(vec![(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)], 0.0);
    m.add_row_le(vec![(x6, 1.0)], 1.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 0.05);
}

#[test]
fn duals_satisfy_strong_duality_on_le_problem() {
    // max cᵀx, Ax <= b, x >= 0 — at optimum bᵀy == cᵀx and y >= 0.
    let mut m = LpModel::new();
    let x = m.add_var(0.0, f64::INFINITY, 3.0);
    let y = m.add_var(0.0, f64::INFINITY, 5.0);
    m.add_row_le(vec![(x, 1.0)], 4.0);
    m.add_row_le(vec![(y, 2.0)], 12.0);
    m.add_row_le(vec![(x, 3.0), (y, 2.0)], 18.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 36.0); // x=2, y=6
    let dual_obj = 4.0 * sol.duals[0] + 12.0 * sol.duals[1] + 18.0 * sol.duals[2];
    assert_close(dual_obj, sol.objective);
    assert!(sol.duals.iter().all(|&d| d >= -TOL));
}

#[test]
fn redundant_rows_are_harmless() {
    let mut m = LpModel::new();
    let x = m.add_var(0.0, f64::INFINITY, 1.0);
    for _ in 0..5 {
        m.add_row_le(vec![(x, 1.0)], 7.0);
    }
    m.add_row_le(vec![(x, 2.0)], 100.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.x[0], 7.0);
}

#[test]
fn fixed_variable_is_respected() {
    let mut m = LpModel::new();
    let x = m.add_var(2.0, 2.0, 10.0);
    let y = m.add_var(0.0, f64::INFINITY, 1.0);
    m.add_row_le(vec![(x, 1.0), (y, 1.0)], 5.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.x[0], 2.0);
    assert_close(sol.x[1], 3.0);
    assert_close(sol.objective, 23.0);
}

#[test]
fn expired_deadline_stops_early() {
    let mut m = LpModel::new();
    let vars: Vec<_> = (0..40).map(|_| m.add_var(0.0, 10.0, 1.0)).collect();
    for i in 0..40 {
        let coeffs = (0..40)
            .map(|j| (vars[j], if i == j { 2.0 } else { 0.1 }))
            .collect();
        m.add_row_le(coeffs, 15.0);
    }
    let sol = m.solve_with(&SimplexOptions::default(), Deadline::after(Duration::ZERO));
    assert_eq!(sol.status, LpStatus::IterationLimit);
}

#[test]
fn iteration_limit_is_honored() {
    let mut m = LpModel::new();
    let vars: Vec<_> = (0..30).map(|_| m.add_var(0.0, 10.0, 1.0)).collect();
    for i in 0..30 {
        let coeffs = (0..30)
            .map(|j| (vars[j], if i == j { 2.0 } else { 0.1 }))
            .collect();
        m.add_row_le(coeffs, 15.0);
    }
    let opts = SimplexOptions {
        max_iterations: 2,
        ..Default::default()
    };
    let sol = m.solve_with(&opts, Deadline::none());
    assert!(sol.iterations <= 2);
}

#[test]
fn transportation_problem() {
    // 2 supplies (10, 20), 3 demands (7, 12, 11); min cost == max -cost.
    // costs: [[2,3,1],[5,4,8]]
    let mut m = LpModel::new();
    let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
    let mut v = [[rasa_lp::VarId(0); 3]; 2];
    for i in 0..2 {
        for j in 0..3 {
            v[i][j] = m.add_var(0.0, f64::INFINITY, -costs[i][j]);
        }
    }
    m.add_row_le(vec![(v[0][0], 1.0), (v[0][1], 1.0), (v[0][2], 1.0)], 10.0);
    m.add_row_le(vec![(v[1][0], 1.0), (v[1][1], 1.0), (v[1][2], 1.0)], 20.0);
    m.add_row_eq(vec![(v[0][0], 1.0), (v[1][0], 1.0)], 7.0);
    m.add_row_eq(vec![(v[0][1], 1.0), (v[1][1], 1.0)], 12.0);
    m.add_row_eq(vec![(v[0][2], 1.0), (v[1][2], 1.0)], 11.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    // optimal: x[0][2] = 10 (rest of demand 3 from supply 2? recompute):
    // cheapest for d3 is s1 (1). s1 capacity 10 → all to d3 (10), d3 remainder 1 from s2 (8).
    // d1: s1 exhausted → s2 cost 5 × 7. d2: s2 cost 4 × 12.
    // total = 10*1 + 1*8 + 7*5 + 12*4 = 10+8+35+48 = 101
    assert_close(sol.objective, -101.0);
}

#[test]
fn larger_random_like_knapsack_relaxation() {
    // max Σ v_i x_i ; Σ w_i x_i <= W ; 0 <= x_i <= 1 — LP solution is the
    // greedy fractional knapsack, verify against it.
    let values = [60.0, 100.0, 120.0, 30.0, 75.0];
    let weights = [10.0, 20.0, 30.0, 5.0, 15.0];
    let cap = 40.0;
    let mut m = LpModel::new();
    let vars: Vec<_> = values.iter().map(|&val| m.add_var(0.0, 1.0, val)).collect();
    m.add_row_le(
        vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
        cap,
    );
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    // density: 6, 5, 4, 6, 5 → take items 0 (10), 3 (5), then 1 (20), then 5/15 of 4
    let expected = 60.0 + 30.0 + 100.0 + 75.0 * (5.0 / 15.0);
    assert_close(sol.objective, expected);
}

#[test]
fn equality_with_bounded_vars() {
    // max 2a + b ; a + b == 10 ; a in [0, 4], b in [0, 8] → a=4, b=6, obj=14
    let mut m = LpModel::new();
    let a = m.add_var(0.0, 4.0, 2.0);
    let b = m.add_var(0.0, 8.0, 1.0);
    m.add_row_eq(vec![(a, 1.0), (b, 1.0)], 10.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 14.0);
    assert_close(sol.x[0], 4.0);
    assert_close(sol.x[1], 6.0);
}

#[test]
fn equality_infeasible_due_to_bounds() {
    // a + b == 10 with a,b in [0,4] — impossible
    let mut m = LpModel::new();
    let a = m.add_var(0.0, 4.0, 1.0);
    let b = m.add_var(0.0, 4.0, 1.0);
    m.add_row_eq(vec![(a, 1.0), (b, 1.0)], 10.0);
    assert_eq!(m.solve().status, LpStatus::Infeasible);
}

#[test]
fn moderately_large_dense_lp() {
    // max Σ x_i ; per-row capacity: x_i + 0.5 Σ x <= 10 over 60 rows/vars.
    let n = 60;
    let mut m = LpModel::new();
    let vars: Vec<_> = (0..n).map(|_| m.add_var(0.0, f64::INFINITY, 1.0)).collect();
    for i in 0..n {
        let coeffs: Vec<_> = (0..n)
            .map(|j| (vars[j], if i == j { 1.5 } else { 0.5 }))
            .collect();
        m.add_row_le(coeffs, 10.0);
    }
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    // symmetric optimum: each row: 1.5x + 0.5(n-1)x = 10 → x = 10/31; obj = 60 × 10/31
    let x = 10.0 / (1.5 + 0.5 * (n as f64 - 1.0));
    assert!(
        (sol.objective - n as f64 * x).abs() < 1e-4,
        "obj {}",
        sol.objective
    );
}
