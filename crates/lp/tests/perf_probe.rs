//! Whole-solve kernel cost probe: sparse LU path vs the dense reference
//! on the two LP shapes the pipeline actually solves in bulk (tiny
//! knapsack-relaxation pricing LPs and CG master LPs), cold and
//! warm-started. Complements the criterion micro-benches (`lu_*` in
//! `rasa-bench`), which time factorize/ftran/btran in isolation.
//!
//! Ignored by default — it prints timings rather than asserting. Run on a
//! quiet machine with:
//!
//! ```sh
//! cargo test --release -p rasa-lp --test perf_probe -- --ignored --nocapture
//! ```

use rasa_lp::time::Deadline;
use rasa_lp::{LpModel, SimplexOptions};
use std::time::Instant;

fn cg_master_like(n_patterns: usize, rows: usize, seed: u64) -> LpModel {
    let mut m = LpModel::new();
    let mut s = seed;
    let mut rnd = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64) / (u32::MAX as f64)
    };
    let vars: Vec<_> = (0..n_patterns)
        .map(|_| m.add_var(0.0, 1.0, 1.0 + rnd() * 4.0))
        .collect();
    for r in 0..rows {
        let mut entries = Vec::new();
        for (j, &v) in vars.iter().enumerate() {
            let p = rnd();
            if (j + r) % (rows / 2 + 1) == 0 || p < 0.08 {
                entries.push((v, 0.5 + rnd()));
            }
        }
        m.add_row_le(entries, 2.0 + rnd() * 6.0);
    }
    m
}

fn knapsack_like(n: usize, seed: u64) -> LpModel {
    let mut m = LpModel::new();
    let mut s = seed;
    let mut rnd = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64) / (u32::MAX as f64)
    };
    let vars: Vec<_> = (0..n).map(|_| m.add_var(0.0, 1.0, 10.0 + rnd() * 80.0)).collect();
    m.add_row_le(
        vars.iter().map(|&v| (v, 10.0 + rnd() * 70.0)).collect::<Vec<_>>(),
        (n as f64) * 15.0,
    );
    m
}

#[test]
#[ignore]
fn probe() {
    let opts = SimplexOptions::default();
    for (name, model) in [
        ("knapsack_16x1", knapsack_like(16, 7)),
        ("master_200x12", cg_master_like(200, 12, 9)),
        ("master_800x24", cg_master_like(800, 24, 11)),
    ] {
        // cold
        let reps = 300;
        let t0 = Instant::now();
        let mut sparse_obj = 0.0;
        for _ in 0..reps {
            let sol = model.solve_with(&opts, Deadline::none());
            sparse_obj = sol.objective;
        }
        let sparse_cold = t0.elapsed().as_secs_f64() / reps as f64;
        let t0 = Instant::now();
        let mut dense_obj = 0.0;
        for _ in 0..reps {
            let sol = rasa_lp::dense::solve_dense(&model, &opts, Deadline::none(), None);
            dense_obj = sol.objective;
        }
        let dense_cold = t0.elapsed().as_secs_f64() / reps as f64;

        // warm re-solve from own basis
        let sb = model.solve_with(&opts, Deadline::none()).basis.unwrap();
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = model.solve_warm(&opts, Deadline::none(), Some(&sb));
        }
        let sparse_warm = t0.elapsed().as_secs_f64() / reps as f64;
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = rasa_lp::dense::solve_dense(&model, &opts, Deadline::none(), Some(&sb));
        }
        let dense_warm = t0.elapsed().as_secs_f64() / reps as f64;
        let s1 = model.solve_with(&opts, Deadline::none());
        println!(
            "{name:15} cold sparse {:8.1}us dense {:8.1}us ({:.2}x) | warm sparse {:8.1}us dense {:8.1}us ({:.2}x) | iters {} obj d {:.2e}",
            sparse_cold * 1e6,
            dense_cold * 1e6,
            sparse_cold / dense_cold,
            sparse_warm * 1e6,
            dense_warm * 1e6,
            sparse_warm / dense_warm,
            s1.stats.phase2_iterations + s1.stats.phase1_iterations,
            (sparse_obj - dense_obj).abs()
        );
    }
}
