//! Regression tests for the LP numerics bugfix sweep:
//!
//! 1. the exit feasibility verdict used `feas_tol.max(1e-6) * 10.0` — 10×
//!    looser than the tolerance the phases pivoted against, so the solver
//!    could declare Optimal+feasible a point `certify_placement` rejects;
//! 2. the ratio test broke degenerate ties by first-row order, never
//!    preferring the larger |pivot| (an instability source the Harris-style
//!    two-pass fixes);
//! 3. a singular warm-start refactorization silently cold-started with no
//!    counter or flight event, hiding warm-start decay from BENCH artifacts.

use rasa_lp::time::Deadline;
use rasa_lp::{LpModel, LpStatus, SimplexOptions};

/// Bugfix 1: an LP infeasible by 5e-7 — inside the old verdict's 1e-5
/// slack, an order outside the default `feas_tol` of 1e-7.
///
/// `x + y == 2 + 5e-7` with `x, y ∈ [0, 1]` caps `x + y` at exactly 2.
/// Phase 1 parks an artificial at 5e-7, which slipped past the old
/// hardcoded `> 1e-6` gate; the old exit verdict then blessed the point at
/// tolerance 1e-5 and returned Optimal+feasible.
#[test]
fn near_infeasible_lp_is_no_longer_blessed() {
    let mut m = LpModel::new();
    let x = m.add_var(0.0, 1.0, 1.0);
    let y = m.add_var(0.0, 1.0, 1.0);
    m.add_row_eq(vec![(x, 1.0), (y, 1.0)], 2.0 + 5e-7);

    // The best attainable point *is* inside the old loose tolerance — this
    // is exactly the point the old code wrongly accepted…
    assert!(m.is_feasible_point(&[1.0, 1.0], 1e-7f64.max(1e-6) * 10.0));
    // …and outside the tolerance the solve actually enforces.
    assert!(!m.is_feasible_point(&[1.0, 1.0], 1e-7));

    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Infeasible);
    assert!(!sol.feasible);
    assert!(sol.basis.is_none());

    // The retained dense reference kernel applies the same fix.
    let dense = rasa_lp::dense::solve_dense(&m, &SimplexOptions::default(), Deadline::none(), None);
    assert_eq!(dense.status, LpStatus::Infeasible);
    assert!(!dense.feasible);
}

/// Bugfix 1, verdict/point consistency: whenever the solver reports
/// `feasible`, the point must pass `is_feasible_point` at the same
/// `feas_tol` — no hidden slack between the two.
#[test]
fn feasible_verdict_matches_feas_tol_exactly() {
    let opts = SimplexOptions::default();
    let mut m = LpModel::new();
    let x = m.add_var(0.0, 4.0, 3.0);
    let y = m.add_var(0.0, 4.0, 2.0);
    m.add_row_le(vec![(x, 1.0), (y, 1.0)], 5.0);
    m.add_row_eq(vec![(x, 1.0), (y, -1.0)], 1.0);
    let sol = m.solve_with(&opts, Deadline::none());
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_eq!(sol.feasible, m.is_feasible_point(&sol.x, opts.feas_tol));
    assert!(sol.feasible);
}

/// Bugfix 2: a degenerate ratio-test tie between a 1e-6 pivot and a 1.0
/// pivot.
///
/// Maximize `x`, `x ∈ [0, 1]`, subject to `1e-6·x ≤ 0` (row 0) and
/// `x ≤ 0` (row 1). Both rows block at ratio exactly 0 when `x` enters.
/// The historical rule took whichever row came first — row 0, pivoting on
/// 1e-6 — while the Harris-style second pass picks row 1's pivot of 1.0.
/// The exported basis records which row `x` ended up basic in, so the two
/// rules are observably different.
#[test]
fn harris_ratio_test_prefers_the_large_pivot_on_degenerate_ties() {
    let mut m = LpModel::new();
    let x = m.add_var(0.0, 1.0, 1.0);
    m.add_row_le(vec![(x, 1e-6)], 0.0);
    m.add_row_le(vec![(x, 1.0)], 0.0);

    let sparse = m.solve();
    assert_eq!(sparse.status, LpStatus::Optimal);
    assert!(sparse.objective.abs() < 1e-9); // x pinned to 0
    let basis = sparse.basis.as_ref().expect("optimal solve exports basis");
    assert_eq!(
        basis.basic[1], 0,
        "sparse kernel should make x basic in row 1 (pivot 1.0), got basis {:?}",
        basis.basic
    );
    assert!(
        sparse.stats.harris_ties >= 1,
        "the degenerate tie must be counted: {:?}",
        sparse.stats
    );

    // The dense reference kernel keeps the historical first-row rule and
    // lands on the tiny pivot — the behaviour this fix removes.
    let dense = rasa_lp::dense::solve_dense(&m, &SimplexOptions::default(), Deadline::none(), None);
    assert_eq!(dense.status, LpStatus::Optimal);
    let dbasis = dense.basis.as_ref().expect("dense optimal exports basis");
    assert_eq!(
        dbasis.basic[0], 0,
        "dense kernel pivots in the first tied row, got basis {:?}",
        dbasis.basic
    );
    assert_eq!(dense.stats.harris_ties, 0);
}

/// Bugfix 3: a numerically singular warm-start basis must be *counted*
/// (`SimplexStats::refactor_singular` → `simplex.refactor_singular`), not
/// silently swallowed on the way to a cold start.
#[test]
fn singular_warm_basis_is_counted_not_silent() {
    // x and y have identical constraint columns, so a basis holding both
    // is structurally valid (right shape, no duplicates) but numerically
    // singular: B = [[1, 1], [1, 1]].
    let mut m = LpModel::new();
    let x = m.add_var(0.0, 1.0, 2.0);
    let y = m.add_var(0.0, 1.0, 1.0);
    m.add_row_le(vec![(x, 1.0), (y, 1.0)], 1.0);
    m.add_row_le(vec![(x, 1.0), (y, 1.0)], 2.0);

    let singular = rasa_lp::Basis {
        basic: vec![0, 1], // x basic in row 0, y basic in row 1
        at_upper: vec![false; 4],
    };
    let sol = m.solve_warm(&SimplexOptions::default(), Deadline::none(), Some(&singular));
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(sol.stats.warm_rejected, "singular basis must cold-start");
    assert!(!sol.stats.warm_accepted);
    assert_eq!(
        sol.stats.refactor_singular, 1,
        "the singularity must be counted: {:?}",
        sol.stats
    );

    // A healthy warm basis from the cold solve does not trip the counter.
    let warm = sol.basis.as_ref().expect("optimal solve exports basis");
    let resolve = m.solve_warm(&SimplexOptions::default(), Deadline::none(), Some(warm));
    assert!(resolve.stats.warm_accepted);
    assert_eq!(resolve.stats.refactor_singular, 0);
}
