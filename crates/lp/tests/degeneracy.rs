//! Anti-cycling regression: once degeneracy trips the switch to Bland's
//! rule, it must stay on for the remainder of the solve.
//!
//! The historical bug reset `use_bland` whenever the objective improved,
//! re-arming Dantzig pricing — and with it exactly the cycling risk the
//! switch exists to prevent.  On LPs that alternate stalled and improving
//! stretches the switch re-triggered once per stalled stretch, observable
//! as `bland_activations > 1` in the per-solve stats.

use rasa_lp::{Deadline, LpModel, LpStatus, SimplexOptions};

/// Builds an LP whose pivot sequence interleaves stalled and improving
/// iterations so a non-sticky switch re-triggers.
///
/// Variables `a`, `b`, `e` each sit under a `<= 0` row whose slack starts
/// basic at zero, so entering them is a degenerate (zero-ratio) pivot that
/// leaves the objective unchanged.  `c` and `d` sit under `<= 1` rows and
/// admit genuine improving pivots.  The objective coefficients order the
/// Dantzig picks as a(9), b(7), c(5), e(3), d(1), and the first iteration
/// always reads as progress (`last_obj` starts at -inf), so the solve runs:
///
/// 1. enter `a` — degenerate, but counted as progress (first iteration);
/// 2. enter `b` — degenerate stall, activates Bland's rule;
/// 3. enter `c` (lowest index under Bland) — improving: the old reset
///    re-armed Dantzig here;
/// 4. enter `e` — degenerate stall: a second activation under the old
///    reset, a no-op with the sticky switch;
/// 5. enter `d` — improving, then optimal at objective 6.
fn stall_improve_stall_lp() -> LpModel {
    let mut m = LpModel::new();
    let c = m.add_var(0.0, f64::INFINITY, 5.0);
    let a = m.add_var(0.0, f64::INFINITY, 9.0);
    let b = m.add_var(0.0, f64::INFINITY, 7.0);
    let e = m.add_var(0.0, f64::INFINITY, 3.0);
    let d = m.add_var(0.0, f64::INFINITY, 1.0);
    m.add_row_le(vec![(a, 1.0)], 0.0);
    m.add_row_le(vec![(b, 1.0)], 0.0);
    m.add_row_le(vec![(e, 1.0)], 0.0);
    m.add_row_le(vec![(c, 1.0)], 1.0);
    m.add_row_le(vec![(d, 1.0)], 1.0);
    m
}

#[test]
fn blands_rule_switch_is_sticky_across_improving_iterations() {
    let m = stall_improve_stall_lp();
    let options = SimplexOptions {
        degenerate_stall: 1, // switch on the first stalled iteration
        ..SimplexOptions::default()
    };
    let sol = m.solve_with(&options, Deadline::none());

    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.objective - 6.0).abs() < 1e-9, "obj = {}", sol.objective);

    // The first degenerate stall activates Bland's rule.  The improving
    // pivot that follows must NOT re-arm Dantzig: under the old reset, the
    // next degenerate stall activated the rule a second time.
    assert_eq!(
        sol.stats.bland_activations, 1,
        "Bland's rule re-armed after an improving iteration"
    );
    assert!(sol.stats.pivots >= 5, "pivots = {}", sol.stats.pivots);
}

#[test]
fn non_degenerate_solves_never_activate_blands_rule() {
    // maximize 3x + 2y  s.t.  x + y <= 4,  x <= 2 — every pivot improves.
    let mut m = LpModel::new();
    let x = m.add_var(0.0, f64::INFINITY, 3.0);
    let y = m.add_var(0.0, f64::INFINITY, 2.0);
    m.add_row_le(vec![(x, 1.0), (y, 1.0)], 4.0);
    m.add_row_le(vec![(x, 1.0)], 2.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_eq!(sol.stats.bland_activations, 0);
    assert!(sol.stats.pivots > 0);
}

#[test]
fn stats_split_iterations_between_phases() {
    // A >= row forces an artificial start, so phase 1 does real work.
    let mut m = LpModel::new();
    let x = m.add_var(0.0, 10.0, 1.0);
    let y = m.add_var(0.0, 10.0, 1.0);
    m.add_row_ge(vec![(x, 1.0), (y, 1.0)], 3.0);
    m.add_row_le(vec![(x, 1.0), (y, 1.0)], 8.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(sol.stats.phase1_iterations > 0);
    assert_eq!(
        sol.stats.phase1_iterations + sol.stats.phase2_iterations,
        sol.iterations
    );
}
