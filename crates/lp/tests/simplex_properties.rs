//! Property-based tests: on randomly generated LPs the simplex must
//! (a) return feasible points whenever it claims optimality,
//! (b) respect weak duality for `<=`-form problems,
//! (c) never beat the LP bound with any feasible sample point.

use proptest::prelude::*;
use rasa_lp::{LpModel, LpStatus};

/// A random `<=`-form LP with non-negative data — always feasible (x = 0)
/// and always bounded (every variable has a finite upper bound).
fn bounded_lp_strategy() -> impl Strategy<Value = LpModel> {
    let dims = (1usize..6, 1usize..6);
    dims.prop_flat_map(|(n, m)| {
        let objs = proptest::collection::vec(0.0f64..10.0, n);
        let uppers = proptest::collection::vec(0.5f64..5.0, n);
        let coeffs = proptest::collection::vec(proptest::collection::vec(0.0f64..3.0, n), m);
        let rhs = proptest::collection::vec(1.0f64..20.0, m);
        (objs, uppers, coeffs, rhs).prop_map(|(objs, uppers, coeffs, rhs)| {
            let mut model = LpModel::new();
            let vars: Vec<_> = objs
                .iter()
                .zip(&uppers)
                .map(|(&c, &u)| model.add_var(0.0, u, c))
                .collect();
            for (row, &b) in coeffs.iter().zip(&rhs) {
                let entries: Vec<_> = vars
                    .iter()
                    .zip(row)
                    .filter(|(_, &a)| a > 0.0)
                    .map(|(&v, &a)| (v, a))
                    .collect();
                if !entries.is_empty() {
                    model.add_row_le(entries, b);
                }
            }
            model
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn optimal_solutions_are_feasible(model in bounded_lp_strategy()) {
        let sol = model.solve();
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        prop_assert!(sol.feasible);
        prop_assert!(model.is_feasible_point(&sol.x, 1e-5));
        // objective matches the reported value
        let recomputed = model.objective_value(&sol.x);
        prop_assert!((recomputed - sol.objective).abs() < 1e-6);
    }

    #[test]
    fn weak_duality_holds(model in bounded_lp_strategy()) {
        let sol = model.solve();
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        // duals are non-negative for <= rows in a maximization
        for &d in &sol.duals {
            prop_assert!(d >= -1e-6, "negative dual {}", d);
        }
    }

    #[test]
    fn zero_point_never_beats_optimum(model in bounded_lp_strategy()) {
        let sol = model.solve();
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        // x = 0 is feasible for this family; its objective (0, since all
        // c >= 0 and x = 0) must not exceed the reported optimum.
        prop_assert!(sol.objective >= -1e-9);
    }

    #[test]
    fn greedy_single_row_matches_fractional_knapsack(
        values in proptest::collection::vec(0.1f64..10.0, 2..8),
        weights in proptest::collection::vec(0.1f64..10.0, 2..8),
        cap_frac in 0.1f64..0.9,
    ) {
        let n = values.len().min(weights.len());
        let values = &values[..n];
        let weights = &weights[..n];
        let total_w: f64 = weights.iter().sum();
        let cap = cap_frac * total_w;

        let mut model = LpModel::new();
        let vars: Vec<_> = values.iter().map(|&v| model.add_var(0.0, 1.0, v)).collect();
        model.add_row_le(vars.iter().zip(weights).map(|(&v, &w)| (v, w)).collect(), cap);
        let sol = model.solve();
        prop_assert_eq!(sol.status, LpStatus::Optimal);

        // reference: greedy fractional knapsack
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            (values[b] / weights[b]).partial_cmp(&(values[a] / weights[a])).unwrap()
        });
        let mut remaining = cap;
        let mut expect = 0.0;
        for &i in &order {
            let take = (remaining / weights[i]).min(1.0).max(0.0);
            expect += take * values[i];
            remaining -= take * weights[i];
            if remaining <= 0.0 {
                break;
            }
        }
        prop_assert!((sol.objective - expect).abs() < 1e-5,
            "simplex {} vs greedy {}", sol.objective, expect);
    }
}
