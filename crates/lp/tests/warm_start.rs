//! Warm-start basis tests: a re-solve seeded with the final basis of a
//! previous solve must skip phase 1, survive perturbations of bounds /
//! objective / right-hand sides, and fall back to a cold start when the
//! basis no longer validates.

use rasa_lp::{Basis, Deadline, LpModel, LpStatus, SimplexOptions};

const TOL: f64 = 1e-7;

/// An LP whose cold solve needs artificial variables (a `>=` row cut off
/// from the origin), so phase-1 iterations are observable.
fn covering_lp() -> LpModel {
    // max -2x - 3y ; x + y >= 4 ; x + 3y >= 6 ; x,y ∈ [0, 10]
    let mut m = LpModel::new();
    let x = m.add_var(0.0, 10.0, -2.0);
    let y = m.add_var(0.0, 10.0, -3.0);
    m.add_row_ge(vec![(x, 1.0), (y, 1.0)], 4.0);
    m.add_row_ge(vec![(x, 1.0), (y, 3.0)], 6.0);
    m
}

#[test]
fn solution_exports_a_basis() {
    let m = covering_lp();
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    let basis = sol.basis.expect("optimal solve should export a basis");
    assert_eq!(basis.basic.len(), 2); // one basic column per row
    assert_eq!(basis.at_upper.len(), 2 + 2); // structural + slacks
    assert!(basis.basic.iter().all(|&j| j < 4));
}

#[test]
fn warm_resolve_skips_phase1_and_matches_cold() {
    let m = covering_lp();
    let cold = m.solve();
    assert_eq!(cold.status, LpStatus::Optimal);
    assert!(cold.stats.phase1_iterations > 0, "test wants a phase-1 LP");

    let warm = m.solve_warm(
        &SimplexOptions::default(),
        Deadline::none(),
        cold.basis.as_ref(),
    );
    assert_eq!(warm.status, LpStatus::Optimal);
    assert!(warm.stats.warm_accepted);
    assert!(!warm.stats.warm_rejected);
    assert_eq!(warm.stats.phase1_iterations, 0, "phase 1 must be skipped");
    assert!((warm.objective - cold.objective).abs() < TOL);
    // Re-solving at the optimum should need no pivots at all.
    assert_eq!(warm.stats.pivots, 0);
}

#[test]
fn warm_start_survives_rhs_perturbation() {
    let base = covering_lp();
    let cold = base.solve();
    let basis = cold.basis.clone().expect("basis");

    // Same shape, slightly different right-hand sides.
    let mut perturbed = LpModel::new();
    let x = perturbed.add_var(0.0, 10.0, -2.0);
    let y = perturbed.add_var(0.0, 10.0, -3.0);
    perturbed.add_row_ge(vec![(x, 1.0), (y, 1.0)], 4.2);
    perturbed.add_row_ge(vec![(x, 1.0), (y, 3.0)], 5.9);

    let warm = perturbed.solve_warm(&SimplexOptions::default(), Deadline::none(), Some(&basis));
    let reference = perturbed.solve();
    assert_eq!(warm.status, LpStatus::Optimal);
    assert!((warm.objective - reference.objective).abs() < TOL);
    // The old optimal basis stays primal-feasible for this small shift, so
    // the warm solve must accept it and skip phase 1.
    assert!(warm.stats.warm_accepted);
    assert_eq!(warm.stats.phase1_iterations, 0);
}

#[test]
fn warm_start_survives_objective_change() {
    let base = covering_lp();
    let basis = base.solve().basis.expect("basis");

    let mut changed = LpModel::new();
    let x = changed.add_var(0.0, 10.0, -1.0);
    let y = changed.add_var(0.0, 10.0, -5.0);
    changed.add_row_ge(vec![(x, 1.0), (y, 1.0)], 4.0);
    changed.add_row_ge(vec![(x, 1.0), (y, 3.0)], 6.0);

    let warm = changed.solve_warm(&SimplexOptions::default(), Deadline::none(), Some(&basis));
    let reference = changed.solve();
    assert_eq!(warm.status, LpStatus::Optimal);
    assert!(warm.stats.warm_accepted);
    assert!((warm.objective - reference.objective).abs() < TOL);
}

#[test]
fn invalid_basis_falls_back_to_cold_start() {
    let m = covering_lp();

    // Wrong shape: too few basic columns.
    let bad_shape = Basis {
        basic: vec![0],
        at_upper: vec![false; 4],
    };
    let sol = m.solve_warm(&SimplexOptions::default(), Deadline::none(), Some(&bad_shape));
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(sol.stats.warm_rejected);
    assert!(!sol.stats.warm_accepted);

    // Duplicate column: singular by construction.
    let dup = Basis {
        basic: vec![1, 1],
        at_upper: vec![false; 4],
    };
    let sol = m.solve_warm(&SimplexOptions::default(), Deadline::none(), Some(&dup));
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(sol.stats.warm_rejected);

    // Out-of-range column index.
    let oob = Basis {
        basic: vec![0, 99],
        at_upper: vec![false; 4],
    };
    let sol = m.solve_warm(&SimplexOptions::default(), Deadline::none(), Some(&oob));
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(sol.stats.warm_rejected);

    // All cold fallbacks must still reach the true optimum.
    let cold = m.solve();
    assert!((sol.objective - cold.objective).abs() < TOL);
}

#[test]
fn infeasible_basis_under_new_bounds_is_rejected() {
    let base = covering_lp();
    let basis = base.solve().basis.expect("basis");

    // Tighten bounds so the recorded basic values become infeasible: force
    // x to a band that excludes the previous optimum entirely.
    let mut tight = LpModel::new();
    let x = tight.add_var(8.0, 10.0, -2.0);
    let y = tight.add_var(0.0, 10.0, -3.0);
    tight.add_row_ge(vec![(x, 1.0), (y, 1.0)], 4.0);
    tight.add_row_ge(vec![(x, 1.0), (y, 3.0)], 6.0);

    let warm = tight.solve_warm(&SimplexOptions::default(), Deadline::none(), Some(&basis));
    let reference = tight.solve();
    assert_eq!(warm.status, reference.status);
    assert!((warm.objective - reference.objective).abs() < TOL);
}

#[test]
fn equality_constrained_lp_round_trips_through_its_basis() {
    // max x + y ; x + y == 3 ; x - y <= 1 ; x,y >= 0
    let mut m = LpModel::new();
    let x = m.add_var(0.0, f64::INFINITY, 1.0);
    let y = m.add_var(0.0, f64::INFINITY, 1.0);
    m.add_row_eq(vec![(x, 1.0), (y, 1.0)], 3.0);
    m.add_row_le(vec![(x, 1.0), (y, -1.0)], 1.0);
    let cold = m.solve();
    assert_eq!(cold.status, LpStatus::Optimal);
    let warm = m.solve_warm(
        &SimplexOptions::default(),
        Deadline::none(),
        cold.basis.as_ref(),
    );
    assert!(warm.stats.warm_accepted);
    assert_eq!(warm.stats.phase1_iterations, 0);
    assert!((warm.objective - cold.objective).abs() < TOL);
}
