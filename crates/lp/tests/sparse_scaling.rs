//! Scaling gate: factorization and solve cost must track the nonzero
//! count, not `m²`.
//!
//! A banded basis (constant nonzeros per column) is factorized and
//! FTRAN-solved at `m` and `4m`. With work proportional to nnz the cost
//! ratio is ~4×; the old dense kernel was 64× for factorization (O(m³) on
//! its Gauss–Jordan inverse) and 16× for its O(m²) ftran. The assertion
//! allows a generous 20× to stay robust on noisy CI machines while still
//! rejecting any quadratic regression.

use rasa_lp::factor::{LuFactors, LuWorkspace, SparseCol};
use std::time::Instant;

/// A nonsingular banded matrix: strong diagonal plus `band` sub-diagonal
/// entries per column — nnz grows linearly in `m`.
fn banded_cols(m: usize, band: usize) -> Vec<SparseCol> {
    (0..m)
        .map(|i| {
            let mut col: SparseCol = vec![(i, 4.0 + (i % 7) as f64 * 0.25)];
            for d in 1..=band {
                let r = i + d;
                if r < m {
                    col.push((r, -0.5 + (d as f64) * 0.1));
                }
            }
            col.sort_by_key(|&(r, _)| r);
            col
        })
        .collect()
}

/// Median-of-`reps` wall time for one factorize + a batch of ftrans.
fn measure(m: usize, reps: usize) -> f64 {
    let cols = banded_cols(m, 6);
    let mut ws = LuWorkspace::new(m);
    let b: Vec<f64> = (0..m).map(|i| (i % 13) as f64 - 6.0).collect();
    let mut out = vec![0.0; m];
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let lu = LuFactors::factorize(m, |i| &cols[i], 1e-12, &mut ws)
                .expect("banded matrix is nonsingular");
            for _ in 0..8 {
                lu.ftran(&b, &mut out, &mut ws);
            }
            std::hint::black_box(&out);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[reps / 2]
}

#[test]
fn factorize_and_ftran_scale_near_nnz_not_m_squared() {
    // warm-up so the first measurement doesn't pay page faults
    let _ = measure(400, 3);
    let small = measure(400, 9);
    let big = measure(1600, 9);
    let ratio = big / small.max(1e-9);
    assert!(
        ratio < 20.0,
        "4x rows cost {ratio:.1}x time (small {small:.6}s, big {big:.6}s) — \
         near-nnz scaling should be ~4x, dense scaling would be 16-64x"
    );
}
