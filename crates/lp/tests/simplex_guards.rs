//! Guard-rail behaviour around the dense-kernel size cap.
//!
//! The production (sparse) kernel has no row cap: a model past
//! `MAX_DENSE_ROWS` solves fine because the LU factors only store
//! nonzeros. The retained dense reference kernel keeps the cap — its
//! `m × m` inverse genuinely would not fit — and must refuse such models
//! with an anytime-compatible `IterationLimit` instead of allocating
//! gigabytes (the graceful version of the paper's NO-PARTITION failures
//! on large clusters).

use rasa_lp::time::Deadline;
use rasa_lp::{LpModel, LpStatus, SimplexOptions};

/// One bounded variable replicated across `rows` trivial `<=` rows.
fn tall_model(rows: usize, upper: f64, rhs: f64) -> LpModel {
    let mut m = LpModel::new();
    let x = m.add_var(0.0, upper, 1.0);
    for _ in 0..rows {
        m.add_row_le(vec![(x, 1.0)], rhs);
    }
    m
}

#[test]
fn oversized_models_solve_on_the_sparse_kernel() {
    // MAX_DENSE_ROWS + 1 rows used to be an immediate IterationLimit; the
    // sparse kernel stores O(nnz) and just solves it.
    let m = tall_model(rasa_lp::simplex::MAX_DENSE_ROWS + 1, 1.0, 1.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(sol.feasible);
    assert!((sol.x[0] - 1.0).abs() < 1e-6);
}

#[test]
fn oversized_models_are_rejected_gracefully_by_the_dense_kernel() {
    // the reference kernel keeps the memory guard
    let m = tall_model(rasa_lp::dense::MAX_DENSE_ROWS + 1, 1.0, 1.0);
    let sol = rasa_lp::dense::solve_dense(&m, &SimplexOptions::default(), Deadline::none(), None);
    assert_eq!(sol.status, LpStatus::IterationLimit);
    assert!(!sol.feasible);
}

#[test]
fn boundary_size_is_still_accepted_structurally() {
    // a few hundred rows solve fine on both kernels (sanity check of the
    // shared mechanism, far below the dense cap to keep the test fast)
    let m = tall_model(500, 10.0, 7.0);
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.x[0] - 7.0).abs() < 1e-6);
    let dense = rasa_lp::dense::solve_dense(&m, &SimplexOptions::default(), Deadline::none(), None);
    assert_eq!(dense.status, LpStatus::Optimal);
    assert!((dense.x[0] - 7.0).abs() < 1e-6);
}
