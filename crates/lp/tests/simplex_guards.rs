//! Guard-rail behaviour: the dense simplex must refuse models whose basis
//! inverse would not fit in memory, returning an anytime-compatible
//! `IterationLimit` instead of allocating gigabytes (the graceful version
//! of the paper's NO-PARTITION failures on large clusters).

use rasa_lp::{LpModel, LpStatus};

#[test]
fn oversized_models_are_rejected_gracefully() {
    // MAX_DENSE_ROWS + 1 trivial rows — never allocate the basis inverse
    let mut m = LpModel::new();
    let x = m.add_var(0.0, 1.0, 1.0);
    for _ in 0..(rasa_lp::simplex::MAX_DENSE_ROWS + 1) {
        m.add_row_le(vec![(x, 1.0)], 1.0);
    }
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::IterationLimit);
    assert!(!sol.feasible);
}

#[test]
fn boundary_size_is_still_accepted_structurally() {
    // a few thousand rows solve fine (sanity check just below the guard's
    // *mechanism*, far below the actual limit to keep the test fast)
    let mut m = LpModel::new();
    let x = m.add_var(0.0, 10.0, 1.0);
    for _ in 0..500 {
        m.add_row_le(vec![(x, 1.0)], 7.0);
    }
    let sol = m.solve();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.x[0] - 7.0).abs() < 1e-6);
}
