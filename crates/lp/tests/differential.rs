//! Differential testing: the sparse LU kernel against the retained dense
//! reference kernel ([`rasa_lp::dense`]) on seeded random bounded LPs.
//!
//! Both kernels implement the same bounded-variable two-phase simplex with
//! the same tolerances, so on every instance they must agree on the status
//! and (when optimal) on the objective to within 1e-6 — the bases may
//! legitimately differ (degenerate ties break differently by design; see
//! `numerics_regression.rs`). Warm-start bases are interchangeable across
//! kernels because the `Basis` contract is defined on the computational
//! form, not on the factorization.

use proptest::prelude::*;
use rasa_lp::time::Deadline;
use rasa_lp::{LpModel, LpStatus, SimplexOptions};

/// A random bounded LP mixing `<=`, `>=`, and `==` rows. Upper bounds are
/// finite so the LP is never unbounded; equality rows make some instances
/// infeasible, which the two kernels must also agree on.
fn mixed_lp_strategy() -> impl Strategy<Value = LpModel> {
    let dims = (1usize..6, 1usize..7);
    dims.prop_flat_map(|(n, m)| {
        let objs = proptest::collection::vec(-4.0f64..8.0, n);
        let uppers = proptest::collection::vec(0.5f64..5.0, n);
        let coeffs = proptest::collection::vec(proptest::collection::vec(0.0f64..3.0, n), m);
        let rhs = proptest::collection::vec(0.5f64..12.0, m);
        let senses = proptest::collection::vec(0u8..3, m);
        (objs, uppers, coeffs, rhs, senses).prop_map(|(objs, uppers, coeffs, rhs, senses)| {
            let mut model = LpModel::new();
            let vars: Vec<_> = objs
                .iter()
                .zip(&uppers)
                .map(|(&c, &u)| model.add_var(0.0, u, c))
                .collect();
            for ((row, &b), &sense) in coeffs.iter().zip(&rhs).zip(&senses) {
                let entries: Vec<_> = vars
                    .iter()
                    .zip(row)
                    .filter(|(_, &a)| a > 0.25)
                    .map(|(&v, &a)| (v, a))
                    .collect();
                if entries.is_empty() {
                    continue;
                }
                match sense {
                    0 => model.add_row_le(entries, b),
                    1 => model.add_row_ge(entries, b * 0.25),
                    _ => model.add_row_eq(entries, b * 0.5),
                }
            }
            model
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn kernels_agree_on_status_and_objective(model in mixed_lp_strategy()) {
        let opts = SimplexOptions::default();
        let sparse = model.solve_with(&opts, Deadline::none());
        let dense = rasa_lp::dense::solve_dense(&model, &opts, Deadline::none(), None);

        prop_assert_eq!(
            sparse.status, dense.status,
            "status disagreement: sparse {:?} vs dense {:?}",
            sparse.status, dense.status
        );
        prop_assert_eq!(sparse.feasible, dense.feasible);
        if sparse.status == LpStatus::Optimal {
            prop_assert!(
                (sparse.objective - dense.objective).abs() < 1e-6,
                "objective disagreement: sparse {} vs dense {}",
                sparse.objective, dense.objective
            );
            // both optimal points must be genuinely feasible
            prop_assert!(model.is_feasible_point(&sparse.x, 1e-6));
            prop_assert!(model.is_feasible_point(&dense.x, 1e-6));
        }
    }

    #[test]
    fn bases_warm_start_across_kernels(model in mixed_lp_strategy()) {
        let opts = SimplexOptions::default();
        let sparse = model.solve_with(&opts, Deadline::none());
        prop_assume!(sparse.status == LpStatus::Optimal && sparse.basis.is_some());
        let basis = sparse.basis.as_ref().unwrap();

        // sparse basis → sparse warm re-solve: accepted, same objective
        let rewarm = model.solve_warm(&opts, Deadline::none(), Some(basis));
        prop_assert!(rewarm.stats.warm_accepted);
        prop_assert_eq!(rewarm.status, LpStatus::Optimal);
        prop_assert!((rewarm.objective - sparse.objective).abs() < 1e-6);

        // sparse basis → dense kernel: the Basis contract is kernel-free
        let dense = rasa_lp::dense::solve_dense(&model, &opts, Deadline::none(), Some(basis));
        prop_assert_eq!(dense.status, LpStatus::Optimal);
        prop_assert!(dense.stats.warm_accepted);
        prop_assert!((dense.objective - sparse.objective).abs() < 1e-6);

        // dense basis → sparse kernel, completing the round trip
        if let Some(dense_basis) = dense.basis.as_ref() {
            let back = model.solve_warm(&opts, Deadline::none(), Some(dense_basis));
            prop_assert_eq!(back.status, LpStatus::Optimal);
            prop_assert!((back.objective - sparse.objective).abs() < 1e-6);
        }
    }
}
