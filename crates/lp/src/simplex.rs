//! Bounded-variable revised simplex with a two-phase start and a sparse
//! LU-factorized basis.
//!
//! ## Method
//!
//! The model is brought to computational form `A x + s = b` by adding one
//! slack per row whose bounds encode the row sense (`<=` → `s ∈ [0, ∞)`,
//! `>=` → `s ∈ (−∞, 0]`, `==` → `s ∈ [0, 0]`). Nonbasic variables rest at
//! one of their bounds; the basis solves for the rest.
//!
//! *Phase 1* starts from the all-slack basis with structural variables at
//! their bounds. Rows whose residual violates the slack bounds receive an
//! artificial variable (coefficient ±1 matching the residual sign) that
//! enters the basis at a positive value; maximizing `−Σ artificials` drives
//! the infeasibility to zero or proves the LP infeasible.
//!
//! *Phase 2* maximizes the true objective from the feasible basis, with
//! artificial bounds pinned to `[0, 0]`.
//!
//! ## Basis machinery
//!
//! The basis is held as a sparse LU factorization
//! ([`LuFactors`], Gilbert–Peierls left-looking
//! elimination with partial pivoting and a fill-reducing column order) plus
//! a product-form [`EtaFile`] that absorbs pivots
//! between refactorizations, so FTRAN/BTRAN cost tracks the factor
//! nonzeros instead of `m²`. The factorization is rebuilt from the basis
//! columns every [`SimplexOptions::refactor_every`] pivots, which also
//! resets the eta file and recomputes the basic values to squash
//! accumulated drift. A refactorization that finds the basis numerically
//! singular bumps the `simplex.refactor_singular` counter and emits a
//! `refactor_singular` flight event (a silent cold start was how
//! warm-start decay used to hide from BENCH artifacts).
//!
//! Pricing is partial (sectioned) Dantzig
//! ([`PartialPricing`]): a cyclic window of
//! columns is scanned each iteration and the best eligible reduced cost in
//! the first non-empty window enters; a full eligible-free wrap proves
//! optimality. A long degenerate stall still switches permanently to
//! Bland's rule. The ratio test is a Harris-style two-pass: pass 1
//! computes the minimum *relaxed* ratio (each basic variable may overshoot
//! its bound by `feas_tol`), pass 2 picks the largest-|pivot| row among
//! those whose exact ratio fits under that bound — degenerate ties break
//! toward numerical stability instead of first-row order.
//!
//! The historical dense-inverse kernel survives as
//! [`dense`](crate::dense) for differential testing.

#![allow(clippy::needless_range_loop)] // dense index arithmetic over parallel arrays

use crate::factor::{EtaFile, LuFactors, LuWorkspace};
use crate::model::{LpModel, RowSense};
use crate::pricing::PartialPricing;
use crate::solution::{Basis, LpSolution, LpStatus, SimplexStats};
use crate::time::Deadline;

pub use crate::dense::MAX_DENSE_ROWS;

/// Tunable knobs for [`solve_simplex`].
#[derive(Clone, Debug)]
pub struct SimplexOptions {
    /// Hard cap on simplex iterations across both phases.
    pub max_iterations: usize,
    /// Reduced-cost optimality tolerance.
    pub opt_tol: f64,
    /// Primal feasibility tolerance.
    pub feas_tol: f64,
    /// Smallest acceptable pivot magnitude.
    pub pivot_tol: f64,
    /// Refactorize the basis every this many pivots (also bounds the eta
    /// file length, and with it FTRAN/BTRAN cost drift).
    pub refactor_every: usize,
    /// Switch to Bland's rule after this many consecutive non-improving
    /// (degenerate) iterations.
    pub degenerate_stall: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 50_000,
            opt_tol: 1e-7,
            feas_tol: 1e-7,
            pivot_tol: 1e-9,
            refactor_every: 120,
            degenerate_stall: 200,
        }
    }
}

/// Pivot magnitude below which a basis is declared numerically singular
/// during (re)factorization. Matches the historical dense Gauss–Jordan
/// threshold so singularity verdicts agree across kernels.
const SINGULAR_TOL: f64 = 1e-12;

/// Sparse column: (row, coefficient) pairs.
type Col = Vec<(usize, f64)>;

struct Tableau {
    m: usize,
    /// All columns: structural, then slacks, then artificials.
    cols: Vec<Col>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    b: Vec<f64>,
}

struct State {
    /// Current value of every variable.
    x: Vec<f64>,
    /// Variable basic in each row.
    basis: Vec<usize>,
    /// `Some(row)` if basic, else `None`.
    basic_row: Vec<Option<usize>>,
    /// For nonbasic variables: resting at upper bound?
    at_upper: Vec<bool>,
    /// Sparse LU factors of the basis as of the last refactorization.
    lu: LuFactors,
    /// Product-form updates appended since then.
    etas: EtaFile,
    iterations: usize,
    pivots_since_refactor: usize,
    use_bland: bool,
    stall: usize,
    stats: SimplexStats,
}

/// Per-solve dense scratch (reused so the pivot loop never allocates).
struct Scratch {
    /// LU workspace (marks, stacks, solve accumulators).
    ws: LuWorkspace,
    /// FTRAN right-hand side, indexed by original row.
    rhs: Vec<f64>,
    /// Entering column's FTRAN image `w = B⁻¹ A_q`, by basis position.
    w: Vec<f64>,
    /// Basic cost vector / BTRAN input, by basis position.
    cb: Vec<f64>,
    /// Duals `y`, indexed by original row.
    y: Vec<f64>,
    /// Spare factors: every (re)factorization targets this slot first and
    /// swaps in on success, recycling the entry pools and keeping the live
    /// factors intact when the basis turns out singular.
    spare: LuFactors,
}

impl Scratch {
    fn new(m: usize) -> Self {
        Scratch {
            ws: LuWorkspace::new(m),
            rhs: vec![0.0; m],
            w: vec![0.0; m],
            cb: vec![0.0; m],
            y: vec![0.0; m],
            spare: LuFactors::default(),
        }
    }

    fn resize(&mut self, m: usize) {
        if self.rhs.len() < m {
            self.rhs.resize(m, 0.0);
            self.w.resize(m, 0.0);
            self.cb.resize(m, 0.0);
            self.y.resize(m, 0.0);
        }
    }
}

thread_local! {
    /// Recycled [`Scratch`] — the pricing loops of B&B and column
    /// generation fire thousands of small LP solves per round, so the
    /// per-solve workspace is kept warm per thread instead of reallocated.
    static SCRATCH: std::cell::RefCell<Option<Scratch>> =
        const { std::cell::RefCell::new(None) };
}

/// Take the thread's recycled scratch (or build one). Re-entrant solves on
/// the same thread simply build a fresh workspace.
fn take_scratch(m: usize) -> Scratch {
    match SCRATCH.with(|s| s.borrow_mut().take()) {
        Some(mut s) => {
            s.resize(m);
            s
        }
        None => Scratch::new(m),
    }
}

/// Return a scratch to the thread-local slot for the next solve.
fn put_scratch(s: Scratch) {
    SCRATCH.with(|slot| *slot.borrow_mut() = Some(s));
}

impl Tableau {
    fn col(&self, j: usize) -> &Col {
        &self.cols[j]
    }
}

/// `w = B⁻¹ · A_j`: scatter the sparse column, LU forward/backward solve,
/// then the eta file in recording order. `out` is basis-position indexed.
fn ftran_col(state: &State, scratch: &mut Scratch, col: &Col, m: usize) {
    scratch.rhs[..m].fill(0.0);
    for &(row, a) in col {
        scratch.rhs[row] += a;
    }
    state.lu.ftran(&scratch.rhs, &mut scratch.w, &mut scratch.ws);
    state.etas.apply_ftran(&mut scratch.w[..m]);
}

/// `y = c_Bᵀ · B⁻¹`: eta file newest-first on the basis-position input,
/// then the LU transpose solves. Clobbers `scratch.cb`; duals land in
/// `scratch.y` indexed by original row.
fn btran_duals(state: &State, scratch: &mut Scratch, m: usize) {
    state.etas.apply_btran(&mut scratch.cb[..m]);
    state.lu.btran(&scratch.cb, &mut scratch.y, &mut scratch.ws);
}

/// Rebuild the LU factors from the current basis columns, reset the eta
/// file. Returns `false` (and counts + flight-records the singularity) if
/// the basis is numerically singular; the factors are left unchanged so
/// the caller can decide how to bail out.
fn refactorize(tab: &Tableau, state: &mut State, scratch: &mut Scratch, context: &str) -> bool {
    let ok = {
        let basis = &state.basis;
        scratch.spare.factorize_into(
            tab.m,
            |i| tab.cols[basis[i]].as_slice(),
            SINGULAR_TOL,
            &mut scratch.ws,
        )
    };
    if ok {
        std::mem::swap(&mut state.lu, &mut scratch.spare);
        state.etas.clear();
        state.pivots_since_refactor = 0;
        state.stats.refactorizations += 1;
        true
    } else {
        state.stats.refactor_singular += 1;
        let m = tab.m as u64;
        rasa_obs::flight::emit(|| rasa_obs::TraceEvent::refactor_singular(context, m));
        false
    }
}

/// Recompute basic variable values: `x_B = B⁻¹ (b − N x_N)`.
fn recompute_basics(tab: &Tableau, state: &mut State, scratch: &mut Scratch) {
    let m = tab.m;
    scratch.rhs[..m].copy_from_slice(&tab.b);
    for j in 0..tab.cols.len() {
        if state.basic_row[j].is_some() {
            continue;
        }
        let xj = state.x[j];
        if xj != 0.0 {
            for &(row, a) in tab.col(j) {
                scratch.rhs[row] -= a * xj;
            }
        }
    }
    state.lu.ftran(&scratch.rhs, &mut scratch.w, &mut scratch.ws);
    state.etas.apply_ftran(&mut scratch.w[..m]);
    for i in 0..m {
        state.x[state.basis[i]] = scratch.w[i];
    }
}

enum PhaseOutcome {
    Done,
    Unbounded,
    IterationLimit,
}

/// Entering-variable eligibility: reduced cost and movement direction, or
/// `None` when the column cannot improve the objective.
fn eligibility(
    tab: &Tableau,
    state: &State,
    cost: &[f64],
    y: &[f64],
    opt_tol: f64,
    j: usize,
) -> Option<(f64, f64)> {
    if state.basic_row[j].is_some() {
        return None;
    }
    let (l, u) = (tab.lower[j], tab.upper[j]);
    if l == u {
        return None; // fixed variable can never improve
    }
    let mut d = cost[j];
    for &(row, a) in tab.col(j) {
        d -= y[row] * a;
    }
    let dir = if state.at_upper[j] {
        if d < -opt_tol {
            -1.0
        } else {
            return None;
        }
    } else if l.is_infinite() && u.is_infinite() {
        // free at 0: move either way
        if d > opt_tol {
            1.0
        } else if d < -opt_tol {
            -1.0
        } else {
            return None;
        }
    } else if d > opt_tol {
        1.0
    } else {
        return None;
    };
    Some((d, dir))
}

/// Run the simplex to optimality for the cost vector `cost`.
fn run_phase(
    tab: &Tableau,
    state: &mut State,
    scratch: &mut Scratch,
    cost: &[f64],
    options: &SimplexOptions,
    deadline: Deadline,
    iter_budget: usize,
) -> PhaseOutcome {
    let m = tab.m;
    let total = tab.cols.len();
    let mut pricer = PartialPricing::new(total);
    let mut local_iters = 0usize;

    loop {
        if local_iters >= iter_budget {
            return PhaseOutcome::IterationLimit;
        }
        if state.iterations % 64 == 0 && deadline.expired() {
            return PhaseOutcome::IterationLimit;
        }

        // duals
        for i in 0..m {
            scratch.cb[i] = cost[state.basis[i]];
        }
        btran_duals(state, scratch, m);

        // pricing: Bland scans first-eligible in index order (anti-cycling
        // needs the fixed ordering); otherwise the partial pricer picks the
        // best reduced cost in its cyclic window.
        let entering: Option<(usize, f64, f64)> = if state.use_bland {
            (0..total).find_map(|j| {
                eligibility(tab, state, cost, &scratch.y, options.opt_tol, j)
                    .map(|(d, dir)| (j, d, dir))
            })
        } else {
            let picked = {
                let y = &scratch.y;
                pricer.select(total, |j| {
                    eligibility(tab, state, cost, y, options.opt_tol, j).map(|(d, _)| d.abs())
                })
            };
            picked.and_then(|j| {
                eligibility(tab, state, cost, &scratch.y, options.opt_tol, j)
                    .map(|(d, dir)| (j, d, dir))
            })
        };

        let Some((q, d_q, dir)) = entering else {
            return PhaseOutcome::Done; // optimal for this cost vector
        };

        // direction through the basis
        ftran_col(state, scratch, tab.col(q), m);

        // ---- Harris two-pass ratio test ----
        // Pass 1: smallest ratio when every basic variable may overshoot
        // its bound by feas_tol. Pass 2: among rows whose *exact* ratio
        // fits under that relaxed bound, take the largest |pivot| — on
        // degenerate ties this prefers the numerically stable pivot where
        // the historical rule took whichever row came first.
        let span_q = tab.upper[q] - tab.lower[q]; // may be inf
        let mut t_relax = f64::INFINITY;
        for i in 0..m {
            let wi = scratch.w[i];
            if wi.abs() <= options.pivot_tol {
                continue;
            }
            let k = state.basis[i];
            let xk = state.x[k];
            let step = dir * wi;
            let t = if step > 0.0 {
                // basic var decreases toward its lower bound
                let lk = tab.lower[k];
                if !lk.is_finite() {
                    continue;
                }
                ((xk - lk + options.feas_tol) / step).max(0.0)
            } else {
                // basic var increases toward its upper bound
                let uk = tab.upper[k];
                if !uk.is_finite() {
                    continue;
                }
                ((uk - xk + options.feas_tol) / -step).max(0.0)
            };
            if t < t_relax {
                t_relax = t;
            }
        }

        if t_relax.is_infinite() && !span_q.is_finite() {
            return PhaseOutcome::Unbounded;
        }

        let t_star;
        let mut leave: Option<(usize, bool)> = None; // (row, leaving-to-upper?)
        let cap = t_relax.min(span_q);
        if t_relax.is_finite() {
            let mut best_mag = 0.0f64;
            let mut t_exact_min = f64::INFINITY;
            let mut candidates = 0usize;
            for i in 0..m {
                let wi = scratch.w[i];
                if wi.abs() <= options.pivot_tol {
                    continue;
                }
                let k = state.basis[i];
                let xk = state.x[k];
                let step = dir * wi;
                let (t, to_upper) = if step > 0.0 {
                    let lk = tab.lower[k];
                    if !lk.is_finite() {
                        continue;
                    }
                    (((xk - lk) / step).max(0.0), false)
                } else {
                    let uk = tab.upper[k];
                    if !uk.is_finite() {
                        continue;
                    }
                    (((uk - xk) / -step).max(0.0), true)
                };
                if t < t_exact_min {
                    t_exact_min = t;
                }
                if t <= cap {
                    candidates += 1;
                    let mag = wi.abs();
                    if mag > best_mag {
                        best_mag = mag;
                        leave = Some((i, to_upper));
                    }
                }
            }
            if span_q.is_finite() && t_exact_min >= span_q - 1e-12 {
                // the entering variable reaches its far bound first
                leave = None;
                t_star = span_q;
            } else if let Some((r, _)) = leave {
                if candidates > 1 {
                    state.stats.harris_ties += 1;
                }
                // recover the chosen row's exact ratio
                let wi = scratch.w[r];
                let k = state.basis[r];
                let xk = state.x[k];
                let step = dir * wi;
                t_star = if step > 0.0 {
                    ((xk - tab.lower[k]) / step).max(0.0)
                } else {
                    ((tab.upper[k] - xk) / -step).max(0.0)
                };
            } else {
                // all finite-bound rows were filtered by pivot_tol slack;
                // fall back to the entering variable's own span
                if span_q.is_finite() {
                    t_star = span_q;
                } else {
                    return PhaseOutcome::Unbounded;
                }
            }
        } else {
            // no blocking row at all: bound flip (span_q finite here)
            t_star = span_q;
        }

        // apply the step
        if t_star > 0.0 {
            for i in 0..m {
                if scratch.w[i] != 0.0 {
                    let k = state.basis[i];
                    state.x[k] -= dir * t_star * scratch.w[i];
                }
            }
            state.x[q] += dir * t_star;
        }

        match leave {
            None => {
                // bound flip: q jumps to its other bound, basis unchanged
                state.stats.bound_flips += 1;
                state.at_upper[q] = !state.at_upper[q];
                // snap exactly onto the bound to avoid drift
                state.x[q] = if state.at_upper[q] {
                    tab.upper[q]
                } else {
                    tab.lower[q]
                };
            }
            Some((r, to_upper)) => {
                state.stats.pivots += 1;
                let leaving = state.basis[r];
                // snap the leaving variable onto the bound it reached
                state.x[leaving] = if to_upper {
                    tab.upper[leaving]
                } else {
                    tab.lower[leaving]
                };
                state.at_upper[leaving] = to_upper;
                state.basic_row[leaving] = None;
                state.basis[r] = q;
                state.basic_row[q] = Some(r);

                // product-form update: append an eta instead of touching
                // an O(m²) inverse
                debug_assert!(scratch.w[r].abs() > options.pivot_tol);
                let stored = state.etas.push(r, &scratch.w[..m]);
                state.stats.eta_updates += 1;
                state.stats.eta_nnz += stored;

                state.pivots_since_refactor += 1;
                if state.pivots_since_refactor >= options.refactor_every {
                    if !refactorize(tab, state, scratch, "mid_solve") {
                        return PhaseOutcome::IterationLimit;
                    }
                    recompute_basics(tab, state, scratch);
                }
            }
        }

        // degeneracy / cycling guard: the objective gain of this iteration
        // is exactly |reduced cost| × step length, so a full O(columns)
        // objective recompute is unnecessary here.
        if d_q.abs() * t_star > options.opt_tol {
            // progress resets the stall counter but NOT `use_bland`: the
            // switch to Bland's rule is permanent for the rest of the solve.
            // Degenerate LPs alternate improving and stalled stretches, and
            // re-arming Dantzig pricing after one improving step restores
            // exactly the cycling risk the switch exists to prevent.
            state.stall = 0;
        } else {
            state.stall += 1;
            if state.stall >= options.degenerate_stall && !state.use_bland {
                state.use_bland = true;
                state.stats.bland_activations += 1;
            }
        }

        state.iterations += 1;
        local_iters += 1;
    }
}

/// Solve `model` (maximization) with the given options and deadline.
///
/// Per-solve counters come back in [`LpSolution::stats`] (deterministic,
/// for tests) and are also flushed into the global [`rasa_obs`] registry
/// under `simplex.*` (aggregate telemetry).
pub fn solve_simplex(model: &LpModel, options: &SimplexOptions, deadline: Deadline) -> LpSolution {
    solve_simplex_warm(model, options, deadline, None)
}

/// [`solve_simplex`] with an optional warm-start basis from a previous
/// solve of a same-shaped model (see [`Basis`]).
///
/// When the basis validates (right shape, nonsingular, and primal-feasible
/// once nonbasic variables are placed on their recorded bounds), phase 1 is
/// skipped entirely and phase 2 starts from it; otherwise the solve falls
/// back to the usual cold two-phase start. The outcome is recorded in
/// [`SimplexStats::warm_accepted`] / [`SimplexStats::warm_rejected`] and
/// the `simplex.warm_accepted` / `simplex.warm_rejected` obs counters.
pub fn solve_simplex_warm(
    model: &LpModel,
    options: &SimplexOptions,
    deadline: Deadline,
    warm: Option<&Basis>,
) -> LpSolution {
    let _fs = rasa_obs::flight::span("lp.simplex");
    let sol = solve_simplex_impl(model, options, deadline, warm);
    let obs = rasa_obs::global();
    if obs.enabled() {
        obs.add("simplex.solves", 1);
        obs.add("simplex.pivots", sol.stats.pivots as u64);
        obs.add("simplex.bound_flips", sol.stats.bound_flips as u64);
        obs.add("simplex.refactorizations", sol.stats.refactorizations as u64);
        obs.add("simplex.refactor_singular", sol.stats.refactor_singular as u64);
        obs.add("simplex.eta_updates", sol.stats.eta_updates as u64);
        obs.add("simplex.eta_nnz", sol.stats.eta_nnz as u64);
        obs.add("simplex.harris_ties", sol.stats.harris_ties as u64);
        obs.add("simplex.bland_activations", sol.stats.bland_activations as u64);
        obs.add("simplex.phase1_iterations", sol.stats.phase1_iterations as u64);
        obs.add("simplex.phase2_iterations", sol.stats.phase2_iterations as u64);
        if sol.stats.warm_accepted {
            obs.add("simplex.warm_accepted", 1);
        }
        if sol.stats.warm_rejected {
            obs.add("simplex.warm_rejected", 1);
        }
    }
    sol
}

/// Try to rebuild a [`State`] from a warm-start basis: validate its shape,
/// rest every nonbasic variable on a bound (honoring `at_upper` where the
/// bound is finite), factorize, and accept only if the implied basic
/// values are primal-feasible within `feas_tol`.
///
/// A numerically singular basis is rejected here with the singularity
/// counted in `singular` (surfaced as `simplex.refactor_singular` on the
/// cold-started solve that follows) — it used to vanish without a trace.
fn try_warm_state(
    tab: &Tableau,
    n: usize,
    wb: &Basis,
    feas_tol: f64,
    scratch: &mut Scratch,
    singular: &mut usize,
) -> Option<State> {
    let m = tab.m;
    let total = n + m;
    if wb.basic.len() != m || wb.at_upper.len() != total {
        return None;
    }
    let mut basic_row = vec![None; total];
    for (i, &j) in wb.basic.iter().enumerate() {
        if j >= total || basic_row[j].is_some() {
            return None; // out of range or duplicate column
        }
        basic_row[j] = Some(i);
    }
    let mut x = vec![0.0f64; total];
    let mut at_upper = vec![false; total];
    for j in 0..total {
        if basic_row[j].is_some() {
            continue;
        }
        let (l, u) = (tab.lower[j], tab.upper[j]);
        // Rest on the recorded bound when it is finite under the *current*
        // model; otherwise fall back to any finite bound (bounds may have
        // changed since the basis was exported), then to 0 for free vars.
        x[j] = if wb.at_upper[j] && u.is_finite() {
            at_upper[j] = true;
            u
        } else if l.is_finite() {
            l
        } else if u.is_finite() {
            at_upper[j] = true;
            u
        } else {
            0.0
        };
    }
    let ok = {
        let basic = &wb.basic;
        scratch.spare.factorize_into(
            m,
            |i| tab.cols[basic[i]].as_slice(),
            SINGULAR_TOL,
            &mut scratch.ws,
        )
    };
    if !ok {
        *singular += 1;
        let m64 = m as u64;
        rasa_obs::flight::emit(|| rasa_obs::TraceEvent::refactor_singular("warm_start", m64));
        return None; // numerically singular basis
    }
    let lu = std::mem::take(&mut scratch.spare);
    let mut state = State {
        x,
        basis: wb.basic.clone(),
        basic_row,
        at_upper,
        lu,
        etas: EtaFile::new(),
        iterations: 0,
        pivots_since_refactor: 0,
        use_bland: false,
        stall: 0,
        stats: SimplexStats::default(),
    };
    state.stats.refactorizations += 1;
    recompute_basics(tab, &mut state, scratch);
    for i in 0..m {
        let k = state.basis[i];
        let v = state.x[k];
        if v < tab.lower[k] - feas_tol || v > tab.upper[k] + feas_tol {
            return None; // basis no longer primal-feasible
        }
    }
    Some(state)
}

/// Rowless models reduce to independently optimizing each variable over
/// its box; shared by the sparse and dense kernels.
pub(crate) fn solve_bounds_only(model: &LpModel) -> LpSolution {
    let n = model.num_vars();
    let mut x = vec![0.0; n];
    for j in 0..n {
        let c = model.objective[j];
        let (l, u) = (model.lower[j], model.upper[j]);
        x[j] = if c > 0.0 {
            if u.is_finite() {
                u
            } else {
                return LpSolution {
                    status: LpStatus::Unbounded,
                    objective: f64::INFINITY,
                    x,
                    duals: vec![],
                    feasible: true,
                    iterations: 0,
                    stats: SimplexStats::default(),
                    basis: None,
                };
            }
        } else if c < 0.0 {
            if l.is_finite() {
                l
            } else {
                return LpSolution {
                    status: LpStatus::Unbounded,
                    objective: f64::INFINITY,
                    x,
                    duals: vec![],
                    feasible: true,
                    iterations: 0,
                    stats: SimplexStats::default(),
                    basis: None,
                };
            }
        } else if l.is_finite() {
            l
        } else if u.is_finite() {
            u
        } else {
            0.0
        };
    }
    let objective = model.objective_value(&x);
    LpSolution {
        status: LpStatus::Optimal,
        objective,
        x,
        duals: vec![],
        feasible: true,
        iterations: 0,
        stats: SimplexStats::default(),
        basis: None,
    }
}

fn solve_simplex_impl(
    model: &LpModel,
    options: &SimplexOptions,
    deadline: Deadline,
    warm: Option<&Basis>,
) -> LpSolution {
    let n = model.num_vars();
    let m = model.num_rows();

    if m == 0 {
        return solve_bounds_only(model);
    }

    let mut scratch = take_scratch(m);
    let sol = solve_with_scratch(model, options, deadline, warm, &mut scratch, n, m);
    put_scratch(scratch);
    sol
}

#[allow(clippy::too_many_arguments)]
fn solve_with_scratch(
    model: &LpModel,
    options: &SimplexOptions,
    deadline: Deadline,
    warm: Option<&Basis>,
    scratch: &mut Scratch,
    n: usize,
    m: usize,
) -> LpSolution {

    // ---- computational form ----
    let mut cols: Vec<Col> = Vec::with_capacity(n + m);
    let mut lower = Vec::with_capacity(n + m);
    let mut upper = Vec::with_capacity(n + m);
    // structural
    for j in 0..n {
        cols.push(Vec::new());
        lower.push(model.lower[j]);
        upper.push(model.upper[j]);
    }
    let mut b = Vec::with_capacity(m);
    // Slack for row `i` sits at column `n + i`.
    for (i, row) in model.rows.iter().enumerate() {
        for &(j, a) in &row.coeffs {
            cols[j].push((i, a));
        }
        b.push(row.rhs);
        let (sl, su) = match row.sense {
            RowSense::Le => (0.0, f64::INFINITY),
            RowSense::Ge => (f64::NEG_INFINITY, 0.0),
            RowSense::Eq => (0.0, 0.0),
        };
        cols.push(vec![(i, 1.0)]);
        lower.push(sl);
        upper.push(su);
    }

    let mut tab = Tableau {
        m,
        cols,
        lower,
        upper,
        b,
    };

    // ---- warm start: revive the supplied basis if it still validates ----
    let mut warm_singular = 0usize;
    let warm_state = warm.and_then(|wb| {
        try_warm_state(&tab, n, wb, options.feas_tol, scratch, &mut warm_singular)
    });

    let (mut state, n_art) = if let Some(mut s) = warm_state {
        // Feasible basis recovered: no artificials, phase 1 skipped.
        s.stats.warm_accepted = true;
        (s, 0)
    } else {
        // ---- cold start ----
        // initial point: structural vars at their nearest finite bound
        let mut x = vec![0.0f64; n + m];
        let mut at_upper = vec![false; n + m];
        for j in 0..n {
            let (l, u) = (tab.lower[j], tab.upper[j]);
            x[j] = if l.is_finite() {
                l
            } else if u.is_finite() {
                at_upper[j] = true;
                u
            } else {
                0.0
            };
        }

        // residual the slack of each row must absorb
        let mut residual = tab.b.clone();
        for j in 0..n {
            if x[j] != 0.0 {
                for &(row, a) in &tab.cols[j] {
                    residual[row] -= a * x[j];
                }
            }
        }

        // basis: slack where feasible, artificial where not
        let mut basis = vec![usize::MAX; m];
        let mut needs_artificial: Vec<(usize, f64)> = Vec::new(); // (row, signed residual left for artificial)
        for i in 0..m {
            let s = n + i;
            let (sl, su) = (tab.lower[s], tab.upper[s]);
            if residual[i] >= sl - options.feas_tol && residual[i] <= su + options.feas_tol {
                basis[i] = s;
                x[s] = residual[i];
            } else {
                // slack rests at the bound nearest the residual
                let rest = if residual[i] < sl { sl } else { su };
                x[s] = rest;
                at_upper[s] = rest == su && su.is_finite() && sl != su;
                needs_artificial.push((i, residual[i] - rest));
            }
        }
        let n_art = needs_artificial.len();
        for &(row, r) in &needs_artificial {
            let j = tab.cols.len();
            tab.cols.push(vec![(row, if r >= 0.0 { 1.0 } else { -1.0 })]);
            tab.lower.push(0.0);
            tab.upper.push(f64::INFINITY);
            basis[row] = j;
            x.push(r.abs());
            at_upper.push(false);
        }

        let total = tab.cols.len();
        let mut basic_row = vec![None; total];
        for (i, &j) in basis.iter().enumerate() {
            basic_row[j] = Some(i);
        }

        // B is diagonal ±1 at start (slacks +1, artificials ±1): its LU
        // factorization is immediate and cannot be singular.
        let ok = scratch.spare.factorize_into(
            m,
            |i| tab.cols[basis[i]].as_slice(),
            SINGULAR_TOL,
            &mut scratch.ws,
        );
        if !ok {
            unreachable!("±1 diagonal start basis cannot be singular");
        }
        let lu = std::mem::take(&mut scratch.spare);

        let mut state = State {
            x,
            basis,
            basic_row,
            at_upper,
            lu,
            etas: EtaFile::new(),
            iterations: 0,
            pivots_since_refactor: 0,
            use_bland: false,
            stall: 0,
            stats: SimplexStats::default(),
        };
        state.stats.warm_rejected = warm.is_some();
        state.stats.refactor_singular += warm_singular;
        (state, n_art)
    };

    let total = tab.cols.len();

    // ---- phase 1 ----
    if n_art > 0 {
        rasa_obs::flight::emit(|| rasa_obs::TraceEvent::simplex_phase("start->phase1"));
        let mut cost1 = vec![0.0f64; total];
        for c in cost1.iter_mut().skip(total - n_art) {
            *c = -1.0;
        }
        let outcome = run_phase(
            &tab,
            &mut state,
            scratch,
            &cost1,
            options,
            deadline,
            options.max_iterations,
        );
        let infeasibility: f64 = (total - n_art..total).map(|j| state.x[j]).sum();
        state.stats.phase1_iterations = state.iterations;
        match outcome {
            PhaseOutcome::Done => {
                // Judge the residual infeasibility at the same feas_tol the
                // phases pivot against. This gate was historically a
                // hardcoded 1e-6, an order looser than the default
                // tolerance — near-infeasible models slipped through and
                // were only (wrongly) blessed by the equally loose exit
                // verdict below.
                if infeasibility > options.feas_tol {
                    let mut sol = LpSolution::infeasible(n, m, state.iterations);
                    sol.stats = state.stats;
                    return sol;
                }
            }
            PhaseOutcome::Unbounded => {
                // cannot happen: phase-1 objective is bounded above by 0
                let mut sol = LpSolution::infeasible(n, m, state.iterations);
                sol.stats = state.stats;
                return sol;
            }
            PhaseOutcome::IterationLimit => {
                let mut sol = LpSolution::infeasible(n, m, state.iterations);
                sol.status = LpStatus::IterationLimit;
                sol.stats = state.stats;
                return sol;
            }
        }
        // pin artificials at zero for phase 2
        for j in total - n_art..total {
            tab.upper[j] = 0.0;
            state.x[j] = 0.0;
            state.at_upper[j] = false;
        }
        rasa_obs::flight::emit(|| rasa_obs::TraceEvent::simplex_phase("phase1->phase2"));
    } else {
        let warm_accepted = state.stats.warm_accepted;
        rasa_obs::flight::emit(|| {
            rasa_obs::TraceEvent::simplex_phase(if warm_accepted {
                "warm->phase2"
            } else {
                "start->phase2"
            })
        });
    }

    // ---- phase 2 ----
    let mut cost2 = vec![0.0f64; total];
    cost2[..n].copy_from_slice(&model.objective);
    let budget = options.max_iterations.saturating_sub(state.iterations);
    let outcome = run_phase(&tab, &mut state, scratch, &cost2, options, deadline, budget);
    state.stats.phase2_iterations = state.iterations - state.stats.phase1_iterations;

    // squash incremental drift before judging the result: basic values are
    // recomputed from the factorization one last time
    recompute_basics(&tab, &mut state, scratch);

    // duals at the final basis
    for i in 0..m {
        scratch.cb[i] = cost2[state.basis[i]];
    }
    btran_duals(&state, scratch, m);
    let duals = scratch.y[..m].to_vec();

    // hand the factor pools back for the next solve on this thread
    scratch.spare = std::mem::take(&mut state.lu);

    let xs: Vec<f64> = state.x[..n].to_vec();
    let objective = model.objective_value(&xs);
    // The exit verdict uses the same feas_tol the phases pivoted against.
    // It was historically `feas_tol.max(1e-6) * 10.0` — 10× looser than
    // anything the solve enforced, so a solution could be declared
    // Optimal+feasible here and then rejected by certify_placement.
    let feasible = model.is_feasible_point(&xs, options.feas_tol);

    let status = match outcome {
        PhaseOutcome::Done => LpStatus::Optimal,
        PhaseOutcome::Unbounded => LpStatus::Unbounded,
        PhaseOutcome::IterationLimit => LpStatus::IterationLimit,
    };

    // Export the final basis for warm-starting a later re-solve, but only
    // when it is artificial-free (a basic artificial — possible after a
    // degenerate phase 1 — has no meaning in a fresh computational form).
    let final_basis = if feasible && state.basis.iter().all(|&j| j < n + m) {
        Some(Basis {
            basic: state.basis.clone(),
            at_upper: state.at_upper[..n + m].to_vec(),
        })
    } else {
        None
    };

    LpSolution {
        status,
        objective,
        x: xs,
        duals,
        feasible,
        iterations: state.iterations,
        stats: state.stats,
        basis: final_basis,
    }
}
