//! The dense reference kernel: the original bounded-variable revised
//! simplex with an explicit `m × m` basis inverse and product-form
//! updates.
//!
//! Retained verbatim (minus the tolerance bugs fixed in this crate's
//! history — the final feasibility verdict and the phase-1 infeasibility
//! gate now use `feas_tol`, matching the sparse kernel) as the **reference
//! implementation for differential testing**: `crates/lp/tests/differential.rs`
//! solves seeded random LPs with both kernels and requires status
//! agreement and objectives within `1e-6`. It is *not* on any production
//! path — [`solve_simplex`](crate::simplex::solve_simplex) routes to the
//! sparse LU kernel — and keeps the historical first-row degenerate
//! tie-break precisely so the ratio-test regression test can demonstrate
//! the difference against the sparse kernel's Harris-style rule.
//!
//! Memory is `O(m²)`: [`MAX_DENSE_ROWS`] bounds the accepted row count.

#![allow(clippy::needless_range_loop)] // dense index arithmetic over parallel arrays

use crate::model::{LpModel, RowSense};
use crate::simplex::SimplexOptions;
use crate::solution::{Basis, LpSolution, LpStatus, SimplexStats};
use crate::time::Deadline;

/// Largest row count the dense basis inverse accepts (`m²` doubles; 12k
/// rows ≈ 1.2 GB). Models beyond this return `IterationLimit` immediately
/// instead of exhausting memory — the behaviour large NO-PARTITION runs in
/// the paper's Fig 6 exhibit ("the program succeeds only for one
/// small-scale cluster"). The sparse kernel has no such cap.
pub const MAX_DENSE_ROWS: usize = 12_000;

/// Sparse column: (row, coefficient) pairs.
type Col = Vec<(usize, f64)>;

struct Tableau {
    m: usize,
    cols: Vec<Col>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    b: Vec<f64>,
}

struct State {
    x: Vec<f64>,
    basis: Vec<usize>,
    basic_row: Vec<Option<usize>>,
    at_upper: Vec<bool>,
    /// Dense row-major basis inverse, `m × m`.
    binv: Vec<f64>,
    iterations: usize,
    pivots_since_refactor: usize,
    use_bland: bool,
    stall: usize,
    stats: SimplexStats,
}

impl Tableau {
    fn col(&self, j: usize) -> &Col {
        &self.cols[j]
    }
}

/// `w = B⁻¹ · A_j` for a sparse column.
fn ftran(binv: &[f64], m: usize, col: &Col, out: &mut [f64]) {
    out[..m].fill(0.0);
    for &(row, a) in col {
        let base = row;
        for i in 0..m {
            out[i] += a * binv[i * m + base];
        }
    }
}

/// `y = c_Bᵀ · B⁻¹`.
fn btran(binv: &[f64], m: usize, cb: &[f64], out: &mut [f64]) {
    out[..m].fill(0.0);
    for i in 0..m {
        let ci = cb[i];
        if ci != 0.0 {
            let row = &binv[i * m..(i + 1) * m];
            for (o, &v) in out.iter_mut().zip(row) {
                *o += ci * v;
            }
        }
    }
}

/// Invert the current basis matrix from scratch (Gauss–Jordan with partial
/// pivoting). Returns `false` if the basis is numerically singular.
fn refactorize(tab: &Tableau, state: &mut State) -> bool {
    let m = tab.m;
    let mut bmat = vec![0.0f64; m * m];
    for (i, &j) in state.basis.iter().enumerate() {
        for &(row, a) in tab.col(j) {
            bmat[row * m + i] = a;
        }
    }
    let mut inv = vec![0.0f64; m * m];
    for i in 0..m {
        inv[i * m + i] = 1.0;
    }
    for col in 0..m {
        let mut piv_row = col;
        let mut piv_val = bmat[col * m + col].abs();
        for r in (col + 1)..m {
            let v = bmat[r * m + col].abs();
            if v > piv_val {
                piv_val = v;
                piv_row = r;
            }
        }
        if piv_val < 1e-12 {
            return false;
        }
        if piv_row != col {
            for k in 0..m {
                bmat.swap(col * m + k, piv_row * m + k);
                inv.swap(col * m + k, piv_row * m + k);
            }
        }
        let p = bmat[col * m + col];
        for k in 0..m {
            bmat[col * m + k] /= p;
            inv[col * m + k] /= p;
        }
        for r in 0..m {
            if r == col {
                continue;
            }
            let f = bmat[r * m + col];
            if f != 0.0 {
                for k in 0..m {
                    bmat[r * m + k] -= f * bmat[col * m + k];
                    inv[r * m + k] -= f * inv[col * m + k];
                }
            }
        }
    }
    state.binv = inv;
    state.pivots_since_refactor = 0;
    state.stats.refactorizations += 1;
    true
}

/// Recompute basic variable values: `x_B = B⁻¹ (b − N x_N)`.
fn recompute_basics(tab: &Tableau, state: &mut State) {
    let m = tab.m;
    let mut rhs = tab.b.clone();
    for j in 0..tab.cols.len() {
        if state.basic_row[j].is_some() {
            continue;
        }
        let xj = state.x[j];
        if xj != 0.0 {
            for &(row, a) in tab.col(j) {
                rhs[row] -= a * xj;
            }
        }
    }
    for i in 0..m {
        let mut v = 0.0;
        let row = &state.binv[i * m..(i + 1) * m];
        for (k, &r) in rhs.iter().enumerate() {
            v += row[k] * r;
        }
        state.x[state.basis[i]] = v;
    }
}

enum PhaseOutcome {
    Done,
    Unbounded,
    IterationLimit,
}

/// Run the simplex to optimality for the cost vector `cost`.
///
/// Pricing is full Dantzig with the Bland fallback; the ratio test breaks
/// degenerate ties by first-row order (the historical rule the sparse
/// kernel's Harris-style test discriminates against).
fn run_phase(
    tab: &Tableau,
    state: &mut State,
    cost: &[f64],
    options: &SimplexOptions,
    deadline: Deadline,
    iter_budget: usize,
) -> PhaseOutcome {
    let m = tab.m;
    let total = tab.cols.len();
    let mut y = vec![0.0f64; m];
    let mut w = vec![0.0f64; m];
    let mut cb = vec![0.0f64; m];
    let mut last_obj = f64::NEG_INFINITY;
    let mut local_iters = 0usize;

    loop {
        if local_iters >= iter_budget {
            return PhaseOutcome::IterationLimit;
        }
        if state.iterations % 64 == 0 && deadline.expired() {
            return PhaseOutcome::IterationLimit;
        }

        for i in 0..m {
            cb[i] = cost[state.basis[i]];
        }
        btran(&state.binv, m, &cb, &mut y);

        let mut entering: Option<(usize, f64, f64)> = None;
        for j in 0..total {
            if state.basic_row[j].is_some() {
                continue;
            }
            let (l, u) = (tab.lower[j], tab.upper[j]);
            if l == u {
                continue;
            }
            let mut d = cost[j];
            for &(row, a) in tab.col(j) {
                d -= y[row] * a;
            }
            let dir = if state.at_upper[j] {
                if d < -options.opt_tol {
                    -1.0
                } else {
                    continue;
                }
            } else if l.is_infinite() && u.is_infinite() {
                if d > options.opt_tol {
                    1.0
                } else if d < -options.opt_tol {
                    -1.0
                } else {
                    continue;
                }
            } else if d > options.opt_tol {
                1.0
            } else {
                continue;
            };
            if state.use_bland {
                entering = Some((j, d, dir));
                break;
            }
            match entering {
                Some((_, best, _)) if d.abs() <= best.abs() => {}
                _ => entering = Some((j, d, dir)),
            }
        }

        let Some((q, _dq, dir)) = entering else {
            return PhaseOutcome::Done;
        };

        ftran(&state.binv, m, tab.col(q), &mut w);

        let span_q = tab.upper[q] - tab.lower[q];
        let mut t_star = if span_q.is_finite() {
            span_q
        } else {
            f64::INFINITY
        };
        let mut leave: Option<(usize, bool)> = None;
        for i in 0..m {
            let wi = w[i];
            if wi.abs() <= options.pivot_tol {
                continue;
            }
            let k = state.basis[i];
            let xk = state.x[k];
            let step = dir * wi;
            if step > 0.0 {
                let lk = tab.lower[k];
                if lk.is_finite() {
                    let t = ((xk - lk) / step).max(0.0);
                    if t < t_star - 1e-12 {
                        t_star = t;
                        leave = Some((i, false));
                    }
                }
            } else {
                let uk = tab.upper[k];
                if uk.is_finite() {
                    let t = ((uk - xk) / -step).max(0.0);
                    if t < t_star - 1e-12 {
                        t_star = t;
                        leave = Some((i, true));
                    }
                }
            }
        }

        if t_star.is_infinite() {
            return PhaseOutcome::Unbounded;
        }

        if t_star > 0.0 {
            for i in 0..m {
                if w[i] != 0.0 {
                    let k = state.basis[i];
                    state.x[k] -= dir * t_star * w[i];
                }
            }
            state.x[q] += dir * t_star;
        }

        match leave {
            None => {
                state.stats.bound_flips += 1;
                state.at_upper[q] = !state.at_upper[q];
                state.x[q] = if state.at_upper[q] {
                    tab.upper[q]
                } else {
                    tab.lower[q]
                };
            }
            Some((r, to_upper)) => {
                state.stats.pivots += 1;
                let leaving = state.basis[r];
                state.x[leaving] = if to_upper {
                    tab.upper[leaving]
                } else {
                    tab.lower[leaving]
                };
                state.at_upper[leaving] = to_upper;
                state.basic_row[leaving] = None;
                state.basis[r] = q;
                state.basic_row[q] = Some(r);

                let wr = w[r];
                debug_assert!(wr.abs() > options.pivot_tol);
                let (before, rest) = state.binv.split_at_mut(r * m);
                let (pivot_row, after) = rest.split_at_mut(m);
                for v in pivot_row.iter_mut() {
                    *v /= wr;
                }
                let update = |rows: &mut [f64], base: usize| {
                    for (bi, chunk) in rows.chunks_exact_mut(m).enumerate() {
                        let i = base + bi;
                        let wi = w[i];
                        if wi != 0.0 {
                            for (c, p) in chunk.iter_mut().zip(pivot_row.iter()) {
                                *c -= wi * *p;
                            }
                        }
                    }
                };
                update(before, 0);
                update(after, r + 1);

                state.pivots_since_refactor += 1;
                if state.pivots_since_refactor >= options.refactor_every {
                    if !refactorize(tab, state) {
                        return PhaseOutcome::IterationLimit;
                    }
                    recompute_basics(tab, state);
                }
            }
        }

        let obj: f64 = state
            .basis
            .iter()
            .map(|&j| cost[j] * state.x[j])
            .sum::<f64>()
            + (0..total)
                .filter(|&j| state.basic_row[j].is_none())
                .map(|j| cost[j] * state.x[j])
                .sum::<f64>();
        if obj > last_obj + options.opt_tol {
            state.stall = 0;
        } else {
            state.stall += 1;
            if state.stall >= options.degenerate_stall && !state.use_bland {
                state.use_bland = true;
                state.stats.bland_activations += 1;
            }
        }
        last_obj = obj;

        state.iterations += 1;
        local_iters += 1;
    }
}

/// Validate and revive a warm-start basis (dense twin of the sparse
/// kernel's warm path).
fn try_warm_state(tab: &Tableau, n: usize, wb: &Basis, feas_tol: f64) -> Option<State> {
    let m = tab.m;
    let total = n + m;
    if wb.basic.len() != m || wb.at_upper.len() != total {
        return None;
    }
    let mut basic_row = vec![None; total];
    for (i, &j) in wb.basic.iter().enumerate() {
        if j >= total || basic_row[j].is_some() {
            return None;
        }
        basic_row[j] = Some(i);
    }
    let mut x = vec![0.0f64; total];
    let mut at_upper = vec![false; total];
    for j in 0..total {
        if basic_row[j].is_some() {
            continue;
        }
        let (l, u) = (tab.lower[j], tab.upper[j]);
        x[j] = if wb.at_upper[j] && u.is_finite() {
            at_upper[j] = true;
            u
        } else if l.is_finite() {
            l
        } else if u.is_finite() {
            at_upper[j] = true;
            u
        } else {
            0.0
        };
    }
    let mut state = State {
        x,
        basis: wb.basic.clone(),
        basic_row,
        at_upper,
        binv: vec![0.0f64; m * m],
        iterations: 0,
        pivots_since_refactor: 0,
        use_bland: false,
        stall: 0,
        stats: SimplexStats::default(),
    };
    if !refactorize(tab, &mut state) {
        state.stats.refactor_singular += 1;
        return None;
    }
    recompute_basics(tab, &mut state);
    for i in 0..m {
        let k = state.basis[i];
        let v = state.x[k];
        if v < tab.lower[k] - feas_tol || v > tab.upper[k] + feas_tol {
            return None;
        }
    }
    Some(state)
}

/// Solve `model` (maximization) with the dense reference kernel.
///
/// Same contract as [`solve_simplex_warm`](crate::simplex::solve_simplex_warm)
/// — status, objective, duals, exported basis — but none of the `rasa_obs`
/// counters or flight events are emitted: this kernel exists for
/// differential testing, not production telemetry.
pub fn solve_dense(
    model: &LpModel,
    options: &SimplexOptions,
    deadline: Deadline,
    warm: Option<&Basis>,
) -> LpSolution {
    let n = model.num_vars();
    let m = model.num_rows();

    if m > MAX_DENSE_ROWS {
        let mut sol = LpSolution::infeasible(n, m, 0);
        sol.status = LpStatus::IterationLimit;
        return sol;
    }

    if m == 0 {
        return crate::simplex::solve_bounds_only(model);
    }

    // ---- computational form ----
    let mut cols: Vec<Col> = Vec::with_capacity(n + m);
    let mut lower = Vec::with_capacity(n + m);
    let mut upper = Vec::with_capacity(n + m);
    for j in 0..n {
        cols.push(Vec::new());
        lower.push(model.lower[j]);
        upper.push(model.upper[j]);
    }
    let mut b = Vec::with_capacity(m);
    for (i, row) in model.rows.iter().enumerate() {
        for &(j, a) in &row.coeffs {
            cols[j].push((i, a));
        }
        b.push(row.rhs);
        let (sl, su) = match row.sense {
            RowSense::Le => (0.0, f64::INFINITY),
            RowSense::Ge => (f64::NEG_INFINITY, 0.0),
            RowSense::Eq => (0.0, 0.0),
        };
        cols.push(vec![(i, 1.0)]);
        lower.push(sl);
        upper.push(su);
    }

    let mut tab = Tableau {
        m,
        cols,
        lower,
        upper,
        b,
    };

    let warm_state = warm.and_then(|wb| try_warm_state(&tab, n, wb, options.feas_tol));

    let (mut state, n_art) = if let Some(mut s) = warm_state {
        s.stats.warm_accepted = true;
        (s, 0)
    } else {
        let mut x = vec![0.0f64; n + m];
        let mut at_upper = vec![false; n + m];
        for j in 0..n {
            let (l, u) = (tab.lower[j], tab.upper[j]);
            x[j] = if l.is_finite() {
                l
            } else if u.is_finite() {
                at_upper[j] = true;
                u
            } else {
                0.0
            };
        }

        let mut residual = tab.b.clone();
        for j in 0..n {
            if x[j] != 0.0 {
                for &(row, a) in &tab.cols[j] {
                    residual[row] -= a * x[j];
                }
            }
        }

        let mut basis = vec![usize::MAX; m];
        let mut needs_artificial: Vec<(usize, f64)> = Vec::new();
        for i in 0..m {
            let s = n + i;
            let (sl, su) = (tab.lower[s], tab.upper[s]);
            if residual[i] >= sl - options.feas_tol && residual[i] <= su + options.feas_tol {
                basis[i] = s;
                x[s] = residual[i];
            } else {
                let rest = if residual[i] < sl { sl } else { su };
                x[s] = rest;
                at_upper[s] = rest == su && su.is_finite() && sl != su;
                needs_artificial.push((i, residual[i] - rest));
            }
        }
        let n_art = needs_artificial.len();
        for &(row, r) in &needs_artificial {
            let j = tab.cols.len();
            tab.cols.push(vec![(row, if r >= 0.0 { 1.0 } else { -1.0 })]);
            tab.lower.push(0.0);
            tab.upper.push(f64::INFINITY);
            basis[row] = j;
            x.push(r.abs());
            at_upper.push(false);
        }

        let total = tab.cols.len();
        let mut basic_row = vec![None; total];
        for (i, &j) in basis.iter().enumerate() {
            basic_row[j] = Some(i);
        }

        let mut binv = vec![0.0f64; m * m];
        for (i, &j) in basis.iter().enumerate() {
            let sign = tab.cols[j][0].1;
            binv[i * m + i] = 1.0 / sign;
        }

        let mut state = State {
            x,
            basis,
            basic_row,
            at_upper,
            binv,
            iterations: 0,
            pivots_since_refactor: 0,
            use_bland: false,
            stall: 0,
            stats: SimplexStats::default(),
        };
        state.stats.warm_rejected = warm.is_some();
        (state, n_art)
    };

    let total = tab.cols.len();

    // ---- phase 1 ----
    if n_art > 0 {
        let mut cost1 = vec![0.0f64; total];
        for c in cost1.iter_mut().skip(total - n_art) {
            *c = -1.0;
        }
        let outcome = run_phase(
            &tab,
            &mut state,
            &cost1,
            options,
            deadline,
            options.max_iterations,
        );
        let infeasibility: f64 = (total - n_art..total).map(|j| state.x[j]).sum();
        state.stats.phase1_iterations = state.iterations;
        match outcome {
            PhaseOutcome::Done => {
                // Residual infeasibility is judged at the same feas_tol the
                // phases pivot against (historically a hardcoded 1e-6).
                if infeasibility > options.feas_tol {
                    let mut sol = LpSolution::infeasible(n, m, state.iterations);
                    sol.stats = state.stats;
                    return sol;
                }
            }
            PhaseOutcome::Unbounded => {
                let mut sol = LpSolution::infeasible(n, m, state.iterations);
                sol.stats = state.stats;
                return sol;
            }
            PhaseOutcome::IterationLimit => {
                let mut sol = LpSolution::infeasible(n, m, state.iterations);
                sol.status = LpStatus::IterationLimit;
                sol.stats = state.stats;
                return sol;
            }
        }
        for j in total - n_art..total {
            tab.upper[j] = 0.0;
            state.x[j] = 0.0;
            state.at_upper[j] = false;
        }
    }

    // ---- phase 2 ----
    let mut cost2 = vec![0.0f64; total];
    cost2[..n].copy_from_slice(&model.objective);
    let budget = options.max_iterations.saturating_sub(state.iterations);
    let outcome = run_phase(&tab, &mut state, &cost2, options, deadline, budget);
    state.stats.phase2_iterations = state.iterations - state.stats.phase1_iterations;

    let mut cb = vec![0.0f64; m];
    for i in 0..m {
        cb[i] = cost2[state.basis[i]];
    }
    let mut duals = vec![0.0f64; m];
    btran(&state.binv, m, &cb, &mut duals);

    let xs: Vec<f64> = state.x[..n].to_vec();
    let objective = model.objective_value(&xs);
    // The exit verdict uses the same feas_tol the phases pivoted against
    // (historically `feas_tol.max(1e-6) * 10.0`, 10× looser — solutions it
    // blessed could then fail certify_placement).
    let feasible = model.is_feasible_point(&xs, options.feas_tol);

    let status = match outcome {
        PhaseOutcome::Done => LpStatus::Optimal,
        PhaseOutcome::Unbounded => LpStatus::Unbounded,
        PhaseOutcome::IterationLimit => LpStatus::IterationLimit,
    };

    let final_basis = if feasible && state.basis.iter().all(|&j| j < n + m) {
        Some(Basis {
            basic: state.basis.clone(),
            at_upper: state.at_upper[..n + m].to_vec(),
        })
    } else {
        None
    };

    LpSolution {
        status,
        objective,
        x: xs,
        duals,
        feasible,
        iterations: state.iterations,
        stats: state.stats,
        basis: final_basis,
    }
}
