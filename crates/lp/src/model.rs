//! LP model builder: variables with bounds, sparse rows, maximize objective.

use crate::simplex::{solve_simplex, SimplexOptions};
use crate::solution::LpSolution;
use crate::time::Deadline;

/// Index of a variable within an [`LpModel`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Row sense of a linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RowSense {
    /// `Σ a_j x_j <= b`
    Le,
    /// `Σ a_j x_j >= b`
    Ge,
    /// `Σ a_j x_j == b`
    Eq,
}

/// A sparse row under construction.
#[derive(Clone, Debug)]
pub(crate) struct Row {
    pub(crate) coeffs: Vec<(usize, f64)>,
    pub(crate) sense: RowSense,
    pub(crate) rhs: f64,
}

/// A linear program in *maximization* form:
///
/// `max cᵀx  s.t.  rows,  l <= x <= u`.
///
/// Build with [`add_var`](Self::add_var) / [`add_row`](Self::add_row), then
/// call [`solve`](Self::solve). Minimization callers negate their objective.
#[derive(Clone, Debug, Default)]
pub struct LpModel {
    pub(crate) objective: Vec<f64>,
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) rows: Vec<Row>,
}

impl LpModel {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable with bounds `[lower, upper]` and objective
    /// coefficient `obj`. `f64::NEG_INFINITY` / `f64::INFINITY` bounds are
    /// allowed (free variables).
    ///
    /// # Panics
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_var(&mut self, lower: f64, upper: f64, obj: f64) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN bound");
        assert!(lower <= upper, "lower bound {lower} > upper bound {upper}");
        assert!(obj.is_finite(), "objective coefficient must be finite");
        self.objective.push(obj);
        self.lower.push(lower);
        self.upper.push(upper);
        VarId(self.objective.len() - 1)
    }

    /// Number of variables so far.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of rows so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Add a constraint row. Duplicate variable entries are summed.
    ///
    /// # Panics
    /// Panics on out-of-range variables or non-finite data.
    pub fn add_row(&mut self, coeffs: Vec<(VarId, f64)>, sense: RowSense, rhs: f64) {
        assert!(rhs.is_finite(), "rhs must be finite");
        let mut merged: std::collections::BTreeMap<usize, f64> = Default::default();
        for (v, a) in coeffs {
            assert!(
                v.0 < self.num_vars(),
                "row references unknown variable {v:?}"
            );
            assert!(a.is_finite(), "coefficient must be finite");
            *merged.entry(v.0).or_insert(0.0) += a;
        }
        let coeffs: Vec<(usize, f64)> = merged.into_iter().filter(|(_, a)| *a != 0.0).collect();
        self.rows.push(Row { coeffs, sense, rhs });
    }

    /// Shorthand for a `<=` row.
    pub fn add_row_le(&mut self, coeffs: Vec<(VarId, f64)>, rhs: f64) {
        self.add_row(coeffs, RowSense::Le, rhs);
    }

    /// Shorthand for a `>=` row.
    pub fn add_row_ge(&mut self, coeffs: Vec<(VarId, f64)>, rhs: f64) {
        self.add_row(coeffs, RowSense::Ge, rhs);
    }

    /// Shorthand for an `==` row.
    pub fn add_row_eq(&mut self, coeffs: Vec<(VarId, f64)>, rhs: f64) {
        self.add_row(coeffs, RowSense::Eq, rhs);
    }

    /// Tighten a variable's bounds in place (used by branch-and-bound).
    ///
    /// # Panics
    /// Panics if the new bounds cross (`lower > upper`).
    pub fn set_bounds(&mut self, var: VarId, lower: f64, upper: f64) {
        assert!(
            lower <= upper,
            "crossed bounds for {var:?}: [{lower}, {upper}]"
        );
        self.lower[var.0] = lower;
        self.upper[var.0] = upper;
    }

    /// Current bounds of `var`.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        (self.lower[var.0], self.upper[var.0])
    }

    /// All lower bounds (used by branch-and-bound to snapshot/restore).
    pub fn lower_bounds(&self) -> &[f64] {
        &self.lower
    }

    /// All upper bounds.
    pub fn upper_bounds(&self) -> &[f64] {
        &self.upper
    }

    /// Replace every variable's bounds at once (lengths must match).
    ///
    /// # Panics
    /// Panics on length mismatch or crossed bounds.
    pub fn set_all_bounds(&mut self, lower: &[f64], upper: &[f64]) {
        assert_eq!(lower.len(), self.num_vars());
        assert_eq!(upper.len(), self.num_vars());
        for (j, (&l, &u)) in lower.iter().zip(upper).enumerate() {
            assert!(l <= u, "crossed bounds for var {j}: [{l}, {u}]");
        }
        self.lower.copy_from_slice(lower);
        self.upper.copy_from_slice(upper);
    }

    /// Objective coefficient of `var`.
    pub fn objective_of(&self, var: VarId) -> f64 {
        self.objective[var.0]
    }

    /// Evaluate `cᵀx` for an external point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Row activity `Σ a_j x_j` of row `i` at point `x`.
    pub fn row_activity(&self, i: usize, x: &[f64]) -> f64 {
        self.rows[i].coeffs.iter().map(|&(j, a)| a * x[j]).sum()
    }

    /// Check primal feasibility of an external point within tolerance.
    pub fn is_feasible_point(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for ((&xj, &l), &u) in x.iter().zip(&self.lower).zip(&self.upper) {
            if xj < l - tol || xj > u + tol {
                return false;
            }
        }
        for (i, row) in self.rows.iter().enumerate() {
            let act = self.row_activity(i, x);
            let ok = match row.sense {
                RowSense::Le => act <= row.rhs + tol,
                RowSense::Ge => act >= row.rhs - tol,
                RowSense::Eq => (act - row.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Solve with default options and no deadline.
    pub fn solve(&self) -> LpSolution {
        solve_simplex(self, &SimplexOptions::default(), Deadline::none())
    }

    /// Solve with explicit options and deadline.
    pub fn solve_with(&self, options: &SimplexOptions, deadline: Deadline) -> LpSolution {
        solve_simplex(self, options, deadline)
    }

    /// Solve with an optional warm-start basis exported by a previous
    /// [`LpSolution::basis`](crate::LpSolution::basis) of a same-shaped
    /// model. Falls back to a cold start when the basis does not validate;
    /// see [`crate::solution::Basis`].
    pub fn solve_warm(
        &self,
        options: &SimplexOptions,
        deadline: Deadline,
        warm: Option<&crate::solution::Basis>,
    ) -> LpSolution {
        crate::simplex::solve_simplex_warm(self, options, deadline, warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_assigns_sequential_ids() {
        let mut m = LpModel::new();
        assert_eq!(m.add_var(0.0, 1.0, 1.0), VarId(0));
        assert_eq!(m.add_var(0.0, 1.0, 1.0), VarId(1));
        assert_eq!(m.num_vars(), 2);
    }

    #[test]
    fn duplicate_coefficients_are_merged() {
        let mut m = LpModel::new();
        let x = m.add_var(0.0, 10.0, 1.0);
        m.add_row_le(vec![(x, 1.0), (x, 2.0)], 6.0);
        assert_eq!(m.rows[0].coeffs, vec![(0, 3.0)]);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let mut m = LpModel::new();
        let x = m.add_var(0.0, 10.0, 1.0);
        let y = m.add_var(0.0, 10.0, 1.0);
        m.add_row_le(vec![(x, 1.0), (y, 0.0)], 6.0);
        assert_eq!(m.rows[0].coeffs, vec![(0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn row_with_unknown_var_panics() {
        let mut m = LpModel::new();
        m.add_row_le(vec![(VarId(3), 1.0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn crossed_bounds_panic() {
        let mut m = LpModel::new();
        m.add_var(2.0, 1.0, 0.0);
    }

    #[test]
    fn feasibility_check() {
        let mut m = LpModel::new();
        let x = m.add_var(0.0, 5.0, 1.0);
        let y = m.add_var(0.0, 5.0, 1.0);
        m.add_row_le(vec![(x, 1.0), (y, 1.0)], 6.0);
        m.add_row_eq(vec![(x, 1.0), (y, -1.0)], 0.0);
        assert!(m.is_feasible_point(&[3.0, 3.0], 1e-9));
        assert!(!m.is_feasible_point(&[4.0, 3.0], 1e-9)); // eq violated
        assert!(!m.is_feasible_point(&[6.0, 6.0], 1e-9)); // le + bounds violated
        assert!(!m.is_feasible_point(&[1.0], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_value_is_dot_product() {
        let mut m = LpModel::new();
        m.add_var(0.0, 1.0, 2.0);
        m.add_var(0.0, 1.0, -1.0);
        assert_eq!(m.objective_value(&[0.5, 1.0]), 0.0);
    }
}
