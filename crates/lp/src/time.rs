//! Wall-clock deadlines shared by every solver in the repository.
//!
//! The paper evaluates all algorithms under hard time-outs (one minute in
//! Figs 6–9, a sweep in Fig 10) and requires that RASA return its best
//! incumbent when the deadline fires. `Deadline` is the tiny abstraction
//! that threads this budget through the LP, MIP and column-generation
//! layers.

use std::time::{Duration, Instant};

/// A wall-clock deadline. `Deadline::none()` never expires.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    expires_at: Option<Instant>,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            expires_at: Some(Instant::now() + budget),
        }
    }

    /// A deadline that never fires.
    pub fn none() -> Self {
        Deadline { expires_at: None }
    }

    /// Has the deadline passed?
    #[inline]
    pub fn expired(&self) -> bool {
        self.expires_at.is_some_and(|t| Instant::now() >= t)
    }

    /// Remaining budget (`None` = unlimited, `Some(0)` = expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.expires_at
            .map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// A sub-deadline that is the earlier of `self` and `budget` from now.
    /// Used to give each subproblem a slice of the overall budget.
    pub fn min_with(&self, budget: Duration) -> Deadline {
        let candidate = Instant::now() + budget;
        Deadline {
            expires_at: Some(match self.expires_at {
                Some(t) => t.min(candidate),
                None => candidate,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_not_expired() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3599));
    }

    #[test]
    fn min_with_takes_earlier() {
        let d = Deadline::after(Duration::from_secs(3600));
        let sub = d.min_with(Duration::ZERO);
        assert!(sub.expired());
        let sub2 = Deadline::none().min_with(Duration::from_secs(3600));
        assert!(!sub2.expired());
        assert!(sub2.remaining().is_some());
    }
}
