//! Solver results.

/// Per-solve simplex telemetry, returned on every [`LpSolution`] and
/// flushed into the global [`rasa_obs`] registry under `simplex.*`.
/// Deterministic tests assert on this struct; the registry is best-effort
/// aggregate telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimplexStats {
    /// Basis-exchange pivots (excludes bound flips).
    pub pivots: usize,
    /// Nonbasic bound-to-bound flips.
    pub bound_flips: usize,
    /// From-scratch basis-inverse refactorizations.
    pub refactorizations: usize,
    /// Times the pricing rule switched to Bland's rule (sticky within a
    /// solve, so at most 1 unless the solve is restarted).
    pub bland_activations: usize,
    /// Iterations spent driving artificials out (phase 1).
    pub phase1_iterations: usize,
    /// Iterations spent on the true objective (phase 2).
    pub phase2_iterations: usize,
}

/// Termination status of a simplex run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded above over the feasible region.
    Unbounded,
    /// The iteration or wall-clock budget ran out; `x` holds the best
    /// feasible iterate if phase 1 finished, otherwise it is meaningless.
    IterationLimit,
}

/// Result of solving an [`LpModel`](crate::LpModel).
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Why the solver stopped.
    pub status: LpStatus,
    /// Objective value `cᵀx` (only meaningful for `Optimal`, or for
    /// `IterationLimit` when `feasible` is `true`).
    pub objective: f64,
    /// Primal values per variable.
    pub x: Vec<f64>,
    /// Dual value per row (the simplex multipliers `y`). For a maximization
    /// with `<=` rows, optimal duals are non-negative; column generation
    /// uses these for pricing.
    pub duals: Vec<f64>,
    /// `true` if `x` satisfies all constraints within tolerance (phase 1
    /// completed).
    pub feasible: bool,
    /// Simplex iterations performed (both phases).
    pub iterations: usize,
    /// Per-solve telemetry (pivots, refactorizations, Bland activations).
    pub stats: SimplexStats,
}

impl LpSolution {
    /// An infeasible verdict with empty data.
    pub(crate) fn infeasible(num_vars: usize, num_rows: usize, iterations: usize) -> Self {
        LpSolution {
            status: LpStatus::Infeasible,
            objective: f64::NEG_INFINITY,
            x: vec![0.0; num_vars],
            duals: vec![0.0; num_rows],
            feasible: false,
            iterations,
            stats: SimplexStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_constructor_shapes_output() {
        let s = LpSolution::infeasible(3, 2, 17);
        assert_eq!(s.status, LpStatus::Infeasible);
        assert_eq!(s.x.len(), 3);
        assert_eq!(s.duals.len(), 2);
        assert_eq!(s.iterations, 17);
        assert!(!s.feasible);
    }
}
