//! Solver results.

/// Per-solve simplex telemetry, returned on every [`LpSolution`] and
/// flushed into the global [`rasa_obs`] registry under `simplex.*`.
/// Deterministic tests assert on this struct; the registry is best-effort
/// aggregate telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimplexStats {
    /// Basis-exchange pivots (excludes bound flips).
    pub pivots: usize,
    /// Nonbasic bound-to-bound flips.
    pub bound_flips: usize,
    /// From-scratch basis-inverse refactorizations.
    pub refactorizations: usize,
    /// Refactorization attempts that found the basis numerically singular
    /// (warm-start bases rejected for this reason, or mid-solve bail-outs).
    pub refactor_singular: usize,
    /// Product-form eta updates appended to the factorization between
    /// refactorizations (one per basis-exchange pivot in the sparse kernel;
    /// always 0 in the dense reference kernel).
    pub eta_updates: usize,
    /// Total nonzeros stored across all eta updates this solve — the
    /// fill-in the eta file accumulated before each refactorization reset.
    pub eta_nnz: usize,
    /// Degenerate ratio-test ties resolved by the Harris-style
    /// magnitude-preferring second pass (more than one row tied within the
    /// relaxed ratio bound; always 0 in the dense reference kernel, which
    /// keeps the historical first-row tie-break).
    pub harris_ties: usize,
    /// Times the pricing rule switched to Bland's rule (sticky within a
    /// solve, so at most 1 unless the solve is restarted).
    pub bland_activations: usize,
    /// Iterations spent driving artificials out (phase 1).
    pub phase1_iterations: usize,
    /// Iterations spent on the true objective (phase 2).
    pub phase2_iterations: usize,
    /// A supplied warm-start basis was validated and used (phase 1 skipped).
    pub warm_accepted: bool,
    /// A supplied warm-start basis was rejected (wrong shape, singular, or
    /// primal-infeasible under the current bounds) and the solve fell back
    /// to a cold two-phase start.
    pub warm_rejected: bool,
}

/// A simplex basis, detached from any particular solve.
///
/// Column indexing follows the solver's computational form: structural
/// variables occupy columns `0..n` (in [`LpModel`](crate::LpModel) variable
/// order) and the slack of row `i` occupies column `n + i`. Artificial
/// variables are never part of an exported basis.
///
/// A `Basis` taken from [`LpSolution::basis`] can warm-start a later solve
/// of the *same-shaped* model (same variable and row counts) via
/// [`LpModel::solve_warm`](crate::LpModel::solve_warm), even after bounds,
/// objective, or right-hand sides changed. The solver re-validates it and
/// silently falls back to a cold start when it no longer yields a feasible
/// starting point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Basis {
    /// `basic[i]` is the column basic in row `i` (length = number of rows).
    pub basic: Vec<usize>,
    /// For each of the `n + m` columns: whether a *nonbasic* variable rests
    /// at its upper bound (entries for basic columns are ignored).
    pub at_upper: Vec<bool>,
}

/// Termination status of a simplex run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded above over the feasible region.
    Unbounded,
    /// The iteration or wall-clock budget ran out; `x` holds the best
    /// feasible iterate if phase 1 finished, otherwise it is meaningless.
    IterationLimit,
}

/// Result of solving an [`LpModel`](crate::LpModel).
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Why the solver stopped.
    pub status: LpStatus,
    /// Objective value `cᵀx` (only meaningful for `Optimal`, or for
    /// `IterationLimit` when `feasible` is `true`).
    pub objective: f64,
    /// Primal values per variable.
    pub x: Vec<f64>,
    /// Dual value per row (the simplex multipliers `y`). For a maximization
    /// with `<=` rows, optimal duals are non-negative; column generation
    /// uses these for pricing.
    pub duals: Vec<f64>,
    /// `true` if `x` satisfies all constraints within tolerance (phase 1
    /// completed).
    pub feasible: bool,
    /// Simplex iterations performed (both phases).
    pub iterations: usize,
    /// Per-solve telemetry (pivots, refactorizations, Bland activations).
    pub stats: SimplexStats,
    /// The final basis, exported for warm-starting a re-solve of a
    /// perturbed model. `None` when the solve did not reach a feasible
    /// basis free of artificial variables (or the model had no rows).
    pub basis: Option<Basis>,
}

impl LpSolution {
    /// An infeasible verdict with empty data.
    pub(crate) fn infeasible(num_vars: usize, num_rows: usize, iterations: usize) -> Self {
        LpSolution {
            status: LpStatus::Infeasible,
            objective: f64::NEG_INFINITY,
            x: vec![0.0; num_vars],
            duals: vec![0.0; num_rows],
            feasible: false,
            iterations,
            stats: SimplexStats::default(),
            basis: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_constructor_shapes_output() {
        let s = LpSolution::infeasible(3, 2, 17);
        assert_eq!(s.status, LpStatus::Infeasible);
        assert_eq!(s.x.len(), 3);
        assert_eq!(s.duals.len(), 2);
        assert_eq!(s.iterations, 17);
        assert!(!s.feasible);
    }
}
