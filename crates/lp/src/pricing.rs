//! Pricing rules for the revised simplex.
//!
//! The default rule is **partial (sectioned) Dantzig pricing**: instead of
//! computing the reduced cost of every nonbasic column each iteration
//! (`O(nnz(A))`), the pricer scans a cyclic window of candidate columns
//! starting where the previous iteration left off, and returns the best
//! eligible candidate inside the first window that contains one. A full
//! wrap with no eligible candidate proves optimality for the current cost
//! vector, exactly as a full Dantzig scan would — the rule only changes
//! *which* improving column enters, never whether one exists.
//!
//! Degeneracy handling is unchanged from the dense kernel: after
//! [`SimplexOptions::degenerate_stall`](crate::SimplexOptions::degenerate_stall)
//! non-improving iterations the solve switches permanently to Bland's rule
//! (first eligible index), which ignores the section machinery entirely.

/// Cyclic partial-pricing state. Create once per phase; call
/// [`select`](PartialPricing::select) once per iteration.
#[derive(Clone, Debug)]
pub struct PartialPricing {
    cursor: usize,
    section: usize,
}

impl PartialPricing {
    /// A pricer over `total` columns with an automatically sized section
    /// (`total/8` clamped to `[64, 512]` — small enough to cut pricing
    /// cost on wide LPs, large enough to keep near-Dantzig pivot quality
    /// on narrow ones).
    pub fn new(total: usize) -> Self {
        PartialPricing {
            cursor: 0,
            section: (total / 8).clamp(64, 512),
        }
    }

    /// A pricer with an explicit section size (`0` means scan everything,
    /// i.e. classic full Dantzig pricing).
    pub fn with_section(total: usize, section: usize) -> Self {
        PartialPricing {
            cursor: 0,
            section: if section == 0 { total.max(1) } else { section },
        }
    }

    /// Section size in columns.
    pub fn section(&self) -> usize {
        self.section
    }

    /// Pick the entering column. `score(j)` returns `Some(|reduced cost|)`
    /// for an eligible column and `None` otherwise; the pricer scans
    /// cyclically from its cursor and returns the eligible column with the
    /// largest score inside the first section that contains any, or `None`
    /// after a full eligible-free wrap (optimality).
    pub fn select(
        &mut self,
        total: usize,
        mut score: impl FnMut(usize) -> Option<f64>,
    ) -> Option<usize> {
        if total == 0 {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        let mut scanned = 0usize;
        let mut in_section = 0usize;
        let mut j = self.cursor % total;
        while scanned < total {
            if let Some(s) = score(j) {
                match best {
                    Some((_, bs)) if s <= bs => {}
                    _ => best = Some((j, s)),
                }
            }
            j = (j + 1) % total;
            scanned += 1;
            if best.is_some() {
                in_section += 1;
                if in_section >= self.section {
                    break;
                }
            }
        }
        self.cursor = j;
        best.map(|(idx, _)| idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_wrap_without_candidates_returns_none() {
        let mut p = PartialPricing::with_section(10, 4);
        assert_eq!(p.select(10, |_| None), None);
    }

    #[test]
    fn best_in_first_section_wins() {
        // candidates at 1 (score 2.0) and 2 (score 5.0); section 4 covers
        // both from cursor 0 → the larger score wins even though 1 is hit
        // first.
        let mut p = PartialPricing::with_section(10, 4);
        let pick = p.select(10, |j| match j {
            1 => Some(2.0),
            2 => Some(5.0),
            _ => None,
        });
        assert_eq!(pick, Some(2));
    }

    #[test]
    fn section_limits_the_scan_window() {
        // section 2: after finding j=1, only one more column is examined,
        // so the better candidate at j=8 is NOT seen this iteration…
        let mut p = PartialPricing::with_section(10, 2);
        let pick = p.select(10, |j| match j {
            1 => Some(2.0),
            8 => Some(50.0),
            _ => None,
        });
        assert_eq!(pick, Some(1));
        // …but the cursor advanced, so the next call starts past 1 and
        // finds it.
        let pick = p.select(10, |j| match j {
            1 => Some(2.0),
            8 => Some(50.0),
            _ => None,
        });
        assert_eq!(pick, Some(8));
    }

    #[test]
    fn cursor_wraps_cyclically() {
        let mut p = PartialPricing::with_section(5, 5);
        // candidate only at 0; start anywhere and still find it
        for _ in 0..7 {
            assert_eq!(p.select(5, |j| (j == 0).then_some(1.0)), Some(0));
        }
    }

    #[test]
    fn auto_section_is_clamped() {
        assert_eq!(PartialPricing::new(10).section(), 64);
        assert_eq!(PartialPricing::new(10_000).section(), 512);
        assert_eq!(PartialPricing::new(2_000).section(), 250);
    }
}
