#![warn(missing_docs)]

//! # rasa-lp
//!
//! A self-contained linear-programming solver: a **bounded-variable revised
//! simplex** with a two-phase (artificial-variable) start, product-form
//! basis-inverse updates and periodic refactorization.
//!
//! This crate is the repository's substitute for the off-the-shelf solver
//! (Gurobi 9.5) the RASA paper uses. It provides exactly what the layers
//! above need:
//!
//! * LP relaxations for the branch-and-bound MIP solver (`rasa-mip`),
//! * the restricted master problem of the column-generation algorithm
//!   (`rasa-solver`), including **dual values** for pricing,
//! * deadline-aware solving ([`Deadline`]) so RASA can return its best
//!   result under the paper's one-minute-style time-outs.
//!
//! The kernel is a **sparse** revised simplex: the basis is held as a
//! sparse LU factorization ([`factor::LuFactors`], Gilbert–Peierls
//! left-looking elimination) updated in product form between periodic
//! refactorizations ([`factor::EtaFile`]), with partial (sectioned)
//! Dantzig pricing ([`pricing::PartialPricing`]), a Harris-style two-pass
//! ratio test, and a permanent Bland fallback for degeneracy — so solve
//! cost tracks the nonzero count, not `m²`. The historical dense-inverse
//! kernel is retained as [`dense`] purely as a reference implementation
//! for differential testing.
//!
//! ## Example
//!
//! ```
//! use rasa_lp::{LpModel, LpStatus};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x <= 2,  x, y >= 0
//! let mut m = LpModel::new();
//! let x = m.add_var(0.0, f64::INFINITY, 3.0);
//! let y = m.add_var(0.0, f64::INFINITY, 2.0);
//! m.add_row_le(vec![(x, 1.0), (y, 1.0)], 4.0);
//! m.add_row_le(vec![(x, 1.0)], 2.0);
//! let sol = m.solve();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - 10.0).abs() < 1e-7); // x = 2, y = 2
//! ```

pub mod dense;
pub mod factor;
pub mod model;
pub mod pricing;
pub mod simplex;
pub mod solution;
pub mod time;

pub use model::{LpModel, RowSense, VarId};
pub use simplex::{solve_simplex_warm, SimplexOptions};
pub use solution::{Basis, LpSolution, LpStatus, SimplexStats};
pub use time::Deadline;
